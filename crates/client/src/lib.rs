//! genie-client — a pipelined TCP client for the `genie-net` protocol.
//!
//! One [`Client`] owns one connection. Requests go out through
//! [`send`](Client::send) (fire-and-forget, returns a [`Pending`] to
//! resolve later — this is what pipelining looks like) or
//! [`call`](Client::call) (send + wait). A background reader thread
//! matches response frames to in-flight requests by id, so replies may
//! arrive in any order — the server streams them in *completion*
//! order, not submission order.
//!
//! Every [`Reply`] carries the sky-bench latency split:
//!
//! * **server latency** — send to the first byte of the response's
//!   length prefix arriving. What the serving stack (queue + wave +
//!   writer) cost, as observable from the client.
//! * **full latency** — send to the response completely read and
//!   decoded. Adds the response transfer itself; the gap between the
//!   two is the payload-streaming cost a slow network inflates.
//!
//! Typed conveniences ([`search`](Client::search),
//! [`mutate`](Client::mutate), ...) cover the full facade surface and
//! turn remote `Error` frames into [`ClientError::Remote`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use genie_core::model::Query;
use genie_core::topk::TopHit;
use genie_net::frame::{
    decode_response, encode_request, CollectionInfo, Request, Response, WireError,
    DEFAULT_MAX_FRAME_LEN, HANDSHAKE_REQUEST_ID, PROTOCOL_VERSION,
};

/// The word → keyword-id convention `genie-server` and the genie-cli
/// network tools share: FNV-1a over the lowercased word, folded into
/// a 20-bit universe. Hashing on both ends lets a remote client build
/// raw [`Query`]s against a line corpus without shipping the server's
/// vocabulary over the wire (rare collisions merely merge two words
/// into one keyword — fine for match counting, wrong for a real
/// dictionary, which is why the typed domains don't use this).
pub fn keyword_of(word: &str) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in word.trim().to_lowercase().bytes() {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash & 0xf_ffff
}

/// Client-side connection knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Auth token for the Hello frame (empty = none).
    pub token: String,
    /// Largest response frame body the client will accept.
    pub max_frame_len: u32,
    /// Bound on the handshake round-trip.
    pub handshake_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            token: String::new(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a request (or the connection carrying it) failed on the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Socket-level failure (connect, write, or the reader died).
    Io(String),
    /// The server's bytes did not decode as a protocol frame.
    Protocol(String),
    /// The handshake was answered with a typed Reject.
    Rejected(WireError),
    /// The request was answered with a typed Error frame.
    Remote(WireError),
    /// The connection closed before this request's reply arrived.
    ConnectionClosed,
    /// The reply decoded fine but had the wrong kind for the request.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o failure: {e}"),
            Self::Protocol(e) => write!(f, "protocol violation: {e}"),
            Self::Rejected(e) => write!(f, "handshake rejected: {e}"),
            Self::Remote(e) => write!(f, "server error: {e}"),
            Self::ConnectionClosed => f.write_str("connection closed before the reply arrived"),
            Self::Unexpected(e) => write!(f, "unexpected reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One matched response with its latency split (microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    pub response: Response,
    /// Send → first response byte observed (sky-bench "server latency").
    pub server_latency_us: f64,
    /// Send → response fully read and decoded ("full latency").
    pub full_latency_us: f64,
}

/// A search reply unpacked by the typed conveniences.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReply {
    /// Adaptive rounds consumed (1 for plain searches).
    pub rounds: u32,
    /// Final `AT` — `AT - 1` is the k-th match count.
    pub audit_threshold: u32,
    pub hits: Vec<TopHit>,
    pub server_latency_us: f64,
    pub full_latency_us: f64,
}

struct InFlight {
    sent_at: Instant,
    tx: Sender<Result<Reply, ClientError>>,
}

struct ClientShared {
    pending: Mutex<HashMap<u64, InFlight>>,
    closed: AtomicBool,
}

/// A claim on one pipelined request's future reply.
pub struct Pending {
    id: u64,
    rx: Receiver<Result<Reply, ClientError>>,
}

impl Pending {
    /// The request id the reply will be matched by.
    pub fn request_id(&self) -> u64 {
        self.id
    }

    /// Block until the reply arrives (or the connection dies).
    pub fn wait(self) -> Result<Reply, ClientError> {
        self.rx.recv().unwrap_or(Err(ClientError::ConnectionClosed))
    }

    /// Block up to `timeout`; `None` means no reply yet.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Reply, ClientError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ClientError::ConnectionClosed))
            }
        }
    }
}

/// One backend's `(stat name, value)` rows in a
/// [`Client::fleet_health`] group.
pub type BackendStatRows = Vec<(String, f64)>;

/// One handshaken connection to a genie-net server.
pub struct Client {
    writer: Mutex<TcpStream>,
    stream: TcpStream,
    shared: Arc<ClientShared>,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connect with defaults (no auth token).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect and run the handshake: Hello out, Welcome (or a typed
    /// Reject, surfaced as [`ClientError::Rejected`]) back.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let mut stream = TcpStream::connect(addr).map_err(io)?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(config.handshake_timeout))
            .map_err(io)?;
        let hello = encode_request(
            HANDSHAKE_REQUEST_ID,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                token: config.token.clone(),
            },
        );
        stream.write_all(&hello).map_err(io)?;
        let body = match genie_net::frame::read_frame(&mut stream, config.max_frame_len) {
            Ok(Some(body)) => body,
            Ok(None) => return Err(ClientError::ConnectionClosed),
            Err(genie_net::frame::FrameReadError::TooLarge { len, max }) => {
                return Err(ClientError::Protocol(format!(
                    "handshake reply declared {len} bytes (cap {max})"
                )))
            }
            Err(genie_net::frame::FrameReadError::Io(e)) => return Err(io(e)),
        };
        match decode_response(&body) {
            Ok((HANDSHAKE_REQUEST_ID, Response::Welcome { .. })) => {}
            Ok((HANDSHAKE_REQUEST_ID, Response::Reject { error })) => {
                return Err(ClientError::Rejected(error))
            }
            Ok((id, r)) => {
                return Err(ClientError::Unexpected(format!(
                    "handshake answered with request id {id}, kind {r:?}"
                )))
            }
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        }
        stream.set_read_timeout(None).map_err(io)?;
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        });
        let reader_stream = stream.try_clone().map_err(io)?;
        let writer = stream.try_clone().map_err(io)?;
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("genie-client-read".into())
            .spawn(move || reader_loop(reader_stream, reader_shared, config.max_frame_len))
            .map_err(io)?;
        Ok(Self {
            writer: Mutex::new(writer),
            stream,
            shared,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Send one request without waiting — the pipelining primitive.
    /// Resolve the returned [`Pending`] whenever convenient; replies
    /// to other in-flight requests keep flowing meanwhile.
    pub fn send(&self, request: &Request) -> Result<Pending, ClientError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ClientError::ConnectionClosed);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        let bytes = encode_request(id, request);
        {
            // insert before writing: a reply cannot race past its entry
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.insert(
                id,
                InFlight {
                    sent_at: Instant::now(),
                    tx,
                },
            );
        }
        let wrote = {
            let mut w = self.writer.lock().expect("writer lock");
            w.write_all(&bytes)
        };
        if let Err(e) = wrote {
            self.shared
                .pending
                .lock()
                .expect("pending lock")
                .remove(&id);
            return Err(ClientError::Io(e.to_string()));
        }
        // the reader may have died (setting `closed` and draining
        // `pending`) between the check above and our insert, while the
        // write still succeeded on the half-closed socket. Re-check: if
        // the entry is still there under a closed connection, nobody
        // will ever resolve it — remove it and fail now instead of
        // letting Pending::wait() block forever. If the entry is gone,
        // the reader either answered it or drained it with an error;
        // the channel already holds the outcome.
        if self.shared.closed.load(Ordering::Acquire)
            && self
                .shared
                .pending
                .lock()
                .expect("pending lock")
                .remove(&id)
                .is_some()
        {
            return Err(ClientError::ConnectionClosed);
        }
        Ok(Pending { id, rx })
    }

    /// Send and wait for the reply.
    pub fn call(&self, request: &Request) -> Result<Reply, ClientError> {
        self.send(request)?.wait()
    }

    /// Requests currently awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.shared.pending.lock().expect("pending lock").len()
    }

    // ------------------------------------------------------------------
    // typed conveniences — the full facade surface
    // ------------------------------------------------------------------

    /// Top-`k` match-count search.
    pub fn search(
        &self,
        collection: u64,
        k: u32,
        query: Query,
    ) -> Result<SearchReply, ClientError> {
        let reply = self.call(&Request::Search {
            collection,
            k,
            query,
        })?;
        unpack_search(reply)
    }

    /// Adaptive search over a candidate-count schedule.
    pub fn search_adaptive(
        &self,
        collection: u64,
        k: u32,
        schedule: Vec<u32>,
        query: Query,
    ) -> Result<SearchReply, ClientError> {
        let reply = self.call(&Request::SearchAdaptive {
            collection,
            k,
            schedule,
            query,
        })?;
        unpack_search(reply)
    }

    /// Insert one object; returns its assigned stable id.
    pub fn insert(&self, collection: u64, keywords: Vec<u32>) -> Result<u32, ClientError> {
        let reply = self.call(&Request::Insert {
            collection,
            keywords,
        })?;
        match unpack(reply)? {
            Response::Ids { ids } if ids.len() == 1 => Ok(ids[0]),
            r => Err(unexpected("a single assigned id", &r)),
        }
    }

    /// Delete objects by id.
    pub fn delete(&self, collection: u64, ids: Vec<u32>) -> Result<(), ClientError> {
        let reply = self.call(&Request::Delete { collection, ids })?;
        match unpack(reply)? {
            Response::Ack => Ok(()),
            r => Err(unexpected("an Ack", &r)),
        }
    }

    /// Atomically delete `id` and insert a replacement; returns the
    /// replacement's new id.
    pub fn upsert(&self, collection: u64, id: u32, keywords: Vec<u32>) -> Result<u32, ClientError> {
        let reply = self.call(&Request::Upsert {
            collection,
            id,
            keywords,
        })?;
        match unpack(reply)? {
            Response::Ids { ids } if ids.len() == 1 => Ok(ids[0]),
            r => Err(unexpected("a single assigned id", &r)),
        }
    }

    /// Atomic mutation batch; returns the inserted objects' ids in
    /// order.
    pub fn mutate(
        &self,
        collection: u64,
        deletes: Vec<u32>,
        inserts: Vec<Vec<u32>>,
    ) -> Result<Vec<u32>, ClientError> {
        let reply = self.call(&Request::Mutate {
            collection,
            deletes,
            inserts,
        })?;
        match unpack(reply)? {
            Response::Ids { ids } => Ok(ids),
            Response::Ack => Ok(Vec::new()),
            r => Err(unexpected("assigned ids", &r)),
        }
    }

    /// Fold pending mutations into fresh base shards; returns whether
    /// anything was folded.
    pub fn compact(&self, collection: u64) -> Result<bool, ClientError> {
        let reply = self.call(&Request::Compact { collection })?;
        match unpack(reply)? {
            Response::Compacted { applied } => Ok(applied),
            r => Err(unexpected("a Compacted reply", &r)),
        }
    }

    /// Live/delta/tombstone bookkeeping of one collection:
    /// `(live, delta, tombstones, base_shards, next_id)`.
    pub fn mutation_status(
        &self,
        collection: u64,
    ) -> Result<(u64, u64, u64, u64, u32), ClientError> {
        let reply = self.call(&Request::MutationStatus { collection })?;
        match unpack(reply)? {
            Response::MutationStatus {
                live,
                delta,
                tombstones,
                base_shards,
                next_id,
            } => Ok((live, delta, tombstones, base_shards, next_id)),
            r => Err(unexpected("a MutationStatus reply", &r)),
        }
    }

    /// Build a new collection server-side; returns its id.
    pub fn create_collection(
        &self,
        name: &str,
        shards: u32,
        objects: Vec<Vec<u32>>,
    ) -> Result<u64, ClientError> {
        let reply = self.call(&Request::CreateCollection {
            name: name.to_owned(),
            shards,
            objects,
        })?;
        match unpack(reply)? {
            Response::Created { collection } => Ok(collection),
            r => Err(unexpected("a Created reply", &r)),
        }
    }

    /// Rebuild a collection over new objects; returns the simulated
    /// upload time of the swap.
    pub fn reindex(&self, collection: u64, objects: Vec<Vec<u32>>) -> Result<f64, ClientError> {
        let reply = self.call(&Request::Reindex {
            collection,
            objects,
        })?;
        match unpack(reply)? {
            Response::Reindexed { upload_sim_us } => Ok(upload_sim_us),
            r => Err(unexpected("a Reindexed reply", &r)),
        }
    }

    /// Registered collections with shard counts and live sizes.
    pub fn list_collections(&self) -> Result<Vec<CollectionInfo>, ClientError> {
        let reply = self.call(&Request::ListCollections)?;
        match unpack(reply)? {
            Response::Collections { entries } => Ok(entries),
            r => Err(unexpected("a Collections reply", &r)),
        }
    }

    /// Flat server + service counters snapshot.
    pub fn stats(&self) -> Result<Vec<(String, f64)>, ClientError> {
        let reply = self.call(&Request::Stats)?;
        match unpack(reply)? {
            Response::Stats { fields } => Ok(fields),
            r => Err(unexpected("a Stats reply", &r)),
        }
    }

    /// The fleet's remote health table, regrouped from the Stats
    /// frame's `backend/{i}/{name}/{stat}` rows (see
    /// `genie_net::protocol`, "Stats fields and compatibility"): one
    /// `(backend name, stat rows)` group per backend, fleet order.
    /// Includes each backend's learned scan-cost model
    /// (`learned_base_us` / `learned_us_per_posting`) and breaker state
    /// (`retired`, `failed`), so operators read capacity and health
    /// without shell access to the server.
    pub fn fleet_health(&self) -> Result<Vec<(String, BackendStatRows)>, ClientError> {
        let mut groups: Vec<(String, BackendStatRows)> = Vec::new();
        for (name, value) in self.stats()? {
            // backend/{i}/{name}/{stat}; i is ascending in fleet order,
            // so encounter order is fleet order
            let mut parts = name.splitn(4, '/');
            let (Some("backend"), Some(idx), Some(backend), Some(stat)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let label = format!("{idx}/{backend}");
            match groups.last_mut() {
                Some((last, rows)) if *last == label => rows.push((stat.to_owned(), value)),
                _ => groups.push((label, vec![(stat.to_owned(), value)])),
            }
        }
        Ok(groups)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Unexpected(format!("wanted {wanted}, got {got:?}"))
}

/// Strip the transport envelope: a typed Error frame becomes
/// [`ClientError::Remote`], everything else passes through.
fn unpack(reply: Reply) -> Result<Response, ClientError> {
    match reply.response {
        Response::Error { error } => Err(ClientError::Remote(error)),
        r => Ok(r),
    }
}

fn unpack_search(reply: Reply) -> Result<SearchReply, ClientError> {
    let (server_latency_us, full_latency_us) = (reply.server_latency_us, reply.full_latency_us);
    match unpack(reply)? {
        Response::Search {
            rounds,
            audit_threshold,
            hits,
        } => Ok(SearchReply {
            rounds,
            audit_threshold,
            hits,
            server_latency_us,
            full_latency_us,
        }),
        r => Err(unexpected("a Search reply", &r)),
    }
}

/// Read length-prefixed frames forever, stamping the server-latency
/// instant the moment the length prefix lands (the first bytes of the
/// response on the wire) and the full-latency instant once the body is
/// decoded. Exits — failing all in-flight requests — when the socket
/// closes or the stream stops making sense.
fn reader_loop(mut stream: TcpStream, shared: Arc<ClientShared>, max_frame_len: u32) {
    loop {
        let mut len_bytes = [0u8; 4];
        if read_exact(&mut stream, &mut len_bytes).is_err() {
            break;
        }
        let first_byte_at = Instant::now();
        let len = u32::from_le_bytes(len_bytes);
        if len < 9 || len > max_frame_len {
            break; // stream out of sync or abusive: fail everything
        }
        let mut body = vec![0u8; len as usize];
        if read_exact(&mut stream, &mut body).is_err() {
            break;
        }
        let (id, response) = match decode_response(&body) {
            Ok(decoded) => decoded,
            Err(_) => break,
        };
        let done_at = Instant::now();
        let entry = shared.pending.lock().expect("pending lock").remove(&id);
        if let Some(entry) = entry {
            let us = |d: Duration| d.as_secs_f64() * 1e6;
            let _ = entry.tx.send(Ok(Reply {
                response,
                server_latency_us: us(first_byte_at.duration_since(entry.sent_at)),
                full_latency_us: us(done_at.duration_since(entry.sent_at)),
            }));
        }
        // unmatched ids (id 0 included) are dropped: the server only
        // sends them for connection-scoped failures we surface below
    }
    shared.closed.store(true, Ordering::Release);
    let mut pending = shared.pending.lock().expect("pending lock");
    for (_, entry) in pending.drain() {
        let _ = entry.tx.send(Err(ClientError::ConnectionClosed));
    }
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "socket closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
