//! GPU-LSH: bi-level LSH kNN on the device (paper §VI-A2; Pan &
//! Manocha's bi-level scheme).
//!
//! Structure, per the cited design:
//! * **level 1** — a random-projection partition assigns every point a
//!   coarse region id;
//! * **level 2** — `L` hash tables per region, each keyed by the
//!   concatenation of `t` p-stable hash buckets;
//! * **query** — *one thread per query* probes its bucket in each
//!   table, gathers a candidate short list, computes exact distances and
//!   keeps the top-k by insertion sort (the "short-list search" the
//!   paper identifies as GPU-LSH's bottleneck).
//!
//! The thread-per-query mapping is the structural property the
//! evaluation turns on: a batch of `Q` queries occupies only
//! `ceil(Q/block_dim)` blocks, so the device is starved below ~thousands
//! of queries and its latency is nearly flat in `Q` (Figs. 9/11), while
//! the per-thread distance loop and sort diverge heavily within warps.

use gpu_sim::{Device, GlobalU32, LaunchConfig};

use genie_lsh::e2lsh::E2Lsh;
use genie_lsh::family::LshFamily;
use genie_lsh::murmur::murmur3_32;
use genie_lsh::signrp::SignRandomProjection;

/// Tuning parameters of the bi-level index.
#[derive(Debug, Clone, Copy)]
pub struct GpuLshParams {
    /// Number of hash tables `L` (the paper tunes 100-700 on real data;
    /// scaled workloads need far fewer).
    pub num_tables: usize,
    /// Hash functions concatenated per table key.
    pub hashes_per_table: usize,
    /// Buckets per table (power of two).
    pub table_size: usize,
    /// Level-1 random-projection bits (2^bits coarse regions).
    pub partition_bits: usize,
    /// Max candidates a query gathers before distance ranking.
    pub candidate_cap: usize,
    /// E2LSH bucket width.
    pub bucket_width: f32,
    /// Early-stop condition: stop probing further tables once
    /// `early_stop_factor * k` candidates have been gathered. This is
    /// the behaviour the paper attributes to GPU-LSH ("these methods
    /// usually adopt some early-stop conditions, thus with larger k they
    /// can access more points to improve the approximation ratio") — it
    /// is what inflates GPU-LSH's approximation ratio at small k in
    /// Figure 14. `0` disables it.
    pub early_stop_factor: usize,
}

impl Default for GpuLshParams {
    fn default() -> Self {
        Self {
            num_tables: 8,
            hashes_per_table: 4,
            table_size: 1 << 12,
            partition_bits: 3,
            candidate_cap: 1024,
            bucket_width: 8.0,
            early_stop_factor: 0,
        }
    }
}

impl GpuLshParams {
    /// The configuration the evaluation uses when GPU-LSH must reach
    /// GENIE-comparable result quality (the paper tunes table counts
    /// until qualities match, §VI-D1): more tables, wider buckets,
    /// shorter concatenations, plus the early-stop rule.
    pub fn quality_matched() -> Self {
        Self {
            num_tables: 32,
            hashes_per_table: 2,
            table_size: 1 << 12,
            partition_bits: 3,
            candidate_cap: 4096,
            bucket_width: 32.0,
            early_stop_factor: 4,
        }
    }
}

/// The device-resident bi-level index.
pub struct GpuLshIndex {
    params: GpuLshParams,
    family: E2Lsh,
    level1: SignRandomProjection,
    dim: usize,
    num_points: usize,
    /// Point coordinates as f32 bits, row-major `n x dim`.
    points_dev: GlobalU32,
    /// CSR bucket starts per table: `table * (table_size + 1) + bucket`.
    starts: GlobalU32,
    /// CSR entries per table, `table * n + slot`.
    entries: GlobalU32,
}

impl GpuLshIndex {
    /// Hash key of `point` in `table`: level-1 region + concatenated
    /// level-2 buckets, digested into a table slot.
    fn table_key(&self, table: usize, point: &[f32]) -> usize {
        let mut bytes = Vec::with_capacity(4 + self.params.hashes_per_table * 8);
        let mut region = 0u32;
        for b in 0..self.params.partition_bits {
            region = (region << 1) | self.level1.signature(b, point) as u32;
        }
        bytes.extend_from_slice(&region.to_le_bytes());
        for h in 0..self.params.hashes_per_table {
            let f = table * self.params.hashes_per_table + h;
            bytes.extend_from_slice(&self.family.signature(f, point).to_le_bytes());
        }
        murmur3_32(&bytes, table as u32) as usize & (self.params.table_size - 1)
    }

    /// Build the index on the host and upload it (transfers recorded).
    pub fn build(device: &Device, points: &[Vec<f32>], params: GpuLshParams, seed: u64) -> Self {
        assert!(params.table_size.is_power_of_two());
        let dim = points.first().map(|p| p.len()).unwrap_or(0);
        let n = points.len();
        let family = E2Lsh::new(
            params.num_tables * params.hashes_per_table,
            dim,
            params.bucket_width,
            seed,
        );
        let level1 = SignRandomProjection::new(params.partition_bits.max(1), dim, seed ^ 0xBEEF);

        let mut this = Self {
            params,
            family,
            level1,
            dim,
            num_points: n,
            points_dev: GlobalU32::zeroed(0),
            starts: GlobalU32::zeroed(0),
            entries: GlobalU32::zeroed(0),
        };

        // CSR per table
        let ts = params.table_size;
        let mut starts = vec![0u32; params.num_tables * (ts + 1)];
        let mut keys = vec![0usize; params.num_tables * n];
        for t in 0..params.num_tables {
            for (i, p) in points.iter().enumerate() {
                let key = this.table_key(t, p);
                keys[t * n + i] = key;
                starts[t * (ts + 1) + key + 1] += 1;
            }
            for b in 0..ts {
                starts[t * (ts + 1) + b + 1] += starts[t * (ts + 1) + b];
            }
        }
        let mut entries = vec![0u32; params.num_tables * n];
        let mut cursor = starts.clone();
        for t in 0..params.num_tables {
            for i in 0..n {
                let key = keys[t * n + i];
                let pos = &mut cursor[t * (ts + 1) + key];
                entries[t * n + *pos as usize] = i as u32;
                *pos += 1;
            }
        }

        let point_bits: Vec<u32> = points
            .iter()
            .flat_map(|p| p.iter().map(|v| v.to_bits()))
            .collect();
        let bytes = ((point_bits.len() + starts.len() + entries.len()) * 4) as u64;
        device.record_h2d(bytes);

        this.points_dev = GlobalU32::from_host(&point_bits);
        this.starts = GlobalU32::from_host(&starts);
        this.entries = GlobalU32::from_host(&entries);
        this
    }

    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// kNN search: one device thread per query. Returns per-query
    /// `(id, distance)` hits plus the simulated time.
    pub fn search(
        &self,
        device: &Device,
        queries: &[Vec<f32>],
        k: usize,
    ) -> (Vec<Vec<(u32, f32)>>, f64) {
        let model = *device.cost_model();
        let num_q = queries.len();
        if num_q == 0 || self.num_points == 0 {
            return (vec![Vec::new(); num_q], 0.0);
        }
        let mut sim_us = 0.0;
        let l = self.params.num_tables;
        let ts = self.params.table_size;
        let n = self.num_points;
        let dim = self.dim;
        let cap = self.params.candidate_cap;
        let stop_factor = self.params.early_stop_factor;

        // host precomputes each query's bucket per table (cheap hashing;
        // the heavy part — list scans, distances, sort — runs on device)
        let mut q_buckets = vec![0u32; num_q * l];
        let mut q_coords = vec![0u32; num_q * dim];
        for (qi, q) in queries.iter().enumerate() {
            for t in 0..l {
                q_buckets[qi * l + t] = self.table_key(t, q) as u32;
            }
            for (d, v) in q.iter().enumerate() {
                q_coords[qi * dim + d] = v.to_bits();
            }
        }
        let h2d = ((q_buckets.len() + q_coords.len()) * 4) as u64;
        device.record_h2d(h2d);
        sim_us += model.transfer_us(h2d);
        let qb = GlobalU32::from_host(&q_buckets);
        let qc = GlobalU32::from_host(&q_coords);

        // output: k (id, dist-bits) pairs per query
        let out_ids = GlobalU32::zeroed(num_q * k);
        let out_dists = GlobalU32::zeroed(num_q * k);
        let out_lens = GlobalU32::zeroed(num_q);

        {
            let starts = &self.starts;
            let entries = &self.entries;
            let points = &self.points_dev;
            let (oi, od, ol) = (&out_ids, &out_dists, &out_lens);
            let cfg = LaunchConfig::cover(num_q, 256);
            let stats = device.launch("gpu_lsh_query", cfg, move |ctx| {
                let q = ctx.global_id();
                if q >= num_q {
                    return;
                }
                // gather the candidate short list table by table,
                // honouring the early-stop rule
                let early_stop = if stop_factor == 0 {
                    usize::MAX
                } else {
                    stop_factor * k
                };
                let mut candidates: Vec<u32> = Vec::new();
                for t in 0..l {
                    if candidates.len() >= early_stop {
                        break;
                    }
                    let bucket = qb.load(ctx, q * l + t) as usize;
                    let s = starts.load(ctx, t * (ts + 1) + bucket) as usize;
                    let e = starts.load(ctx, t * (ts + 1) + bucket + 1) as usize;
                    for slot in s..e {
                        if candidates.len() >= cap {
                            break;
                        }
                        candidates.push(entries.load(ctx, t * n + slot));
                    }
                }
                // dedup (sort + dedup, charged as compute work)
                ctx.tick((candidates.len() as u64 + 1).ilog2() as u64 * candidates.len() as u64);
                candidates.sort_unstable();
                candidates.dedup();
                // short-list search: exact distances + insertion sort,
                // the k-selection cost GENIE's c-PQ avoids
                let mut best: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
                for id in candidates {
                    let mut dist = 0.0f32;
                    for d in 0..dim {
                        let pv = f32::from_bits(points.load(ctx, id as usize * dim + d));
                        let qv = f32::from_bits(qc.load(ctx, q * dim + d));
                        let diff = pv - qv;
                        dist += diff * diff;
                        ctx.tick(1);
                    }
                    let pos = best
                        .binary_search_by(|probe| probe.0.partial_cmp(&dist).unwrap())
                        .unwrap_or_else(|e| e);
                    ctx.tick(best.len() as u64 / 2 + 1); // shift cost
                    if pos < k {
                        best.insert(pos, (dist, id));
                        best.truncate(k);
                    }
                }
                ol.store(ctx, q, best.len() as u32);
                for (rank, (dist, id)) in best.iter().enumerate() {
                    oi.store(ctx, q * k + rank, *id);
                    od.store(ctx, q * k + rank, dist.sqrt().to_bits());
                }
            });
            sim_us += stats.sim_us(&model);
        }

        let d2h = (num_q * k * 8 + num_q * 4) as u64;
        device.record_d2h(d2h);
        sim_us += model.transfer_us(d2h);

        let ids = out_ids.to_host();
        let dists = out_dists.to_host();
        let lens = out_lens.to_host();
        let results = (0..num_q)
            .map(|q| {
                (0..lens[q] as usize)
                    .map(|r| (ids[q * k + r], f32::from_bits(dists[q * k + r])))
                    .collect()
            })
            .collect();
        (results, sim_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_lsh::knn::{exact_knn, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = (i % 4) as f32 * 25.0;
                (0..dim).map(|_| c + rng.random::<f32>()).collect()
            })
            .collect()
    }

    #[test]
    fn self_query_finds_itself() {
        let pts = clustered(300, 8, 1);
        let device = Device::with_defaults();
        let idx = GpuLshIndex::build(&device, &pts, GpuLshParams::default(), 7);
        let (res, _) = idx.search(&device, &[pts[42].clone()], 1);
        assert_eq!(res[0][0].0, 42);
        assert_eq!(res[0][0].1, 0.0);
    }

    #[test]
    fn neighbours_come_from_the_right_cluster() {
        let pts = clustered(400, 8, 3);
        let device = Device::with_defaults();
        let idx = GpuLshIndex::build(&device, &pts, GpuLshParams::default(), 11);
        let q: Vec<f32> = pts[1].iter().map(|v| v + 0.1).collect(); // cluster 1
        let (res, _) = idx.search(&device, std::slice::from_ref(&q), 10);
        assert!(!res[0].is_empty());
        let truth = exact_knn(Metric::L2, &pts, &q, 10);
        let true_ids: std::collections::HashSet<u32> =
            truth.iter().map(|&(i, _)| i as u32).collect();
        let overlap = res[0]
            .iter()
            .filter(|(id, _)| true_ids.contains(id))
            .count();
        assert!(overlap >= 5, "kNN overlap {overlap}/10 too low");
    }

    #[test]
    fn distances_are_sorted_ascending() {
        let pts = clustered(200, 6, 5);
        let device = Device::with_defaults();
        let idx = GpuLshIndex::build(&device, &pts, GpuLshParams::default(), 13);
        let (res, _) = idx.search(&device, &[pts[0].clone()], 8);
        let ds: Vec<f32> = res[0].iter().map(|&(_, d)| d).collect();
        for w in ds.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    /// The structural property the evaluation turns on: simulated time is
    /// nearly flat in the number of queries until the device fills up.
    #[test]
    fn latency_is_flat_in_query_count() {
        let pts = clustered(400, 6, 9);
        let device = Device::with_defaults();
        let idx = GpuLshIndex::build(&device, &pts, GpuLshParams::default(), 17);
        let queries: Vec<Vec<f32>> = clustered(256, 6, 10);
        let (_, t32) = idx.search(&device, &queries[..32], 5);
        let (_, t256) = idx.search(&device, &queries, 5);
        // 8x more queries, same single block: far less than 4x the time
        assert!(
            t256 < t32 * 4.0,
            "thread-per-query should be flat: {t32:.1} -> {t256:.1}"
        );
    }
}
