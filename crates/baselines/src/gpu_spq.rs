//! GPU-SPQ: brute-force match counting + SPQ selection (paper §VI-A2).
//!
//! No inverted index: the whole data set lives on the device as flat
//! keyword lists and *every* query scans *every* object, computing the
//! match count directly, before SPQ extracts the top-k. One thread per
//! (query, object) pair. This is the strawman GENIE beats by an order of
//! magnitude — its cost is `O(|Q| * n * object_len)` regardless of how
//! selective the queries are, and the per-query Count Table caps the
//! batch size.

use gpu_sim::{Device, GlobalU32, LaunchConfig};

use genie_core::model::{Object, Query};
use genie_core::topk::TopHit;

use crate::spq::spq_topk;

/// The device-resident flat object store.
pub struct GpuSpqData {
    /// Object keywords, concatenated.
    keywords: GlobalU32,
    /// CSR offsets: object i owns `keywords[offsets[i]..offsets[i+1]]`.
    offsets: GlobalU32,
    num_objects: usize,
}

impl GpuSpqData {
    /// Upload `objects` to the device (transfer recorded on `device`).
    pub fn upload(device: &Device, objects: &[Object]) -> Self {
        let mut offsets = Vec::with_capacity(objects.len() + 1);
        let mut keywords = Vec::new();
        offsets.push(0u32);
        for o in objects {
            keywords.extend_from_slice(&o.keywords);
            offsets.push(keywords.len() as u32);
        }
        let bytes = (keywords.len() + offsets.len()) as u64 * 4;
        device.record_h2d(bytes);
        Self {
            keywords: GlobalU32::from_host(&keywords),
            offsets: GlobalU32::from_host(&offsets),
            num_objects: objects.len(),
        }
    }

    pub fn num_objects(&self) -> usize {
        self.num_objects
    }
}

/// Result of a GPU-SPQ batch.
#[derive(Debug, Clone)]
pub struct GpuSpqOutput {
    pub results: Vec<Vec<TopHit>>,
    pub sim_us: f64,
    /// Dense Count Table footprint per query.
    pub bytes_per_query: u64,
}

/// Scan all objects for all queries, then SPQ-select the top-k.
pub fn search(
    device: &Device,
    data: &GpuSpqData,
    queries: &[Query],
    k: usize,
    block_dim: usize,
) -> GpuSpqOutput {
    let model = *device.cost_model();
    let num_queries = queries.len();
    let n = data.num_objects;
    if num_queries == 0 || n == 0 {
        return GpuSpqOutput {
            results: vec![Vec::new(); num_queries],
            sim_us: 0.0,
            bytes_per_query: 0,
        };
    }
    let mut sim_us = 0.0;

    // upload queries: flattened (lo, hi) item pairs + CSR offsets
    let mut item_words = Vec::new();
    let mut item_offsets = Vec::with_capacity(num_queries + 1);
    item_offsets.push(0u32);
    for q in queries {
        for it in &q.items {
            item_words.push(it.lo);
            item_words.push(it.hi);
        }
        item_offsets.push((item_words.len() / 2) as u32);
    }
    let h2d = (item_words.len() + item_offsets.len()) as u64 * 4;
    device.record_h2d(h2d);
    sim_us += model.transfer_us(h2d);
    let items_dev = GlobalU32::from_host(&item_words);
    let item_off_dev = GlobalU32::from_host(&item_offsets);

    let counts = GlobalU32::zeroed(num_queries * n);
    {
        let kw = &data.keywords;
        let off = &data.offsets;
        let it = &items_dev;
        let it_off = &item_off_dev;
        let c = &counts;
        let cfg = LaunchConfig::cover(num_queries * n, block_dim);
        let stats = device.launch("gpu_spq_scan", cfg, move |ctx| {
            let gid = ctx.global_id();
            if gid >= num_queries * n {
                return;
            }
            let q = gid / n;
            let o = gid % n;
            let ks = off.load(ctx, o) as usize;
            let ke = off.load(ctx, o + 1) as usize;
            let is = it_off.load(ctx, q) as usize;
            let ie = it_off.load(ctx, q + 1) as usize;
            // MC(Q, O) = Σ_items C(item, O): an element is counted once
            // per item containing it (Definition 2.1)
            let mut mc = 0u32;
            for ii in is..ie {
                let lo = it.load(ctx, ii * 2);
                let hi = it.load(ctx, ii * 2 + 1);
                for ki in ks..ke {
                    let key = kw.load(ctx, ki);
                    ctx.tick(1); // range comparison
                    if lo <= key && key <= hi {
                        mc += 1;
                    }
                }
            }
            if mc > 0 {
                c.store(ctx, gid, mc);
            }
        });
        sim_us += stats.sim_us(&model);
    }

    let spq = spq_topk(device, &counts, num_queries, n, k, block_dim);
    sim_us += spq.sim_us;

    GpuSpqOutput {
        results: spq.results,
        sim_us,
        bytes_per_query: (n * 4) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::model::{match_count, QueryItem};
    use genie_core::topk::reference_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn brute_force_scan_matches_model() {
        let mut rng = StdRng::seed_from_u64(5);
        let objects: Vec<Object> = (0..150)
            .map(|_| {
                let mut kws: Vec<u32> = (0..rng.random_range(1..7))
                    .map(|_| rng.random_range(0..30u32))
                    .collect();
                kws.sort_unstable();
                kws.dedup();
                Object::new(kws)
            })
            .collect();
        let queries: Vec<Query> = (0..6)
            .map(|_| {
                Query::new(
                    (0..rng.random_range(1..4))
                        .map(|_| {
                            let lo = rng.random_range(0..30u32);
                            QueryItem::range(lo, (lo + 2).min(29))
                        })
                        .collect(),
                )
            })
            .collect();
        let device = Device::with_defaults();
        let data = GpuSpqData::upload(&device, &objects);
        let out = search(&device, &data, &queries, 5, 64);
        for (qi, q) in queries.iter().enumerate() {
            let counts: Vec<u32> = objects.iter().map(|o| match_count(q, o)).collect();
            let exp: Vec<u32> = reference_top_k(&counts, 5)
                .iter()
                .map(|h| h.count)
                .collect();
            let got: Vec<u32> = out.results[qi].iter().map(|h| h.count).collect();
            assert_eq!(got, exp, "query {qi}");
        }
    }

    #[test]
    fn overlapping_items_count_element_once_per_item() {
        // one object with keyword 5; two query items both covering 5:
        // MC counts the element once per item -> 2
        let objects = vec![Object::new(vec![5])];
        let q = Query::new(vec![QueryItem::range(0, 10), QueryItem::range(5, 5)]);
        let device = Device::with_defaults();
        let data = GpuSpqData::upload(&device, &objects);
        let out = search(&device, &data, std::slice::from_ref(&q), 1, 32);
        assert_eq!(out.results[0][0].count, match_count(&q, &objects[0]));
    }
}
