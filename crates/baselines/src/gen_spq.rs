//! GEN-SPQ: GENIE's inverted index + dense Count Table + SPQ selection
//! (paper §VI-A2) — i.e. GENIE with c-PQ replaced by the baseline
//! selector. This is the ablation behind Figure 13 (running time) and
//! Table IV (memory per query: a full 32-bit count per object per query
//! instead of c-PQ's packed bitmap + small hash table).

use gpu_sim::{Device, GlobalU32, LaunchConfig};

use genie_core::exec::{build_scan_tasks, DeviceIndex, Engine};
use genie_core::model::Query;
use genie_core::topk::TopHit;

use crate::spq::spq_topk;

/// Result of a GEN-SPQ batch.
#[derive(Debug, Clone)]
pub struct GenSpqOutput {
    pub results: Vec<Vec<TopHit>>,
    /// Simulated device time (match + selection + transfers).
    pub sim_us: f64,
    /// Device bytes per query: the dense Count Table row (Table IV).
    pub bytes_per_query: u64,
}

/// Run the GEN-SPQ pipeline on an uploaded GENIE index.
pub fn search(
    engine: &Engine,
    dindex: &DeviceIndex,
    queries: &[Query],
    k: usize,
    block_dim: usize,
) -> GenSpqOutput {
    let device: &Device = engine.device();
    let model = *device.cost_model();
    let num_queries = queries.len();
    let n = dindex.index.num_objects() as usize;
    if num_queries == 0 || n == 0 {
        return GenSpqOutput {
            results: vec![Vec::new(); num_queries],
            sim_us: 0.0,
            bytes_per_query: 0,
        };
    }
    let mut sim_us = 0.0;

    // dense Count Table: one u32 per (query, object) — the memory cost
    // c-PQ exists to remove
    let counts = GlobalU32::zeroed(num_queries * n);

    // same host-side Position-Map resolution as GENIE
    let tasks = build_scan_tasks(&dindex.index, queries);
    let mut words = Vec::with_capacity(tasks.len() * 3);
    for t in &tasks {
        words.extend_from_slice(&[t.query, t.start, t.len]);
    }
    let tasks_dev = GlobalU32::from_host(&words);
    device.record_h2d(words.len() as u64 * 4);
    sim_us += model.transfer_us(words.len() as u64 * 4);

    if !tasks.is_empty() {
        let list = &dindex.list;
        let c = &counts;
        let td = &tasks_dev;
        let cfg = LaunchConfig::new(tasks.len(), block_dim);
        let stats = device.launch("gen_spq_match", cfg, move |ctx| {
            let t = ctx.block_idx * 3;
            let query = td.load(ctx, t) as usize;
            let start = td.load(ctx, t + 1) as usize;
            let len = td.load(ctx, t + 2) as usize;
            let mut i = ctx.thread_idx;
            while i < len {
                let object = list.load(ctx, start + i) as usize;
                c.atomic_add(ctx, query * n + object, 1);
                i += ctx.block_dim;
            }
        });
        sim_us += stats.sim_us(&model);
    }

    let spq = spq_topk(device, &counts, num_queries, n, k, block_dim);
    sim_us += spq.sim_us;

    GenSpqOutput {
        results: spq.results,
        sim_us,
        bytes_per_query: (n * 4) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use genie_core::index::IndexBuilder;
    use genie_core::model::{match_count, Object, QueryItem};
    use genie_core::topk::reference_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gen_spq_matches_genie_and_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200usize;
        let objects: Vec<Object> = (0..n)
            .map(|_| {
                let mut kws: Vec<u32> = (0..rng.random_range(1..6))
                    .map(|_| rng.random_range(0..40u32))
                    .collect();
                kws.sort_unstable();
                kws.dedup();
                Object::new(kws)
            })
            .collect();
        let queries: Vec<Query> = (0..8)
            .map(|_| {
                Query::new(
                    (0..rng.random_range(1..5))
                        .map(|_| {
                            let lo = rng.random_range(0..40u32);
                            QueryItem::range(lo, (lo + rng.random_range(0..3)).min(39))
                        })
                        .collect(),
                )
            })
            .collect();

        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        let index = Arc::new(b.build(None));
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let didx = engine.upload(index).unwrap();

        let k = 7;
        let out = search(&engine, &didx, &queries, k, 64);
        let genie = engine.search(&didx, &queries, k);
        for (qi, q) in queries.iter().enumerate() {
            let counts: Vec<u32> = objects.iter().map(|o| match_count(q, o)).collect();
            let expected: Vec<u32> = reference_top_k(&counts, k)
                .iter()
                .map(|h| h.count)
                .collect();
            let got: Vec<u32> = out.results[qi].iter().map(|h| h.count).collect();
            assert_eq!(got, expected, "query {qi} vs reference");
            let gen: Vec<u32> = genie.results[qi].iter().map(|h| h.count).collect();
            assert_eq!(got, gen, "query {qi} vs GENIE");
        }
        assert_eq!(out.bytes_per_query, 200 * 4);
        assert!(out.sim_us > 0.0);
    }

    #[test]
    fn empty_query_batch() {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![1]));
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let didx = engine.upload(Arc::new(b.build(None))).unwrap();
        let out = search(&engine, &didx, &[], 5, 64);
        assert!(out.results.is_empty());
    }
}
