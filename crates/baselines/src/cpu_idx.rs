//! CPU-Idx: the host-only inverted index baseline (paper §VI-A2).
//!
//! The same inverted index GENIE uses, scanned sequentially on the host
//! with a dense count array per query, followed by a partial selection
//! (`select_nth_unstable`, the analogue of the paper's C++
//! `partial_sort`/quickselect with Θ(n + k log n) behaviour).

use std::time::Instant;

use genie_core::exec::elapsed_us;
use genie_core::index::InvertedIndex;
use genie_core::model::Query;
use genie_core::topk::{partial_top_k as shared_partial_top_k, TopHit};

/// Result of a CPU-Idx batch.
#[derive(Debug, Clone)]
pub struct CpuIdxOutput {
    pub results: Vec<Vec<TopHit>>,
    /// Host wall-clock, microseconds.
    pub host_us: f64,
}

/// Run the queries sequentially on the host index.
pub fn search(index: &InvertedIndex, queries: &[Query], k: usize) -> CpuIdxOutput {
    let started = Instant::now();
    let n = index.num_objects() as usize;
    let list = index.list_array();
    let mut results = Vec::with_capacity(queries.len());
    let mut counts = vec![0u32; n]; // workhorse buffer, reused per query

    for query in queries {
        counts.fill(0);
        for item in &query.items {
            // adjacent segments merged into contiguous runs: the same
            // host-scan coalescing the CPU backend's kernel uses
            for seg in index.coalesced_segments_for_range(item.lo, item.hi) {
                for &obj in &list[seg.start as usize..(seg.start + seg.len) as usize] {
                    counts[obj as usize] += 1;
                }
            }
        }
        results.push(partial_top_k(&counts, k));
    }

    CpuIdxOutput {
        results,
        host_us: elapsed_us(started),
    }
}

/// Partial selection of the k largest nonzero counts (delegates to the
/// shared quickselect contract in [`genie_core::topk`]).
fn partial_top_k(counts: &[u32], k: usize) -> Vec<TopHit> {
    let hits: Vec<TopHit> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(id, &count)| TopHit {
            id: id as u32,
            count,
        })
        .collect();
    shared_partial_top_k(hits, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::index::IndexBuilder;
    use genie_core::model::{match_count, Object, QueryItem};
    use genie_core::topk::reference_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cpu_index_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(17);
        let objects: Vec<Object> = (0..250)
            .map(|_| {
                let mut kws: Vec<u32> = (0..rng.random_range(1..8))
                    .map(|_| rng.random_range(0..60u32))
                    .collect();
                kws.sort_unstable();
                kws.dedup();
                Object::new(kws)
            })
            .collect();
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        let index = b.build(None);

        let queries: Vec<Query> = (0..10)
            .map(|_| {
                Query::new(
                    (0..rng.random_range(1..5))
                        .map(|_| {
                            let lo = rng.random_range(0..60u32);
                            QueryItem::range(lo, (lo + rng.random_range(0..4)).min(59))
                        })
                        .collect(),
                )
            })
            .collect();

        let out = search(&index, &queries, 8);
        for (qi, q) in queries.iter().enumerate() {
            let counts: Vec<u32> = objects.iter().map(|o| match_count(q, o)).collect();
            assert_eq!(out.results[qi], reference_top_k(&counts, 8), "query {qi}");
        }
    }

    #[test]
    fn partial_selection_orders_prefix() {
        let hits = partial_top_k(&[3, 0, 9, 9, 1, 4], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].count, 9);
        assert_eq!(hits[1].count, 9);
        assert_eq!(hits[2].count, 4);
    }

    #[test]
    fn fewer_hits_than_k() {
        let hits = partial_top_k(&[0, 2, 0], 5);
        assert_eq!(hits, vec![TopHit { id: 1, count: 2 }]);
    }
}
