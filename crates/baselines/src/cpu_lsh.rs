//! CPU-LSH: C2LSH-style dynamic collision counting on the host
//! (paper §VI-A2; Gan et al. 2012).
//!
//! The idea the paper notes is "similar in spirit" to GENIE's counting:
//! a point is a kNN candidate once it collides with the query on at
//! least `αm` of the `m` hash functions. The dynamic part: if the
//! threshold yields fewer than k candidates, it is lowered and the scan
//! repeated until enough candidates exist, which are then verified with
//! exact distances. Entirely sequential — the CPU yardstick for the ANN
//! experiments.

use std::collections::HashMap;
use std::time::Instant;

use genie_core::exec::elapsed_us;
use genie_lsh::family::LshFamily;
use genie_lsh::knn::{distance, Metric};
use genie_lsh::transform::Transformer;

/// A host-side LSH collision-counting index.
pub struct CpuLsh<'a, F> {
    transformer: &'a Transformer<F>,
    /// bucket keyword -> point ids (the CPU "hash tables").
    postings: HashMap<u32, Vec<u32>>,
    points: &'a [Vec<f32>],
    metric: Metric,
    /// Initial collision fraction α (C2LSH's threshold).
    alpha: f64,
}

impl<'a, F: LshFamily<[f32]>> CpuLsh<'a, F> {
    /// Index `points` under the same transformer GENIE uses (so both see
    /// identical hash functions).
    pub fn build(
        transformer: &'a Transformer<F>,
        points: &'a [Vec<f32>],
        metric: Metric,
        alpha: f64,
    ) -> Self {
        let mut postings: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            for kw in transformer.to_object(&p[..]).keywords {
                postings.entry(kw).or_default().push(i as u32);
            }
        }
        Self {
            transformer,
            postings,
            points,
            metric,
            alpha,
        }
    }

    /// kNN of `query`: collision counting with a dynamically lowered
    /// threshold, then exact-distance verification of the candidates.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u32, f64)> {
        let m = self.transformer.family().num_functions();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for kw in self.transformer.to_query(query).items {
            if let Some(ids) = self.postings.get(&kw.lo) {
                for &id in ids {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        // dynamic collision threshold: start at αm, halve until at least
        // k candidates qualify (or the threshold bottoms out)
        let mut threshold = (self.alpha * m as f64).ceil().max(1.0) as u32;
        let mut candidates: Vec<u32>;
        loop {
            candidates = counts
                .iter()
                .filter(|(_, &c)| c >= threshold)
                .map(|(&id, _)| id)
                .collect();
            if candidates.len() >= k || threshold == 1 {
                break;
            }
            threshold = (threshold / 2).max(1);
        }
        // verification: exact distances over the candidate set
        let mut verified: Vec<(u32, f64)> = candidates
            .into_iter()
            .map(|id| (id, distance(self.metric, &self.points[id as usize], query)))
            .collect();
        verified.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        verified.truncate(k);
        verified
    }

    /// Batch wrapper with wall-clock timing.
    pub fn search(&self, queries: &[Vec<f32>], k: usize) -> (Vec<Vec<(u32, f64)>>, f64) {
        let started = Instant::now();
        let results = queries.iter().map(|q| self.knn(q, k)).collect();
        (results, elapsed_us(started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_lsh::e2lsh::E2Lsh;
    use genie_lsh::knn::exact_knn;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = (i % 3) as f32 * 15.0;
                (0..dim).map(|_| c + rng.random::<f32>()).collect()
            })
            .collect()
    }

    #[test]
    fn finds_itself_at_distance_zero() {
        let data = points(120, 6, 2);
        let t = Transformer::new(E2Lsh::new(32, 6, 4.0, 3), 512);
        let lsh = CpuLsh::build(&t, &data, Metric::L2, 0.8);
        let res = lsh.knn(&data[7], 1);
        assert_eq!(res[0].0, 7);
        assert_eq!(res[0].1, 0.0);
    }

    #[test]
    fn results_overlap_exact_knn() {
        let data = points(200, 6, 4);
        let t = Transformer::new(E2Lsh::new(48, 6, 6.0, 5), 1024);
        let lsh = CpuLsh::build(&t, &data, Metric::L2, 0.5);
        let q: Vec<f32> = data[11].iter().map(|v| v + 0.05).collect();
        let approx = lsh.knn(&q, 5);
        let exact = exact_knn(Metric::L2, &data, &q, 5);
        let exact_ids: std::collections::HashSet<u32> =
            exact.iter().map(|&(i, _)| i as u32).collect();
        let overlap = approx
            .iter()
            .filter(|(id, _)| exact_ids.contains(id))
            .count();
        assert!(overlap >= 3, "overlap {overlap}/5 too low");
    }

    #[test]
    fn threshold_lowering_recovers_candidates() {
        // a very strict alpha would find nothing without lowering
        let data = points(60, 4, 8);
        let t = Transformer::new(E2Lsh::new(16, 4, 0.5, 7), 256);
        let lsh = CpuLsh::build(&t, &data, Metric::L2, 1.0);
        // far-ish query: exact collisions on all 16 functions unlikely
        let q: Vec<f32> = data[0].iter().map(|v| v + 0.4).collect();
        let res = lsh.knn(&q, 3);
        assert!(!res.is_empty(), "dynamic threshold must yield candidates");
    }
}
