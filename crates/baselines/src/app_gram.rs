//! AppGram-style CPU sequence kNN (paper §VI-A2; Wang et al., "Efficient
//! and effective KNN sequence search with approximate n-grams").
//!
//! The CPU comparator for the DBLP experiments: an n-gram inverted index
//! scanned on the host, candidates ordered by shared-gram count, then
//! verified best-first with the count/length filters until the answer is
//! provably exact. Unlike GENIE's single-round search, this baseline
//! always runs to exactness — which is why its latency is orders of
//! magnitude above the device pipeline (Fig. 9c).

use std::collections::HashMap;
use std::time::Instant;

use genie_core::exec::elapsed_us;
use genie_sa::ngram::{ordered_ngrams, OrderedGram};
use genie_sa::verify::{verify_candidates, Candidate, VerifiedHit};

/// The host n-gram index.
pub struct AppGram {
    seqs: Vec<Vec<u8>>,
    n: usize,
    postings: HashMap<OrderedGram, Vec<u32>>,
}

impl AppGram {
    pub fn build(seqs: Vec<Vec<u8>>, n: usize) -> Self {
        let mut postings: HashMap<OrderedGram, Vec<u32>> = HashMap::new();
        for (i, s) in seqs.iter().enumerate() {
            for g in ordered_ngrams(s, n) {
                postings.entry(g).or_default().push(i as u32);
            }
        }
        Self { seqs, n, postings }
    }

    /// Exact kNN under edit distance for one query.
    pub fn knn(&self, query: &[u8], k: usize) -> Vec<VerifiedHit> {
        // count shared ordered grams per sequence
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for g in ordered_ngrams(query, self.n) {
            if let Some(ids) = self.postings.get(&g) {
                for &id in ids {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        // full candidate ordering (the CPU sort GENIE's c-PQ avoids)
        let mut candidates: Vec<Candidate> = counts
            .into_iter()
            .map(|(id, count)| Candidate { id, count })
            .collect();
        candidates.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        // best-first verification over the *entire* candidate list: the
        // θ filter stops as soon as exactness is guaranteed
        let (hits, _) = verify_candidates(
            query,
            &candidates,
            |id| &self.seqs[id as usize][..],
            self.n,
            k,
        );
        hits
    }

    /// Batch wrapper with wall-clock timing (microseconds).
    pub fn search(&self, queries: &[Vec<u8>], k: usize) -> (Vec<Vec<VerifiedHit>>, f64) {
        let started = Instant::now();
        let results = queries.iter().map(|q| self.knn(q, k)).collect();
        (results, elapsed_us(started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_sa::edit::edit_distance;

    fn corpus() -> Vec<Vec<u8>> {
        [
            "parallel inverted index",
            "parallel inverted lists",
            "sequential inverted index",
            "gpu accelerated search",
            "cpu accelerated search",
            "edit distance verification",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn exact_match_is_top1() {
        let ag = AppGram::build(corpus(), 3);
        let hits = ag.knn(b"parallel inverted index", 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[0].distance, 0);
    }

    #[test]
    fn knn_matches_brute_force_scan() {
        let data = corpus();
        let ag = AppGram::build(data.clone(), 3);
        for q in [&b"parallel invrted index"[..], b"gpu accelerated searches"] {
            let hits = ag.knn(q, 3);
            let mut brute: Vec<(u32, u32)> = data
                .iter()
                .enumerate()
                .map(|(i, s)| (edit_distance(q, s) as u32, i as u32))
                .collect();
            brute.sort_unstable();
            // every returned distance must match the true i-th smallest
            // among candidates sharing at least one gram; for these
            // queries all corpus entries share grams, so compare directly
            for (hit, &(d, _)) in hits.iter().zip(brute.iter()) {
                assert_eq!(hit.distance, d);
            }
        }
    }

    #[test]
    fn batch_reports_time() {
        let ag = AppGram::build(corpus(), 3);
        let (results, us) = ag.search(&[b"parallel inverted index".to_vec()], 1);
        assert_eq!(results[0][0].id, 0);
        assert!(us >= 0.0);
    }
}
