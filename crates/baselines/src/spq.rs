//! SPQ: GPU bucket k-selection from a dense count array (paper
//! Appendix A, after Alabi et al.'s bucketSelect).
//!
//! Each iteration partitions every count of a query's array into
//! `NUM_BUCKETS` equal-width value buckets (one full scan of the array),
//! locates the bucket containing the k-th largest value, banks the
//! counts above it and recurses into that bucket until its value range
//! collapses. A final scan collects the ids. This is the expensive,
//! multiple-full-scan selection that c-PQ exists to avoid: its cost is
//! `O(iterations * n)` per query versus c-PQ's single scan of a small
//! hash table.

use gpu_sim::{Device, GlobalU32, LaunchConfig};

use genie_core::topk::TopHit;

/// Value buckets per iteration (the reference implementation's choice).
pub const NUM_BUCKETS: usize = 32;

/// Hard cap on iterations; with 32-wide buckets a u32 range collapses in
/// at most 7, and bounded match counts in 2-3 (as the paper observes).
const MAX_ITERS: usize = 12;

/// Result of an SPQ selection over a `num_queries x n` count matrix.
#[derive(Debug, Clone)]
pub struct SpqOutput {
    pub results: Vec<Vec<TopHit>>,
    /// Simulated device time of all SPQ kernels and transfers.
    pub sim_us: f64,
    /// Bucket-partition iterations the slowest query needed.
    pub iterations: usize,
}

/// Select the top-k counts (with ids) of each query from a dense
/// device-resident count matrix laid out `query * n + object`.
#[allow(clippy::needless_range_loop)] // host loops index several parallel per-query arrays
pub fn spq_topk(
    device: &Device,
    counts: &GlobalU32,
    num_queries: usize,
    n: usize,
    k: usize,
    block_dim: usize,
) -> SpqOutput {
    assert!(k >= 1 && n >= 1);
    let model = *device.cost_model();
    let mut sim_us = 0.0;

    // per-query selection state, host side
    let mut lo = vec![1u32; num_queries]; // zero counts are never hits
    let mut hi = vec![0u32; num_queries];
    let mut k_rem = vec![k as u32; num_queries];
    let mut done = vec![false; num_queries];

    // pass 0: per-query maximum count
    let max_buf = GlobalU32::zeroed(num_queries);
    {
        let c = counts;
        let m = &max_buf;
        let cfg = LaunchConfig::cover(num_queries * n, block_dim);
        let stats = device.launch("spq_max", cfg, move |ctx| {
            let gid = ctx.global_id();
            if gid < num_queries * n {
                let v = c.load(ctx, gid);
                if v > 0 {
                    m.atomic_max(ctx, gid / n, v);
                }
            }
        });
        sim_us += stats.sim_us(&model);
    }
    let maxes = max_buf.to_host();
    device.record_d2h(num_queries as u64 * 4);
    sim_us += model.transfer_us(num_queries as u64 * 4);
    for (q, &max) in maxes.iter().enumerate() {
        hi[q] = max;
        if max == 0 {
            done[q] = true; // nothing matched this query at all
            lo[q] = 1;
            hi[q] = 0;
        }
    }

    // iterative bucket partition
    let hist = GlobalU32::zeroed(num_queries * NUM_BUCKETS);
    let state = GlobalU32::zeroed(num_queries * 3); // lo, hi, done per query
    let mut iterations = 0;
    for _ in 0..MAX_ITERS {
        if done.iter().all(|&d| d) {
            break;
        }
        iterations += 1;
        // upload iteration state
        for q in 0..num_queries {
            state.write_host(q * 3, lo[q]);
            state.write_host(q * 3 + 1, hi[q]);
            state.write_host(q * 3 + 2, done[q] as u32);
        }
        device.record_h2d(num_queries as u64 * 12);
        sim_us += model.transfer_us(num_queries as u64 * 12);
        hist.clear();

        let c = counts;
        let h = &hist;
        let s = &state;
        let cfg = LaunchConfig::cover(num_queries * n, block_dim);
        let stats = device.launch("spq_hist", cfg, move |ctx| {
            let gid = ctx.global_id();
            if gid >= num_queries * n {
                return;
            }
            let q = gid / n;
            if s.load(ctx, q * 3 + 2) != 0 {
                return;
            }
            let qlo = s.load(ctx, q * 3);
            let qhi = s.load(ctx, q * 3 + 1);
            let v = c.load(ctx, gid);
            if v < qlo || v > qhi {
                return;
            }
            let width = (qhi - qlo) / NUM_BUCKETS as u32 + 1;
            let bucket = ((v - qlo) / width) as usize;
            h.atomic_add(ctx, q * NUM_BUCKETS + bucket, 1);
        });
        sim_us += stats.sim_us(&model);

        let host_hist = hist.to_host();
        device.record_d2h((num_queries * NUM_BUCKETS * 4) as u64);
        sim_us += model.transfer_us((num_queries * NUM_BUCKETS * 4) as u64);

        for q in 0..num_queries {
            if done[q] {
                continue;
            }
            let width = (hi[q] - lo[q]) / NUM_BUCKETS as u32 + 1;
            let row = &host_hist[q * NUM_BUCKETS..(q + 1) * NUM_BUCKETS];
            // scan from the top value bucket down to the one holding the
            // k-th largest
            let mut above = 0u32;
            let mut chosen = None;
            for b in (0..NUM_BUCKETS).rev() {
                if above + row[b] >= k_rem[q] {
                    chosen = Some(b);
                    break;
                }
                above += row[b];
            }
            match chosen {
                Some(b) => {
                    k_rem[q] -= above;
                    let new_lo = lo[q] + b as u32 * width;
                    let new_hi = (new_lo + width - 1).min(hi[q]);
                    lo[q] = new_lo;
                    hi[q] = new_hi;
                    if new_lo == new_hi {
                        done[q] = true; // threshold found: lo[q]
                    }
                }
                None => {
                    // fewer than k_rem nonzero counts in range: threshold
                    // collapses to the range bottom
                    lo[q] = lo[q].saturating_sub(0);
                    hi[q] = lo[q];
                    done[q] = true;
                }
            }
        }
    }

    // final collection: ids with count > threshold are certain; ids with
    // count == threshold fill the remainder (ties broken arbitrarily)
    let cap = k;
    let sure = GlobalU64::zeroed(num_queries * cap);
    let sure_len = GlobalU32::zeroed(num_queries);
    let ties = GlobalU64::zeroed(num_queries * cap);
    let ties_len = GlobalU32::zeroed(num_queries);
    let thresh = GlobalU32::zeroed(num_queries);
    for q in 0..num_queries {
        thresh.write_host(q, lo[q]);
    }
    device.record_h2d(num_queries as u64 * 4);
    sim_us += model.transfer_us(num_queries as u64 * 4);
    {
        let c = counts;
        let t = &thresh;
        let (s, sl) = (&sure, &sure_len);
        let (ti, tl) = (&ties, &ties_len);
        let cfg = LaunchConfig::cover(num_queries * n, block_dim);
        let stats = device.launch("spq_collect", cfg, move |ctx| {
            let gid = ctx.global_id();
            if gid >= num_queries * n {
                return;
            }
            let q = gid / n;
            let o = (gid % n) as u32;
            let v = c.load(ctx, gid);
            if v == 0 {
                return;
            }
            let th = t.load(ctx, q);
            let packed = ((o as u64) << 32) | v as u64;
            if v > th {
                let pos = sl.atomic_add(ctx, q, 1) as usize;
                if pos < cap {
                    s.store(ctx, q * cap + pos, packed);
                }
            } else if v == th {
                let pos = tl.atomic_add(ctx, q, 1) as usize;
                if pos < cap {
                    ti.store(ctx, q * cap + pos, packed);
                }
            }
        });
        sim_us += stats.sim_us(&model);
    }

    let d2h = (num_queries * cap * 16 + num_queries * 8) as u64;
    device.record_d2h(d2h);
    sim_us += model.transfer_us(d2h);

    let sure_host = sure.to_host();
    let sure_lens = sure_len.to_host();
    let tie_host = ties.to_host();
    let tie_lens = ties_len.to_host();
    let mut results = Vec::with_capacity(num_queries);
    for q in 0..num_queries {
        let mut hits: Vec<TopHit> = sure_host[q * cap..q * cap + (sure_lens[q] as usize).min(cap)]
            .iter()
            .map(|&p| TopHit {
                id: (p >> 32) as u32,
                count: p as u32,
            })
            .collect();
        hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        let mut tie_hits: Vec<TopHit> = tie_host
            [q * cap..q * cap + (tie_lens[q] as usize).min(cap)]
            .iter()
            .map(|&p| TopHit {
                id: (p >> 32) as u32,
                count: p as u32,
            })
            .collect();
        tie_hits.sort_unstable_by_key(|a| a.id);
        for t in tie_hits {
            if hits.len() >= k {
                break;
            }
            hits.push(t);
        }
        hits.truncate(k);
        results.push(hits);
    }

    SpqOutput {
        results,
        sim_us,
        iterations,
    }
}

use gpu_sim::GlobalU64;

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::topk::reference_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::needless_range_loop)]
    fn run_case(counts: Vec<Vec<u32>>, k: usize) {
        let num_queries = counts.len();
        let n = counts[0].len();
        let flat: Vec<u32> = counts.iter().flatten().copied().collect();
        let device = Device::with_defaults();
        let buf = GlobalU32::from_host(&flat);
        let out = spq_topk(&device, &buf, num_queries, n, k, 128);
        for q in 0..num_queries {
            let expected = reference_top_k(&counts[q], k);
            let got = &out.results[q];
            let got_counts: Vec<u32> = got.iter().map(|h| h.count).collect();
            let exp_counts: Vec<u32> = expected.iter().map(|h| h.count).collect();
            assert_eq!(got_counts, exp_counts, "query {q} count profile");
            for h in got {
                assert_eq!(counts[q][h.id as usize], h.count);
            }
        }
    }

    #[test]
    fn selects_simple_topk() {
        run_case(vec![vec![5, 1, 9, 3, 9, 0, 2, 7]], 3);
    }

    #[test]
    fn handles_many_ties() {
        run_case(vec![vec![4; 20]], 5);
        run_case(vec![vec![1, 2, 2, 2, 2, 2, 3]], 4);
    }

    #[test]
    fn fewer_nonzero_than_k() {
        run_case(vec![vec![0, 0, 7, 0, 1, 0]], 5);
    }

    #[test]
    fn all_zero_counts_yield_empty() {
        let device = Device::with_defaults();
        let buf = GlobalU32::from_host(&[0, 0, 0, 0]);
        let out = spq_topk(&device, &buf, 1, 4, 3, 32);
        assert!(out.results[0].is_empty());
    }

    #[test]
    fn multiple_queries_are_independent() {
        run_case(
            vec![
                vec![1, 2, 3, 4, 5, 6, 7, 8],
                vec![8, 7, 6, 5, 4, 3, 2, 1],
                vec![0, 0, 0, 0, 0, 0, 0, 9],
            ],
            2,
        );
    }

    #[test]
    fn random_matrices_match_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..5 {
            let n = rng.random_range(50..400);
            let q = rng.random_range(1..6);
            let bound = [3u32, 16, 100, 5000][trial % 4];
            let counts: Vec<Vec<u32>> = (0..q)
                .map(|_| (0..n).map(|_| rng.random_range(0..=bound)).collect())
                .collect();
            run_case(counts, rng.random_range(1..20));
        }
    }

    #[test]
    fn converges_in_few_iterations_for_bounded_counts() {
        // bounded counts (like real match counts) collapse quickly
        let counts: Vec<u32> = (0..1000u32).map(|i| i % 14 + 1).collect();
        let device = Device::with_defaults();
        let buf = GlobalU32::from_host(&counts);
        let out = spq_topk(&device, &buf, 1, 1000, 10, 128);
        assert!(
            out.iterations <= 3,
            "paper: usually 2-3 iterations, got {}",
            out.iterations
        );
    }
}
