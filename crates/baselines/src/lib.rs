//! # genie-baselines — the competitors of the GENIE evaluation (§VI-A2)
//!
//! Every method GENIE is compared against in the paper, implemented from
//! its cited description so the evaluation's relative shapes can be
//! regenerated:
//!
//! * [`spq`] — the GPU bucket k-selection of Appendix A (Alabi et al.),
//!   the "SPQ" component shared by two baselines;
//! * [`gpu_spq`] — **GPU-SPQ**: full data scan computing match counts,
//!   then SPQ top-k extraction (no inverted index at all);
//! * [`gen_spq`] — **GEN-SPQ**: GENIE's inverted index feeding a dense
//!   Count Table, then SPQ extraction (GENIE minus c-PQ — the Fig. 13 /
//!   Table IV ablation);
//! * [`cpu_idx`] — **CPU-Idx**: host inverted index + partial selection;
//! * [`cpu_lsh`] — **CPU-LSH**: C2LSH-style dynamic collision counting
//!   on the host;
//! * [`gpu_lsh`] — **GPU-LSH**: bi-level LSH with one *thread* per query
//!   and sort-based short-list selection (Pan & Manocha), on the same
//!   simulated device;
//! * [`app_gram`] — **AppGram**-style CPU sequence kNN with n-gram
//!   count filtering and incremental verification.

pub mod app_gram;
pub mod cpu_idx;
pub mod cpu_lsh;
pub mod gen_spq;
pub mod gpu_lsh;
pub mod gpu_spq;
pub mod spq;
