//! Frame codec: typed [`Request`]/[`Response`] values ⇄ length-prefixed
//! wire frames, plus the [`WireError`] taxonomy that mirrors the
//! in-process error types on the wire.
//!
//! See the [`protocol`](crate::protocol) module for the normative frame
//! layout, handshake state machine and error-code table. Everything
//! here is pure buffer work — no sockets — so the torture suite can
//! hammer the decoder with truncated/garbage/oversized inputs directly.

use genie_core::model::{Query, QueryBuildError, QueryItem};
use genie_core::topk::TopHit;

use crate::wire::{ByteReader, ByteWriter, DecodeError};

/// The protocol version this build speaks. A [`Request::Hello`]
/// carrying any other version is rejected with
/// [`WireError::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u16 = 1;

/// The handshake magic leading every [`Request::Hello`] payload. A
/// connection whose first frame does not carry it is not speaking this
/// protocol at all and is dropped after a typed reject.
pub const HELLO_MAGIC: [u8; 4] = *b"GNET";

/// Default cap on one frame's body length (kind byte + request id +
/// payload). Frames declaring more are answered with
/// [`WireError::TooLarge`] and the connection is dropped without
/// reading (let alone allocating) the oversized body.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Request ids `0` is reserved for handshake frames (Hello / Welcome /
/// Reject), which precede pipelining.
pub const HANDSHAKE_REQUEST_ID: u64 = 0;

// Frame kind bytes. Requests sit below 0x80, responses at or above it.
const KIND_HELLO: u8 = 0x01;
const KIND_SEARCH: u8 = 0x10;
const KIND_SEARCH_ADAPTIVE: u8 = 0x11;
const KIND_INSERT: u8 = 0x12;
const KIND_DELETE: u8 = 0x13;
const KIND_UPSERT: u8 = 0x14;
const KIND_MUTATE: u8 = 0x15;
const KIND_COMPACT: u8 = 0x16;
const KIND_MUTATION_STATUS: u8 = 0x17;
const KIND_CREATE_COLLECTION: u8 = 0x18;
const KIND_REINDEX: u8 = 0x19;
const KIND_LIST_COLLECTIONS: u8 = 0x1A;
const KIND_STATS: u8 = 0x1B;

const KIND_WELCOME: u8 = 0x81;
const KIND_REJECT: u8 = 0x82;
const KIND_SEARCH_OK: u8 = 0x90;
const KIND_IDS_OK: u8 = 0x91;
const KIND_ACK: u8 = 0x92;
const KIND_COMPACT_OK: u8 = 0x93;
const KIND_STATUS_OK: u8 = 0x94;
const KIND_CREATED: u8 = 0x95;
const KIND_REINDEXED: u8 = 0x96;
const KIND_COLLECTIONS: u8 = 0x97;
const KIND_STATS_OK: u8 = 0x98;
const KIND_ERROR: u8 = 0xE0;

/// One client→server frame body (request id carried alongside).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake opener: protocol version + optional auth token
    /// (empty string = none). Must be the first frame on a connection.
    Hello { version: u16, token: String },
    /// Top-`k` match-count search against one collection.
    Search {
        collection: u64,
        k: u32,
        query: Query,
    },
    /// Adaptive search: one search per candidate count in `schedule`,
    /// answered by the first *saturated* round (fewer hits than asked —
    /// a larger K cannot add more) or the last round otherwise.
    SearchAdaptive {
        collection: u64,
        k: u32,
        schedule: Vec<u32>,
        query: Query,
    },
    /// Insert one object (its keyword multiset); replies with the
    /// assigned stable id.
    Insert { collection: u64, keywords: Vec<u32> },
    /// Delete objects by id.
    Delete { collection: u64, ids: Vec<u32> },
    /// Delete `id` and insert a replacement in one atomic batch;
    /// replies with the replacement's new id.
    Upsert {
        collection: u64,
        id: u32,
        keywords: Vec<u32>,
    },
    /// General mutation batch: deletes then inserts, atomic.
    Mutate {
        collection: u64,
        deletes: Vec<u32>,
        inserts: Vec<Vec<u32>>,
    },
    /// Fold pending delta + tombstones into fresh base shards.
    Compact { collection: u64 },
    /// Live/delta/tombstone bookkeeping of one collection.
    MutationStatus { collection: u64 },
    /// Build a new collection from raw objects, sharded `shards` ways.
    CreateCollection {
        name: String,
        shards: u32,
        objects: Vec<Vec<u32>>,
    },
    /// Rebuild an existing collection over new objects.
    Reindex {
        collection: u64,
        objects: Vec<Vec<u32>>,
    },
    /// Registered collections with shard counts and live sizes.
    ListCollections,
    /// Server + service counters snapshot.
    Stats,
}

/// One entry of a [`Response::Collections`] listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionInfo {
    pub id: u64,
    pub name: String,
    pub shards: u32,
    pub len: u64,
}

/// One server→client frame body (request id carried alongside).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; the server speaks `version`.
    Welcome { version: u16 },
    /// Handshake rejected; the connection closes after this frame.
    Reject { error: WireError },
    /// Answer to `Search`/`SearchAdaptive`. `rounds` is 1 for plain
    /// searches, the number of schedule rounds consumed for adaptive.
    Search {
        rounds: u32,
        audit_threshold: u32,
        hits: Vec<TopHit>,
    },
    /// Ids assigned by `Insert`/`Upsert`/`Mutate` (in insert order).
    Ids { ids: Vec<u32> },
    /// Success without payload (`Delete`).
    Ack,
    /// Whether a `Compact` actually folded anything.
    Compacted { applied: bool },
    /// Answer to `MutationStatus`.
    MutationStatus {
        live: u64,
        delta: u64,
        tombstones: u64,
        base_shards: u64,
        next_id: u32,
    },
    /// Id of a freshly created collection.
    Created { collection: u64 },
    /// Simulated upload time of a `Reindex` swap.
    Reindexed { upload_sim_us: f64 },
    /// Answer to `ListCollections`.
    Collections { entries: Vec<CollectionInfo> },
    /// Answer to `Stats`: flat name→value counters (service counters
    /// first, then the server's `net/...` connection counters).
    Stats { fields: Vec<(String, f64)> },
    /// Typed failure of the tagged request — see [`WireError`].
    Error { error: WireError },
}

/// `QueryBuildError` as it travels the wire. Identical taxonomy, but
/// `&'static str` payloads become owned strings on decode — use
/// [`BuildError::from`] to convert outbound and compare variants
/// inbound.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    EmptyQuery,
    EmptyRange {
        lo: u32,
        hi: u32,
    },
    KeywordOutOfRange {
        keyword: u32,
        universe: u32,
    },
    NonFinite {
        what: String,
    },
    Negative {
        what: String,
    },
    EmptyNumericRange {
        attr: u64,
        lo: f64,
        hi: f64,
    },
    UnknownAttribute {
        attr: u64,
        num_attributes: u64,
    },
    TypeMismatch {
        attr: u64,
        expected: String,
    },
    ValueOutOfRange {
        attr: u64,
        value: u32,
        cardinality: u32,
    },
    RowArity {
        got: u64,
        expected: u64,
    },
}

impl From<QueryBuildError> for BuildError {
    fn from(e: QueryBuildError) -> Self {
        match e {
            QueryBuildError::EmptyQuery => Self::EmptyQuery,
            QueryBuildError::EmptyRange { lo, hi } => Self::EmptyRange { lo, hi },
            QueryBuildError::KeywordOutOfRange { keyword, universe } => {
                Self::KeywordOutOfRange { keyword, universe }
            }
            QueryBuildError::NonFinite { what } => Self::NonFinite { what: what.into() },
            QueryBuildError::Negative { what } => Self::Negative { what: what.into() },
            QueryBuildError::EmptyNumericRange { attr, lo, hi } => Self::EmptyNumericRange {
                attr: attr as u64,
                lo,
                hi,
            },
            QueryBuildError::UnknownAttribute {
                attr,
                num_attributes,
            } => Self::UnknownAttribute {
                attr: attr as u64,
                num_attributes: num_attributes as u64,
            },
            QueryBuildError::TypeMismatch { attr, expected } => Self::TypeMismatch {
                attr: attr as u64,
                expected: expected.into(),
            },
            QueryBuildError::ValueOutOfRange {
                attr,
                value,
                cardinality,
            } => Self::ValueOutOfRange {
                attr: attr as u64,
                value,
                cardinality,
            },
            QueryBuildError::RowArity { got, expected } => Self::RowArity {
                got: got as u64,
                expected: expected as u64,
            },
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "query spec has no items"),
            Self::EmptyRange { lo, hi } => write!(f, "empty keyword range [{lo}, {hi}] (lo > hi)"),
            Self::KeywordOutOfRange { keyword, universe } => {
                write!(f, "keyword {keyword} outside the universe 0..{universe}")
            }
            Self::NonFinite { what } => write!(f, "{what} must be finite (got NaN or infinity)"),
            Self::Negative { what } => write!(f, "{what} must be non-negative"),
            Self::EmptyNumericRange { attr, lo, hi } => {
                write!(f, "empty numeric range [{lo}, {hi}] on attribute {attr}")
            }
            Self::UnknownAttribute {
                attr,
                num_attributes,
            } => write!(
                f,
                "attribute {attr} out of range (schema has {num_attributes})"
            ),
            Self::TypeMismatch { attr, expected } => {
                write!(f, "attribute {attr} is not {expected}")
            }
            Self::ValueOutOfRange {
                attr,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} out of range for attribute {attr} (cardinality {cardinality})"
            ),
            Self::RowArity { got, expected } => write!(
                f,
                "row has {got} cells but the schema has {expected} attributes"
            ),
        }
    }
}

/// The full wire error taxonomy — what an [`Response::Error`] (or a
/// handshake [`Response::Reject`]) carries. Mirrors the in-process
/// types: `QueryBuildError` → [`WireError::Build`], `DbError`/
/// `MutateError` variants → the corresponding variants here, plus the
/// transport-only conditions (malformed frame, oversized frame,
/// version mismatch, auth failure, shutdown).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame could not be decoded (truncated body, unknown kind,
    /// trailing bytes, bad UTF-8 ...). The connection is dropped after
    /// this frame — the stream can no longer be trusted to be in sync.
    Protocol(String),
    /// A frame declared a body longer than the server's cap.
    TooLarge { len: u64, max: u64 },
    /// Handshake version mismatch.
    UnsupportedVersion { got: u16, want: u16 },
    /// Handshake token mismatch.
    Auth(String),
    /// The server is draining; no new requests are admitted.
    ShuttingDown,
    /// A request named a collection id the service does not have.
    UnknownCollection(u64),
    /// A delete/upsert named an object id that is not live
    /// (mirrors `MutateError::UnknownId`; the batch was not applied).
    UnknownId(u32),
    /// Mirrors `DbError::NoBackends`.
    NoBackends,
    /// Mirrors `DbError::InvalidShards`.
    InvalidShards(String),
    /// Operational service failure (mirrors `DbError::Service` /
    /// `MutateError::Service` / `SearchError::Service`).
    Service(String),
    /// The query/item failed typed validation (mirrors
    /// `QueryBuildError` via [`BuildError`]).
    Build(BuildError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Protocol(d) => write!(f, "protocol error: {d}"),
            Self::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            Self::UnsupportedVersion { got, want } => {
                write!(
                    f,
                    "unsupported protocol version {got} (server speaks {want})"
                )
            }
            Self::Auth(d) => write!(f, "authentication failed: {d}"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::UnknownCollection(id) => write!(f, "unknown collection id {id}"),
            Self::UnknownId(id) => write!(f, "cannot delete unknown object id {id}"),
            Self::NoBackends => write!(f, "no backends configured"),
            Self::InvalidShards(d) => write!(f, "invalid shard configuration: {d}"),
            Self::Service(d) => write!(f, "service error: {d}"),
            Self::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<QueryBuildError> for WireError {
    fn from(e: QueryBuildError) -> Self {
        Self::Build(e.into())
    }
}

// ---- error codes (see crate::protocol for the normative table) ----

const ERR_PROTOCOL: u16 = 1;
const ERR_TOO_LARGE: u16 = 2;
const ERR_UNSUPPORTED_VERSION: u16 = 3;
const ERR_AUTH: u16 = 4;
const ERR_SHUTTING_DOWN: u16 = 5;
const ERR_UNKNOWN_COLLECTION: u16 = 6;
const ERR_UNKNOWN_ID: u16 = 7;
const ERR_NO_BACKENDS: u16 = 8;
const ERR_INVALID_SHARDS: u16 = 9;
const ERR_SERVICE: u16 = 10;
const ERR_BUILD_EMPTY_QUERY: u16 = 100;
const ERR_BUILD_EMPTY_RANGE: u16 = 101;
const ERR_BUILD_KEYWORD_OUT_OF_RANGE: u16 = 102;
const ERR_BUILD_NON_FINITE: u16 = 103;
const ERR_BUILD_NEGATIVE: u16 = 104;
const ERR_BUILD_EMPTY_NUMERIC_RANGE: u16 = 105;
const ERR_BUILD_UNKNOWN_ATTRIBUTE: u16 = 106;
const ERR_BUILD_TYPE_MISMATCH: u16 = 107;
const ERR_BUILD_VALUE_OUT_OF_RANGE: u16 = 108;
const ERR_BUILD_ROW_ARITY: u16 = 109;

impl WireError {
    /// The numeric code this error travels under (protocol §errors).
    pub fn code(&self) -> u16 {
        match self {
            Self::Protocol(_) => ERR_PROTOCOL,
            Self::TooLarge { .. } => ERR_TOO_LARGE,
            Self::UnsupportedVersion { .. } => ERR_UNSUPPORTED_VERSION,
            Self::Auth(_) => ERR_AUTH,
            Self::ShuttingDown => ERR_SHUTTING_DOWN,
            Self::UnknownCollection(_) => ERR_UNKNOWN_COLLECTION,
            Self::UnknownId(_) => ERR_UNKNOWN_ID,
            Self::NoBackends => ERR_NO_BACKENDS,
            Self::InvalidShards(_) => ERR_INVALID_SHARDS,
            Self::Service(_) => ERR_SERVICE,
            Self::Build(b) => match b {
                BuildError::EmptyQuery => ERR_BUILD_EMPTY_QUERY,
                BuildError::EmptyRange { .. } => ERR_BUILD_EMPTY_RANGE,
                BuildError::KeywordOutOfRange { .. } => ERR_BUILD_KEYWORD_OUT_OF_RANGE,
                BuildError::NonFinite { .. } => ERR_BUILD_NON_FINITE,
                BuildError::Negative { .. } => ERR_BUILD_NEGATIVE,
                BuildError::EmptyNumericRange { .. } => ERR_BUILD_EMPTY_NUMERIC_RANGE,
                BuildError::UnknownAttribute { .. } => ERR_BUILD_UNKNOWN_ATTRIBUTE,
                BuildError::TypeMismatch { .. } => ERR_BUILD_TYPE_MISMATCH,
                BuildError::ValueOutOfRange { .. } => ERR_BUILD_VALUE_OUT_OF_RANGE,
                BuildError::RowArity { .. } => ERR_BUILD_ROW_ARITY,
            },
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(self.code());
        match self {
            Self::Protocol(d) | Self::Auth(d) | Self::InvalidShards(d) | Self::Service(d) => {
                w.put_str(d)
            }
            Self::TooLarge { len, max } => {
                w.put_u64(*len);
                w.put_u64(*max);
            }
            Self::UnsupportedVersion { got, want } => {
                w.put_u16(*got);
                w.put_u16(*want);
            }
            Self::ShuttingDown | Self::NoBackends => {}
            Self::UnknownCollection(id) => w.put_u64(*id),
            Self::UnknownId(id) => w.put_u32(*id),
            Self::Build(b) => match b {
                BuildError::EmptyQuery => {}
                BuildError::EmptyRange { lo, hi } => {
                    w.put_u32(*lo);
                    w.put_u32(*hi);
                }
                BuildError::KeywordOutOfRange { keyword, universe } => {
                    w.put_u32(*keyword);
                    w.put_u32(*universe);
                }
                BuildError::NonFinite { what } | BuildError::Negative { what } => w.put_str(what),
                BuildError::EmptyNumericRange { attr, lo, hi } => {
                    w.put_u64(*attr);
                    w.put_f64(*lo);
                    w.put_f64(*hi);
                }
                BuildError::UnknownAttribute {
                    attr,
                    num_attributes,
                } => {
                    w.put_u64(*attr);
                    w.put_u64(*num_attributes);
                }
                BuildError::TypeMismatch { attr, expected } => {
                    w.put_u64(*attr);
                    w.put_str(expected);
                }
                BuildError::ValueOutOfRange {
                    attr,
                    value,
                    cardinality,
                } => {
                    w.put_u64(*attr);
                    w.put_u32(*value);
                    w.put_u32(*cardinality);
                }
                BuildError::RowArity { got, expected } => {
                    w.put_u64(*got);
                    w.put_u64(*expected);
                }
            },
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let code = r.get_u16("error code")?;
        Ok(match code {
            ERR_PROTOCOL => Self::Protocol(r.get_str("protocol detail")?),
            ERR_TOO_LARGE => Self::TooLarge {
                len: r.get_u64("oversized len")?,
                max: r.get_u64("frame cap")?,
            },
            ERR_UNSUPPORTED_VERSION => Self::UnsupportedVersion {
                got: r.get_u16("got version")?,
                want: r.get_u16("want version")?,
            },
            ERR_AUTH => Self::Auth(r.get_str("auth detail")?),
            ERR_SHUTTING_DOWN => Self::ShuttingDown,
            ERR_UNKNOWN_COLLECTION => Self::UnknownCollection(r.get_u64("collection id")?),
            ERR_UNKNOWN_ID => Self::UnknownId(r.get_u32("object id")?),
            ERR_NO_BACKENDS => Self::NoBackends,
            ERR_INVALID_SHARDS => Self::InvalidShards(r.get_str("shards detail")?),
            ERR_SERVICE => Self::Service(r.get_str("service detail")?),
            ERR_BUILD_EMPTY_QUERY => Self::Build(BuildError::EmptyQuery),
            ERR_BUILD_EMPTY_RANGE => Self::Build(BuildError::EmptyRange {
                lo: r.get_u32("range lo")?,
                hi: r.get_u32("range hi")?,
            }),
            ERR_BUILD_KEYWORD_OUT_OF_RANGE => Self::Build(BuildError::KeywordOutOfRange {
                keyword: r.get_u32("keyword")?,
                universe: r.get_u32("universe")?,
            }),
            ERR_BUILD_NON_FINITE => Self::Build(BuildError::NonFinite {
                what: r.get_str("what")?,
            }),
            ERR_BUILD_NEGATIVE => Self::Build(BuildError::Negative {
                what: r.get_str("what")?,
            }),
            ERR_BUILD_EMPTY_NUMERIC_RANGE => Self::Build(BuildError::EmptyNumericRange {
                attr: r.get_u64("attr")?,
                lo: r.get_f64("numeric lo")?,
                hi: r.get_f64("numeric hi")?,
            }),
            ERR_BUILD_UNKNOWN_ATTRIBUTE => Self::Build(BuildError::UnknownAttribute {
                attr: r.get_u64("attr")?,
                num_attributes: r.get_u64("num attributes")?,
            }),
            ERR_BUILD_TYPE_MISMATCH => Self::Build(BuildError::TypeMismatch {
                attr: r.get_u64("attr")?,
                expected: r.get_str("expected kind")?,
            }),
            ERR_BUILD_VALUE_OUT_OF_RANGE => Self::Build(BuildError::ValueOutOfRange {
                attr: r.get_u64("attr")?,
                value: r.get_u32("value")?,
                cardinality: r.get_u32("cardinality")?,
            }),
            ERR_BUILD_ROW_ARITY => Self::Build(BuildError::RowArity {
                got: r.get_u64("got arity")?,
                expected: r.get_u64("expected arity")?,
            }),
            _ => {
                return Err(DecodeError::BadTag {
                    what: "error code",
                    tag: (code & 0xFF) as u8,
                })
            }
        })
    }
}

fn put_query(w: &mut ByteWriter, query: &Query) {
    w.put_u32(query.items.len() as u32);
    for item in &query.items {
        w.put_u32(item.lo);
        w.put_u32(item.hi);
    }
}

fn get_query(r: &mut ByteReader<'_>) -> Result<Query, DecodeError> {
    let n = r.get_count("query items")?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = r.get_u32("item lo")?;
        let hi = r.get_u32("item hi")?;
        items.push(QueryItem { lo, hi });
    }
    Ok(Query::new(items))
}

fn put_objects(w: &mut ByteWriter, objects: &[Vec<u32>]) {
    w.put_u32(objects.len() as u32);
    for o in objects {
        w.put_u32s(o);
    }
}

fn get_objects(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u32>>, DecodeError> {
    let n = r.get_count("object list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u32s("object keywords")?);
    }
    Ok(out)
}

/// Encode one request as a complete frame (length prefix included).
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64);
    w.put_u32(0); // length backpatched below
    match request {
        Request::Hello { version, token } => {
            w.put_u8(KIND_HELLO);
            w.put_u64(request_id);
            for b in HELLO_MAGIC {
                w.put_u8(b);
            }
            w.put_u16(*version);
            w.put_str(token);
        }
        Request::Search {
            collection,
            k,
            query,
        } => {
            w.put_u8(KIND_SEARCH);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32(*k);
            put_query(&mut w, query);
        }
        Request::SearchAdaptive {
            collection,
            k,
            schedule,
            query,
        } => {
            w.put_u8(KIND_SEARCH_ADAPTIVE);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32(*k);
            w.put_u32s(schedule);
            put_query(&mut w, query);
        }
        Request::Insert {
            collection,
            keywords,
        } => {
            w.put_u8(KIND_INSERT);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32s(keywords);
        }
        Request::Delete { collection, ids } => {
            w.put_u8(KIND_DELETE);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32s(ids);
        }
        Request::Upsert {
            collection,
            id,
            keywords,
        } => {
            w.put_u8(KIND_UPSERT);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32(*id);
            w.put_u32s(keywords);
        }
        Request::Mutate {
            collection,
            deletes,
            inserts,
        } => {
            w.put_u8(KIND_MUTATE);
            w.put_u64(request_id);
            w.put_u64(*collection);
            w.put_u32s(deletes);
            put_objects(&mut w, inserts);
        }
        Request::Compact { collection } => {
            w.put_u8(KIND_COMPACT);
            w.put_u64(request_id);
            w.put_u64(*collection);
        }
        Request::MutationStatus { collection } => {
            w.put_u8(KIND_MUTATION_STATUS);
            w.put_u64(request_id);
            w.put_u64(*collection);
        }
        Request::CreateCollection {
            name,
            shards,
            objects,
        } => {
            w.put_u8(KIND_CREATE_COLLECTION);
            w.put_u64(request_id);
            w.put_str(name);
            w.put_u32(*shards);
            put_objects(&mut w, objects);
        }
        Request::Reindex {
            collection,
            objects,
        } => {
            w.put_u8(KIND_REINDEX);
            w.put_u64(request_id);
            w.put_u64(*collection);
            put_objects(&mut w, objects);
        }
        Request::ListCollections => {
            w.put_u8(KIND_LIST_COLLECTIONS);
            w.put_u64(request_id);
        }
        Request::Stats => {
            w.put_u8(KIND_STATS);
            w.put_u64(request_id);
        }
    }
    finish_frame(w)
}

/// Encode one response as a complete frame (length prefix included).
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64);
    w.put_u32(0); // length backpatched below
    match response {
        Response::Welcome { version } => {
            w.put_u8(KIND_WELCOME);
            w.put_u64(request_id);
            w.put_u16(*version);
        }
        Response::Reject { error } => {
            w.put_u8(KIND_REJECT);
            w.put_u64(request_id);
            error.encode(&mut w);
        }
        Response::Search {
            rounds,
            audit_threshold,
            hits,
        } => {
            w.put_u8(KIND_SEARCH_OK);
            w.put_u64(request_id);
            w.put_u32(*rounds);
            w.put_u32(*audit_threshold);
            w.put_u32(hits.len() as u32);
            for h in hits {
                w.put_u32(h.id);
                w.put_u32(h.count);
            }
        }
        Response::Ids { ids } => {
            w.put_u8(KIND_IDS_OK);
            w.put_u64(request_id);
            w.put_u32s(ids);
        }
        Response::Ack => {
            w.put_u8(KIND_ACK);
            w.put_u64(request_id);
        }
        Response::Compacted { applied } => {
            w.put_u8(KIND_COMPACT_OK);
            w.put_u64(request_id);
            w.put_u8(u8::from(*applied));
        }
        Response::MutationStatus {
            live,
            delta,
            tombstones,
            base_shards,
            next_id,
        } => {
            w.put_u8(KIND_STATUS_OK);
            w.put_u64(request_id);
            w.put_u64(*live);
            w.put_u64(*delta);
            w.put_u64(*tombstones);
            w.put_u64(*base_shards);
            w.put_u32(*next_id);
        }
        Response::Created { collection } => {
            w.put_u8(KIND_CREATED);
            w.put_u64(request_id);
            w.put_u64(*collection);
        }
        Response::Reindexed { upload_sim_us } => {
            w.put_u8(KIND_REINDEXED);
            w.put_u64(request_id);
            w.put_f64(*upload_sim_us);
        }
        Response::Collections { entries } => {
            w.put_u8(KIND_COLLECTIONS);
            w.put_u64(request_id);
            w.put_u32(entries.len() as u32);
            for e in entries {
                w.put_u64(e.id);
                w.put_str(&e.name);
                w.put_u32(e.shards);
                w.put_u64(e.len);
            }
        }
        Response::Stats { fields } => {
            w.put_u8(KIND_STATS_OK);
            w.put_u64(request_id);
            w.put_u32(fields.len() as u32);
            for (name, value) in fields {
                w.put_str(name);
                w.put_f64(*value);
            }
        }
        Response::Error { error } => {
            w.put_u8(KIND_ERROR);
            w.put_u64(request_id);
            error.encode(&mut w);
        }
    }
    finish_frame(w)
}

/// Backpatch the 4-byte length prefix over the assembled frame.
fn finish_frame(w: ByteWriter) -> Vec<u8> {
    let mut bytes = w.into_vec();
    let body_len = (bytes.len() - 4) as u32;
    bytes[..4].copy_from_slice(&body_len.to_le_bytes());
    bytes
}

/// Decode one request frame body (everything after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), DecodeError> {
    let mut r = ByteReader::new(body);
    let kind = r.get_u8("frame kind")?;
    let request_id = r.get_u64("request id")?;
    let request = match kind {
        KIND_HELLO => {
            let mut magic = [0u8; 4];
            for b in &mut magic {
                *b = r.get_u8("hello magic")?;
            }
            if magic != HELLO_MAGIC {
                return Err(DecodeError::BadTag {
                    what: "hello magic",
                    tag: magic[0],
                });
            }
            Request::Hello {
                version: r.get_u16("hello version")?,
                token: r.get_str("hello token")?,
            }
        }
        KIND_SEARCH => Request::Search {
            collection: r.get_u64("collection id")?,
            k: r.get_u32("k")?,
            query: get_query(&mut r)?,
        },
        KIND_SEARCH_ADAPTIVE => Request::SearchAdaptive {
            collection: r.get_u64("collection id")?,
            k: r.get_u32("k")?,
            schedule: r.get_u32s("schedule")?,
            query: get_query(&mut r)?,
        },
        KIND_INSERT => Request::Insert {
            collection: r.get_u64("collection id")?,
            keywords: r.get_u32s("keywords")?,
        },
        KIND_DELETE => Request::Delete {
            collection: r.get_u64("collection id")?,
            ids: r.get_u32s("ids")?,
        },
        KIND_UPSERT => Request::Upsert {
            collection: r.get_u64("collection id")?,
            id: r.get_u32("object id")?,
            keywords: r.get_u32s("keywords")?,
        },
        KIND_MUTATE => Request::Mutate {
            collection: r.get_u64("collection id")?,
            deletes: r.get_u32s("deletes")?,
            inserts: get_objects(&mut r)?,
        },
        KIND_COMPACT => Request::Compact {
            collection: r.get_u64("collection id")?,
        },
        KIND_MUTATION_STATUS => Request::MutationStatus {
            collection: r.get_u64("collection id")?,
        },
        KIND_CREATE_COLLECTION => Request::CreateCollection {
            name: r.get_str("collection name")?,
            shards: r.get_u32("shards")?,
            objects: get_objects(&mut r)?,
        },
        KIND_REINDEX => Request::Reindex {
            collection: r.get_u64("collection id")?,
            objects: get_objects(&mut r)?,
        },
        KIND_LIST_COLLECTIONS => Request::ListCollections,
        KIND_STATS => Request::Stats,
        tag => {
            return Err(DecodeError::BadTag {
                what: "request kind",
                tag,
            })
        }
    };
    r.finish()?;
    Ok((request_id, request))
}

/// Decode one response frame body (everything after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), DecodeError> {
    let mut r = ByteReader::new(body);
    let kind = r.get_u8("frame kind")?;
    let request_id = r.get_u64("request id")?;
    let response = match kind {
        KIND_WELCOME => Response::Welcome {
            version: r.get_u16("welcome version")?,
        },
        KIND_REJECT => Response::Reject {
            error: WireError::decode(&mut r)?,
        },
        KIND_SEARCH_OK => {
            let rounds = r.get_u32("rounds")?;
            let audit_threshold = r.get_u32("audit threshold")?;
            let n = r.get_count("hits")?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.get_u32("hit id")?;
                let count = r.get_u32("hit count")?;
                hits.push(TopHit { id, count });
            }
            Response::Search {
                rounds,
                audit_threshold,
                hits,
            }
        }
        KIND_IDS_OK => Response::Ids {
            ids: r.get_u32s("ids")?,
        },
        KIND_ACK => Response::Ack,
        KIND_COMPACT_OK => Response::Compacted {
            applied: r.get_u8("applied")? != 0,
        },
        KIND_STATUS_OK => Response::MutationStatus {
            live: r.get_u64("live")?,
            delta: r.get_u64("delta")?,
            tombstones: r.get_u64("tombstones")?,
            base_shards: r.get_u64("base shards")?,
            next_id: r.get_u32("next id")?,
        },
        KIND_CREATED => Response::Created {
            collection: r.get_u64("collection id")?,
        },
        KIND_REINDEXED => Response::Reindexed {
            upload_sim_us: r.get_f64("upload time")?,
        },
        KIND_COLLECTIONS => {
            let n = r.get_count("collection entries")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(CollectionInfo {
                    id: r.get_u64("collection id")?,
                    name: r.get_str("collection name")?,
                    shards: r.get_u32("shards")?,
                    len: r.get_u64("len")?,
                });
            }
            Response::Collections { entries }
        }
        KIND_STATS_OK => {
            let n = r.get_count("stats fields")?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str("field name")?;
                let value = r.get_f64("field value")?;
                fields.push((name, value));
            }
            Response::Stats { fields }
        }
        KIND_ERROR => Response::Error {
            error: WireError::decode(&mut r)?,
        },
        tag => {
            return Err(DecodeError::BadTag {
                what: "response kind",
                tag,
            })
        }
    };
    r.finish()?;
    Ok((request_id, response))
}

/// What [`read_frame`] can fail with.
#[derive(Debug)]
pub enum FrameReadError {
    /// The socket failed mid-frame (includes EOF *inside* a frame —
    /// only an EOF exactly on a frame boundary is a clean close).
    Io(std::io::Error),
    /// The length prefix declared a body beyond the cap. The body was
    /// **not** read; the stream is unusable past this point.
    TooLarge { len: u64, max: u64 },
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error reading frame: {e}"),
            Self::TooLarge { len, max } => {
                write!(
                    f,
                    "incoming frame of {len} bytes exceeds the {max}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for FrameReadError {}

/// What one [`FrameReader::read`] call produced.
#[derive(Debug)]
pub enum FrameProgress {
    /// One complete frame body.
    Frame(Vec<u8>),
    /// Clean close: EOF exactly on a frame boundary.
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut` on a socket with a
    /// read timeout). Partial prefix/body bytes are retained in the
    /// reader — call [`FrameReader::read`] again to continue the same
    /// frame. `mid_frame` says whether a frame has started, so pollers
    /// can tell an idle tick from a stalled sender.
    TimedOut {
        /// Some bytes of the current frame have already arrived.
        mid_frame: bool,
    },
}

/// Incremental length-prefixed frame decoder that survives read
/// timeouts.
///
/// Serving loops poll sockets with short read timeouts (to notice
/// shutdown); a frame whose bytes straddle a timeout must not lose the
/// bytes already consumed, or the stream desyncs and mid-body bytes
/// get parsed as a fresh length prefix. `FrameReader` keeps the
/// partial prefix/body across [`FrameProgress::TimedOut`] returns and
/// resumes exactly where it stopped — the caller decides how long a
/// stalled frame may keep waiting (and can check shutdown flags or
/// deadlines between calls, so a trickling peer can never pin its
/// thread forever).
#[derive(Debug, Default)]
pub struct FrameReader {
    len_bytes: [u8; 4],
    /// Prefix bytes read so far (0..=4).
    prefix_filled: usize,
    /// Allocated once the prefix is complete and under the cap.
    body: Option<Vec<u8>>,
    body_filled: usize,
}

impl FrameReader {
    /// A reader positioned on a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Some bytes of the current frame have arrived but the frame is
    /// not complete.
    pub fn mid_frame(&self) -> bool {
        self.prefix_filled > 0 || self.body.is_some()
    }

    /// Pull bytes from `r` until a full frame, EOF, or a timeout.
    ///
    /// A frame whose prefix declares more than `max_len` bytes is
    /// rejected without allocating or reading its body; the stream is
    /// unusable past that point. Interrupted reads are retried; EOF
    /// mid-frame is an [`FrameReadError::Io`] with `UnexpectedEof`.
    pub fn read(
        &mut self,
        r: &mut impl std::io::Read,
        max_len: u32,
    ) -> Result<FrameProgress, FrameReadError> {
        loop {
            let mid_frame = self.mid_frame();
            let (buf, filled) = match &mut self.body {
                Some(body) => (&mut body[..], &mut self.body_filled),
                None => (&mut self.len_bytes[..], &mut self.prefix_filled),
            };
            if *filled < buf.len() {
                match r.read(&mut buf[*filled..]) {
                    Ok(0) if !mid_frame => return Ok(FrameProgress::Eof),
                    Ok(0) => {
                        return Err(FrameReadError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        )))
                    }
                    Ok(n) => {
                        *filled += n;
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(FrameProgress::TimedOut { mid_frame })
                    }
                    Err(e) => return Err(FrameReadError::Io(e)),
                }
            }
            if self.body.is_none() {
                let len = u32::from_le_bytes(self.len_bytes);
                if len > max_len {
                    return Err(FrameReadError::TooLarge {
                        len: len as u64,
                        max: max_len as u64,
                    });
                }
                self.body = Some(vec![0u8; len as usize]);
                self.body_filled = 0;
                continue;
            }
            let body = self.body.take().expect("checked above");
            self.prefix_filled = 0;
            self.body_filled = 0;
            return Ok(FrameProgress::Frame(body));
        }
    }
}

/// Read one length-prefixed frame body from `r`, blocking-style.
///
/// Returns `Ok(None)` on a clean close (EOF exactly at a frame
/// boundary). A frame longer than `max_len` is rejected without
/// reading or allocating its body. Interrupted reads are retried; a
/// read timeout (at any point in the frame) surfaces as
/// [`FrameReadError::Io`] with `TimedOut`. Poll-style callers that
/// must survive timeouts without losing frame bytes use
/// [`FrameReader`] directly.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_len: u32,
) -> Result<Option<Vec<u8>>, FrameReadError> {
    match FrameReader::new().read(r, max_len)? {
        FrameProgress::Frame(body) => Ok(Some(body)),
        FrameProgress::Eof => Ok(None),
        FrameProgress::TimedOut { mid_frame } => Err(FrameReadError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            if mid_frame {
                "read timed out mid-frame"
            } else {
                "read timed out on a frame boundary"
            },
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
                token: "secret".into(),
            },
            Request::Search {
                collection: 3,
                k: 10,
                query: Query::new(vec![QueryItem::range(2, 9), QueryItem::exact(40)]),
            },
            Request::SearchAdaptive {
                collection: 0,
                k: 5,
                schedule: vec![5, 10, 20],
                query: Query::from_keywords(&[1, 2, 3]),
            },
            Request::Insert {
                collection: 1,
                keywords: vec![7, 7, 9],
            },
            Request::Delete {
                collection: 1,
                ids: vec![0, 4],
            },
            Request::Upsert {
                collection: 1,
                id: 2,
                keywords: vec![11],
            },
            Request::Mutate {
                collection: 2,
                deletes: vec![5],
                inserts: vec![vec![1, 2], vec![], vec![3]],
            },
            Request::Compact { collection: 2 },
            Request::MutationStatus { collection: 2 },
            Request::CreateCollection {
                name: "docs".into(),
                shards: 4,
                objects: vec![vec![0, 1], vec![2]],
            },
            Request::Reindex {
                collection: 0,
                objects: vec![vec![9]],
            },
            Request::ListCollections,
            Request::Stats,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Welcome {
                version: PROTOCOL_VERSION,
            },
            Response::Reject {
                error: WireError::UnsupportedVersion { got: 9, want: 1 },
            },
            Response::Search {
                rounds: 2,
                audit_threshold: 4,
                hits: vec![TopHit { id: 8, count: 3 }, TopHit { id: 2, count: 3 }],
            },
            Response::Ids { ids: vec![10, 11] },
            Response::Ack,
            Response::Compacted { applied: true },
            Response::MutationStatus {
                live: 100,
                delta: 3,
                tombstones: 1,
                base_shards: 2,
                next_id: 104,
            },
            Response::Created { collection: 7 },
            Response::Reindexed {
                upload_sim_us: 123.5,
            },
            Response::Collections {
                entries: vec![CollectionInfo {
                    id: 0,
                    name: "default".into(),
                    shards: 1,
                    len: 42,
                }],
            },
            Response::Stats {
                fields: vec![("served".into(), 9.0), ("net/frames_in".into(), 21.0)],
            },
            Response::Error {
                error: WireError::Build(BuildError::KeywordOutOfRange {
                    keyword: 900,
                    universe: 100,
                }),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let frame = encode_request(i as u64 + 1, &req);
            let body = &frame[4..];
            assert_eq!(
                u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
                body.len()
            );
            let (id, back) = decode_request(body).unwrap();
            assert_eq!(id, i as u64 + 1);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for (i, resp) in sample_responses().into_iter().enumerate() {
            let frame = encode_response(i as u64 + 100, &resp);
            let (id, back) = decode_response(&frame[4..]).unwrap();
            assert_eq!(id, i as u64 + 100);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn every_wire_error_round_trips_with_its_code() {
        let errors = vec![
            WireError::Protocol("bad frame".into()),
            WireError::TooLarge {
                len: 1 << 40,
                max: 8 << 20,
            },
            WireError::UnsupportedVersion { got: 2, want: 1 },
            WireError::Auth("token mismatch".into()),
            WireError::ShuttingDown,
            WireError::UnknownCollection(3),
            WireError::UnknownId(77),
            WireError::NoBackends,
            WireError::InvalidShards("zero shards".into()),
            WireError::Service("backend gone".into()),
            WireError::Build(BuildError::EmptyQuery),
            WireError::Build(BuildError::EmptyRange { lo: 5, hi: 2 }),
            WireError::Build(BuildError::KeywordOutOfRange {
                keyword: 9,
                universe: 4,
            }),
            WireError::Build(BuildError::NonFinite {
                what: "weight".into(),
            }),
            WireError::Build(BuildError::Negative {
                what: "radius".into(),
            }),
            WireError::Build(BuildError::EmptyNumericRange {
                attr: 1,
                lo: 3.0,
                hi: 1.0,
            }),
            WireError::Build(BuildError::UnknownAttribute {
                attr: 9,
                num_attributes: 3,
            }),
            WireError::Build(BuildError::TypeMismatch {
                attr: 0,
                expected: "numeric".into(),
            }),
            WireError::Build(BuildError::ValueOutOfRange {
                attr: 2,
                value: 9,
                cardinality: 4,
            }),
            WireError::Build(BuildError::RowArity {
                got: 2,
                expected: 3,
            }),
        ];
        let mut seen_codes = std::collections::HashSet::new();
        for e in errors {
            assert!(seen_codes.insert(e.code()), "duplicate code {}", e.code());
            let frame = encode_response(5, &Response::Error { error: e.clone() });
            let (_, back) = decode_response(&frame[4..]).unwrap();
            assert_eq!(back, Response::Error { error: e });
        }
    }

    #[test]
    fn build_errors_mirror_query_build_error_displays() {
        // the client-facing message matches the in-process one, so an
        // application can switch transports without changing its error
        // handling
        let cases: Vec<QueryBuildError> = vec![
            QueryBuildError::EmptyQuery,
            QueryBuildError::EmptyRange { lo: 5, hi: 2 },
            QueryBuildError::KeywordOutOfRange {
                keyword: 9,
                universe: 4,
            },
            QueryBuildError::NonFinite { what: "weight" },
            QueryBuildError::Negative { what: "radius" },
            QueryBuildError::EmptyNumericRange {
                attr: 1,
                lo: 3.0,
                hi: 1.0,
            },
            QueryBuildError::UnknownAttribute {
                attr: 9,
                num_attributes: 3,
            },
            QueryBuildError::TypeMismatch {
                attr: 0,
                expected: "numeric",
            },
            QueryBuildError::ValueOutOfRange {
                attr: 2,
                value: 9,
                cardinality: 4,
            },
            QueryBuildError::RowArity {
                got: 2,
                expected: 3,
            },
        ];
        for e in cases {
            let wire: BuildError = e.clone().into();
            assert_eq!(wire.to_string(), e.to_string());
        }
    }

    #[test]
    fn truncated_frames_never_panic() {
        for req in sample_requests() {
            let frame = encode_request(1, &req);
            let body = &frame[4..];
            for cut in 0..body.len() {
                assert!(decode_request(&body[..cut]).is_err());
            }
        }
        for resp in sample_responses() {
            let frame = encode_response(1, &resp);
            let body = &frame[4..];
            for cut in 0..body.len() {
                assert!(decode_response(&body[..cut]).is_err());
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = encode_request(1, &Request::Stats);
        frame.push(0xAB);
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn read_frame_enforces_the_cap_and_handles_eof() {
        use std::io::Cursor;
        // clean EOF at a boundary
        assert!(read_frame(&mut Cursor::new(vec![]), 1024)
            .unwrap()
            .is_none());
        // EOF mid-prefix
        assert!(read_frame(&mut Cursor::new(vec![1, 0]), 1024).is_err());
        // EOF mid-body
        let mut partial = 10u32.to_le_bytes().to_vec();
        partial.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut Cursor::new(partial), 1024).is_err());
        // over-cap length prefix rejected without reading the body
        let huge = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(huge), 1024),
            Err(FrameReadError::TooLarge { .. })
        ));
        // a well-formed frame comes back whole
        let frame = encode_request(9, &Request::ListCollections);
        let body = read_frame(&mut Cursor::new(frame.clone()), 1024)
            .unwrap()
            .unwrap();
        assert_eq!(body, frame[4..].to_vec());
    }

    /// Yields one byte per read, returning `WouldBlock` between every
    /// pair of bytes — the worst-case trickling sender against a socket
    /// with a read timeout.
    struct TrickleRead {
        bytes: Vec<u8>,
        pos: usize,
        give_next: bool,
    }

    impl std::io::Read for TrickleRead {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos == self.bytes.len() {
                return Ok(0);
            }
            if !self.give_next {
                self.give_next = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "simulated poll timeout",
                ));
            }
            self.give_next = false;
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    /// Timeouts at *every* byte boundary — inside the prefix and inside
    /// the body — must never desync the stream: every frame decodes
    /// whole and in order (the REVIEW regression for mid-body
    /// timeouts being parsed as fresh length prefixes).
    #[test]
    fn frame_reader_survives_timeouts_at_every_byte() {
        let requests = sample_requests();
        let mut wire = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            wire.extend_from_slice(&encode_request(i as u64, req));
        }
        let mut r = TrickleRead {
            bytes: wire,
            pos: 0,
            give_next: false,
        };
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut timeouts = 0usize;
        loop {
            match reader.read(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap() {
                FrameProgress::Frame(body) => {
                    decoded.push(decode_request(&body).unwrap());
                }
                FrameProgress::Eof => break,
                FrameProgress::TimedOut { .. } => timeouts += 1,
            }
        }
        assert!(timeouts > 0, "the trickle must actually time out");
        assert_eq!(decoded.len(), requests.len());
        for (i, (req, (id, got))) in requests.iter().zip(&decoded).enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(got, req);
        }
    }

    /// A frame boundary timeout reports `mid_frame: false`; once any
    /// byte of the prefix has arrived it reports `mid_frame: true`.
    #[test]
    fn frame_reader_reports_mid_frame() {
        let frame = encode_request(3, &Request::Stats);
        let mut r = TrickleRead {
            bytes: frame,
            pos: 0,
            give_next: false,
        };
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read(&mut r, 1024).unwrap(),
            FrameProgress::TimedOut { mid_frame: false }
        ));
        assert!(!reader.mid_frame());
        // consume one byte, then hit the next timeout
        match reader.read(&mut r, 1024).unwrap() {
            FrameProgress::TimedOut { mid_frame } => {
                assert!(mid_frame);
                assert!(reader.mid_frame());
            }
            other => panic!("expected a mid-frame timeout, got {other:?}"),
        }
    }
}
