//! The normative GENIE wire-protocol specification (v1).
//!
//! This module is documentation only — the codec lives in
//! [`frame`](crate::frame), the serving loop in
//! [`server`](crate::server). Everything a third-party client needs to
//! interoperate is specified here.
//!
//! # Transport and frame layout
//!
//! The protocol runs over one TCP connection. Both directions carry a
//! stream of *frames*; every frame is:
//!
//! ```text
//! ┌───────────┬──────────┬──────────────┬─────────────┐
//! │ len: u32  │ kind: u8 │ request: u64 │ payload ... │
//! └───────────┴──────────┴──────────────┴─────────────┘
//!   little-endian; `len` counts kind + request id + payload
//! ```
//!
//! * All integers are little-endian. Strings are `u32` byte length +
//!   UTF-8 bytes. Sequences are `u32` element count + elements.
//! * `len` must not exceed the receiver's frame cap
//!   ([`DEFAULT_MAX_FRAME_LEN`](crate::frame::DEFAULT_MAX_FRAME_LEN) by
//!   default). An oversized frame is answered with error code 2
//!   (`TooLarge`) and the connection is dropped **without reading the
//!   body** — the declared length alone is the offence.
//! * A frame must decode to exactly `len` bytes: trailing bytes inside
//!   the payload are a protocol error (the stream is out of sync).
//!
//! Request kinds occupy `0x01..0x80`, response kinds `0x80..0xFF`; see
//! the tables below.
//!
//! # Handshake state machine
//!
//! ```text
//!             ┌─────────┐  Hello{magic,version,token}   ┌──────────┐
//!   connect──▶│ EXPECT  │──────────────────────────────▶│ VALIDATE │
//!             │  HELLO  │                               └────┬─────┘
//!             └────┬────┘             version == 1, token ok │  bad version /
//!                  │ anything else                           │  bad token /
//!                  │ first                                   │  bad magic
//!                  ▼                                         ▼
//!             ┌─────────┐        ┌───────────┐          ┌────────┐
//!             │  DROP   │◀───────│ PIPELINED │◀─Welcome─│ Reject │──▶ close
//!             └─────────┘        │ EXCHANGE  │          └────────┘
//!                                └───────────┘
//! ```
//!
//! 1. The client's **first frame** must be `Hello` (kind `0x01`,
//!    request id 0): the 4-byte magic `"GNET"`, the client's protocol
//!    version (`u16`), and an auth token string (empty = none).
//! 2. The server validates in order: magic, version, token. Failure
//!    answers with a `Reject` frame (kind `0x82`, request id 0)
//!    carrying the typed error — code 3 (`UnsupportedVersion`, payload
//!    `got: u16, want: u16`) or code 4 (`Auth`) — then closes. Any
//!    first frame that is not a well-formed `Hello` is answered with a
//!    code-1 `Protocol` reject (when a reply can still be framed) and
//!    dropped.
//! 3. Success answers `Welcome` (kind `0x81`, request id 0) carrying
//!    the server's version, and the connection enters the pipelined
//!    exchange.
//!
//! ## Version negotiation
//!
//! Version 1 requires an exact match: the `Welcome.version` equals the
//! `Hello.version` or the handshake was rejected. The `want` field of
//! the code-3 reject tells a newer client which version to re-dial
//! with — negotiation is reconnect-based, keeping the accepted-path
//! state machine trivial.
//!
//! # Pipelined exchange
//!
//! After `Welcome`, the client may send any number of request frames
//! without waiting for replies. Every request carries a client-chosen
//! nonzero `request` id (id 0 is reserved for the handshake); ids
//! should be unique among in-flight requests on the connection. The
//! server answers **every** accepted request with exactly one response
//! frame tagged with the same id, **in completion order** — not
//! submission order. Searches batched into one service wave complete
//! together; a slow search does not block a later quick mutation's
//! reply. Clients must therefore match replies by id, not position.
//!
//! | kind | request            | payload |
//! |------|--------------------|---------|
//! | 0x01 | Hello              | magic `[u8;4]`, version u16, token str |
//! | 0x10 | Search             | collection u64, k u32, items (lo u32, hi u32)... |
//! | 0x11 | SearchAdaptive     | collection u64, k u32, schedule u32..., items ... |
//! | 0x12 | Insert             | collection u64, keywords u32... |
//! | 0x13 | Delete             | collection u64, ids u32... |
//! | 0x14 | Upsert             | collection u64, id u32, keywords u32... |
//! | 0x15 | Mutate             | collection u64, deletes u32..., objects (keywords u32...)... |
//! | 0x16 | Compact            | collection u64 |
//! | 0x17 | MutationStatus     | collection u64 |
//! | 0x18 | CreateCollection   | name str, shards u32, objects ... |
//! | 0x19 | Reindex            | collection u64, objects ... |
//! | 0x1A | ListCollections    | — |
//! | 0x1B | Stats              | — |
//!
//! | kind | response       | payload |
//! |------|----------------|---------|
//! | 0x81 | Welcome        | version u16 |
//! | 0x82 | Reject         | error (see below) |
//! | 0x90 | Search         | rounds u32, audit_threshold u32, hits (id u32, count u32)... |
//! | 0x91 | Ids            | ids u32... |
//! | 0x92 | Ack            | — |
//! | 0x93 | Compacted      | applied u8 |
//! | 0x94 | MutationStatus | live u64, delta u64, tombstones u64, base_shards u64, next_id u32 |
//! | 0x95 | Created        | collection u64 |
//! | 0x96 | Reindexed      | upload_sim_us f64 |
//! | 0x97 | Collections    | entries (id u64, name str, shards u32, len u64)... |
//! | 0x98 | Stats          | fields (name str, value f64)... |
//! | 0xE0 | Error          | error (see below) |
//!
//! `SearchAdaptive` semantics: the server runs one search per candidate
//! count in `schedule` (all submitted at once, so they batch into the
//! same wave) and replies with the first **saturated** round — one that
//! returned fewer hits than its candidate count asked for, proving a
//! larger K could not add more — or the last round otherwise. `rounds`
//! reports how many schedule entries were consumed.
//!
//! # Stats fields and compatibility
//!
//! The `Stats` response is a flat list of `(name, value)` rows — a
//! self-describing map, not a positional struct. Clients MUST look
//! names up by key and ignore rows they do not recognise; servers MAY
//! append new rows in any release without a version bump. That is the
//! protocol's only extension mechanism, and it keeps every v1 client
//! compatible with every v1 server.
//!
//! Three row families are currently emitted:
//!
//! * `service/...` — the serving counters, mirroring
//!   [`ServiceStats`](genie_service::ServiceStats) field for field
//!   (e.g. `service/waves`, `service/cache_hits`). Since the placement
//!   extension this family also carries `service/placed_shard_runs`,
//!   `service/hot_shard_events`, `service/rebalances`,
//!   `service/stale_rebalances`, and the fleet-mean learned cost model
//!   (`service/learned_base_us`, `service/learned_us_per_posting`,
//!   `service/cost_observations`).
//! * `backend/{i}/{name}/...` — one group per fleet backend, in fleet
//!   order: lifetime usage (`batches`, `queries`, `failed`, `retired`,
//!   `probes` — booleans encode as 0/1) and the backend's **learned**
//!   scan-cost model (`learned_base_us`, `learned_us_per_posting`,
//!   `cost_observations`), the scheduler's online EWMA of
//!   predicted-vs-actual wave cost. `retired`/`failed` expose circuit-
//!   breaker state remotely; the learned rows expose per-backend
//!   capacity as rebalancing sees it.
//! * `net/...` — transport counters of the serving process
//!   (`net/frames_in`, `net/active_connections`, ...).
//!
//! # Error frames and codes
//!
//! A failed request is answered with an `Error` frame (kind `0xE0`)
//! tagged with its request id: `code: u16` followed by a code-specific
//! payload. The codes mirror the in-process error taxonomy — a network
//! client sees exactly the errors an embedded caller sees, plus the
//! transport-only codes 1–5.
//!
//! | code | meaning                 | payload | mirrors |
//! |------|-------------------------|---------|---------|
//! | 1    | Protocol                | detail str | — (malformed frame) |
//! | 2    | TooLarge                | len u64, max u64 | — |
//! | 3    | UnsupportedVersion      | got u16, want u16 | — |
//! | 4    | Auth                    | detail str | — |
//! | 5    | ShuttingDown            | — | service shutdown |
//! | 6    | UnknownCollection       | id u64 | `DbError::UnknownId` (collection) |
//! | 7    | UnknownId               | id u32 | `MutateError::UnknownId` |
//! | 8    | NoBackends              | — | `DbError::NoBackends` |
//! | 9    | InvalidShards           | detail str | `DbError::InvalidShards` |
//! | 10   | Service                 | detail str | `*::Service` |
//! | 100  | Build/EmptyQuery        | — | `QueryBuildError::EmptyQuery` |
//! | 101  | Build/EmptyRange        | lo u32, hi u32 | `…::EmptyRange` |
//! | 102  | Build/KeywordOutOfRange | keyword u32, universe u32 | `…::KeywordOutOfRange` |
//! | 103  | Build/NonFinite         | what str | `…::NonFinite` |
//! | 104  | Build/Negative          | what str | `…::Negative` |
//! | 105  | Build/EmptyNumericRange | attr u64, lo f64, hi f64 | `…::EmptyNumericRange` |
//! | 106  | Build/UnknownAttribute  | attr u64, num u64 | `…::UnknownAttribute` |
//! | 107  | Build/TypeMismatch      | attr u64, expected str | `…::TypeMismatch` |
//! | 108  | Build/ValueOutOfRange   | attr u64, value u32, cardinality u32 | `…::ValueOutOfRange` |
//! | 109  | Build/RowArity          | got u64, expected u64 | `…::RowArity` |
//!
//! ## Degradation rules
//!
//! Failures are scoped to the *request* when the stream is still in
//! sync, and to the *connection* when it is not. Specifically:
//!
//! * A semantically invalid request on a well-formed frame (unknown
//!   collection, bad query, unknown id ...) → `Error` frame, connection
//!   lives on.
//! * A frame that cannot be decoded, an oversized length prefix, or a
//!   half-closed socket → one best-effort `Error`/`Reject` frame, then
//!   the connection is dropped (and a server-side counter bumped). The
//!   server never kills sibling connections and never crashes.
//! * A slow reader (client not draining its socket) trips the server's
//!   write timeout; the connection is dropped and counted.
//!
//! # Shutdown drain
//!
//! On shutdown the server stops accepting, then signals every
//! connection to stop *reading* while their writers flush all accepted
//! requests' replies. Connections park in a
//! [`ConnectionRegistry`](genie_service::ConnectionRegistry); the
//! listener waits on its barrier (bounded by the configured drain
//! timeout) before the service itself is torn down — an accepted
//! request is never silently dropped.
