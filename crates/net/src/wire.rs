//! Little-endian byte-level primitives behind the frame codec.
//!
//! [`ByteWriter`] appends fixed-width integers, floats and
//! length-prefixed strings/sequences to a growable buffer;
//! [`ByteReader`] reads them back with *every* failure mode surfaced as
//! a typed [`DecodeError`] — truncation, declared lengths that overrun
//! the buffer, and invalid UTF-8 all decode to errors, never panics.
//! The torture suite feeds the reader arbitrary prefixes and garbage,
//! so any `unwrap`/slice-index here would be a server crash.

/// Why a buffer failed to decode. [`std::fmt::Display`] gives the
/// human-readable detail carried into
/// [`WireError::Protocol`](crate::frame::WireError::Protocol) frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field being read.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A length prefix declares more elements than the remaining bytes
    /// could possibly hold (caught *before* allocating).
    LengthOverrun {
        what: &'static str,
        declared: u64,
        remaining: usize,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8 { what: &'static str },
    /// An enum tag byte has no defined meaning.
    BadTag { what: &'static str, tag: u8 },
    /// The frame decoded fully but bytes were left over (a frame must
    /// be exactly its declared payload — trailing garbage means the
    /// stream is out of sync).
    TrailingBytes { left: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { what } => write!(f, "truncated while reading {what}"),
            Self::LengthOverrun {
                what,
                declared,
                remaining,
            } => write!(
                f,
                "{what} declares {declared} elements but only {remaining} bytes remain"
            ),
            Self::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            Self::BadTag { what, tag } => write!(f, "unknown {what} tag 0x{tag:02x}"),
            Self::TrailingBytes { left } => write!(f, "{left} trailing bytes after frame payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian buffer builder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// UTF-8 string with a u32 byte-length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `u32` sequence with a u32 element-count prefix.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }
}

/// Cursor over a received frame body. Reads consume;
/// [`finish`](Self::finish) asserts the payload was exactly consumed.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string written by [`ByteWriter::put_str`].
    pub fn get_str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::LengthOverrun {
                what,
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { what })
    }

    /// Length-prefixed `u32` sequence written by
    /// [`ByteWriter::put_u32s`]. The declared count is validated
    /// against the remaining bytes *before* allocating, so a forged
    /// 4-billion-element prefix costs nothing.
    pub fn get_u32s(&mut self, what: &'static str) -> Result<Vec<u32>, DecodeError> {
        let len = self.get_u32(what)? as usize;
        if len.saturating_mul(4) > self.remaining() {
            return Err(DecodeError::LengthOverrun {
                what,
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u32(what)?);
        }
        Ok(out)
    }

    /// Read a u32 element count, validated so that even one byte per
    /// element could not overrun the buffer. Generic guard for
    /// sequences of variable-width elements.
    pub fn get_count(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::LengthOverrun {
                what,
                declared: len as u64,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Succeeds only when every payload byte was consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                left: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(u16::MAX);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-2.5);
        w.put_str("héllo");
        w.put_u32s(&[1, 2, 3]);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), u16::MAX);
        assert_eq!(r.get_u32("c").unwrap(), 123_456);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64("e").unwrap(), -2.5);
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        assert_eq!(r.get_u32s("g").unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_str("payload");
        w.put_u32s(&[9, 8, 7]);
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let ok = r
                .get_str("s")
                .and_then(|_| r.get_u32s("v"))
                .and_then(|_| r.finish());
            assert!(ok.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // declares 4 billion elements
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_u32s("huge"),
            Err(DecodeError::LengthOverrun { .. })
        ));
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_str("huge"),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_str("s").unwrap_err(),
            DecodeError::BadUtf8 { what: "s" }
        );
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        r.get_u32("v").unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            DecodeError::TrailingBytes { left: 1 }
        );
    }
}
