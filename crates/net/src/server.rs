//! The serving loop: [`NetServer`] accepts TCP connections and fronts
//! a [`GenieService`] with the framed protocol of
//! [`protocol`](crate::protocol).
//!
//! # Per-connection architecture
//!
//! Every accepted connection gets a **reader** thread (the spawned
//! connection thread itself) and a **writer** thread joined by a job
//! channel:
//!
//! * The reader performs the handshake, then decodes request frames.
//!   Searches are admitted to the service's batching queue — their
//!   [`ResponseTicket`]s travel to the writer, which is what makes the
//!   connection *pipelined*: the reader is already decoding the next
//!   frame while earlier searches wait for their wave. Mutations and
//!   admin requests execute inline (they are synchronous in the
//!   service) and ship to the writer as finished frames.
//! * The writer streams replies in **completion order**: finished
//!   frames go out immediately, ticket jobs go out whenever their wave
//!   resolves them — a slow search never blocks a later quick
//!   mutation's reply.
//!
//! Failures degrade per the protocol's rules: semantic errors answer
//! the one request; undecodable/oversized frames and dead sockets get
//! a best-effort error frame, a counter bump, and the connection is
//! dropped. Sibling connections never notice, and the server never
//! panics on input.
//!
//! # Shutdown drain
//!
//! [`ServerHandle::shutdown`] stops the accept loop, flips the shared
//! [`ConnectionRegistry`] into draining and waits (bounded by
//! [`ServerConfig::drain_timeout`]) for every connection to flush its
//! accepted replies — the no-silently-dropped-request guarantee.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use genie_core::index::IndexBuilder;
use genie_core::model::{Object, Query};
use genie_core::shard::ShardError;
use genie_service::{
    BackendHealth, ConnectionRegistry, GenieService, MutateError, ResponseTicket, ServiceError,
    ServiceStats, TicketResult,
};

use crate::frame::{
    self, CollectionInfo, FrameProgress, FrameReadError, FrameReader, Request, Response, WireError,
    HANDSHAKE_REQUEST_ID, PROTOCOL_VERSION,
};

/// Knobs of one [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Required auth token; `None` accepts any Hello token.
    pub auth_token: Option<String>,
    /// Per-frame body cap; larger declared lengths drop the connection
    /// without reading the body.
    pub max_frame_len: u32,
    /// How long a fresh connection may take to send its Hello frame.
    pub handshake_timeout: Duration,
    /// Reader poll interval — bounds how quickly an idle connection
    /// notices server shutdown.
    pub read_poll: Duration,
    /// Socket write timeout; tripping it marks the client a slow
    /// reader and drops the connection.
    pub write_timeout: Duration,
    /// Bound on the shutdown drain barrier.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            auth_token: None,
            max_frame_len: frame::DEFAULT_MAX_FRAME_LEN,
            handshake_timeout: Duration::from_secs(5),
            read_poll: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Lifetime connection/frame counters of one server, snapshot via
/// [`ServerHandle::net_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Connections accepted and handed to a reader/writer pair.
    pub accepted: u64,
    /// Connections turned away because the server was draining.
    pub rejected_draining: u64,
    /// Handshakes rejected (bad magic/version/token, or no Hello
    /// within the handshake timeout).
    pub handshake_rejects: u64,
    /// Frames that failed to decode (connection dropped each time).
    pub protocol_errors: u64,
    /// Frames rejected on their declared length alone.
    pub oversized_frames: u64,
    /// Connections dropped by socket errors or mid-frame EOF.
    pub io_drops: u64,
    /// Connections dropped because the client stopped draining its
    /// socket and the write timeout tripped.
    pub slow_reader_drops: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames fully written.
    pub frames_out: u64,
    /// Search requests admitted to the service queue.
    pub requests_admitted: u64,
    /// Error frames sent (request-scoped failures).
    pub errors_sent: u64,
}

impl NetStats {
    /// Flat `net/...` name→value rows, the server's share of a
    /// [`Response::Stats`] payload.
    pub fn fields(&self) -> Vec<(String, f64)> {
        vec![
            ("net/accepted".into(), self.accepted as f64),
            (
                "net/rejected_draining".into(),
                self.rejected_draining as f64,
            ),
            (
                "net/handshake_rejects".into(),
                self.handshake_rejects as f64,
            ),
            ("net/protocol_errors".into(), self.protocol_errors as f64),
            ("net/oversized_frames".into(), self.oversized_frames as f64),
            ("net/io_drops".into(), self.io_drops as f64),
            (
                "net/slow_reader_drops".into(),
                self.slow_reader_drops as f64,
            ),
            ("net/frames_in".into(), self.frames_in as f64),
            ("net/frames_out".into(), self.frames_out as f64),
            (
                "net/requests_admitted".into(),
                self.requests_admitted as f64,
            ),
            ("net/errors_sent".into(), self.errors_sent as f64),
        ]
    }
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_draining: AtomicU64,
    handshake_rejects: AtomicU64,
    protocol_errors: AtomicU64,
    oversized_frames: AtomicU64,
    io_drops: AtomicU64,
    slow_reader_drops: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    requests_admitted: AtomicU64,
    errors_sent: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetStats {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetStats {
            accepted: ld(&self.accepted),
            rejected_draining: ld(&self.rejected_draining),
            handshake_rejects: ld(&self.handshake_rejects),
            protocol_errors: ld(&self.protocol_errors),
            oversized_frames: ld(&self.oversized_frames),
            io_drops: ld(&self.io_drops),
            slow_reader_drops: ld(&self.slow_reader_drops),
            frames_in: ld(&self.frames_in),
            frames_out: ld(&self.frames_out),
            requests_admitted: ld(&self.requests_admitted),
            errors_sent: ld(&self.errors_sent),
        }
    }
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

struct Shared {
    service: Arc<GenieService>,
    config: ServerConfig,
    registry: ConnectionRegistry,
    counters: Counters,
    shutdown: AtomicBool,
}

/// Namespace for [`NetServer::spawn`].
pub struct NetServer;

impl NetServer {
    /// Bind `addr`, start the accept loop, and serve `service` until
    /// the returned handle shuts down. Bind to port 0 for an
    /// OS-assigned port (see [`ServerHandle::addr`]).
    pub fn spawn(
        service: Arc<GenieService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            registry: ConnectionRegistry::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("genie-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server. Dropping it shuts the server down (draining
/// in-flight connections); call [`shutdown`](Self::shutdown) directly
/// to observe whether the drain completed in time.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the connection/frame counters.
    pub fn net_stats(&self) -> NetStats {
        self.shared.counters.snapshot()
    }

    /// Connections currently registered (handshaken or flushing).
    pub fn active_connections(&self) -> usize {
        self.shared.registry.active()
    }

    /// Stop accepting, drain every live connection (bounded by
    /// [`ServerConfig::drain_timeout`]) and join the accept loop.
    /// Returns whether the drain fully completed; idempotent —
    /// repeat calls return `true` without re-draining.
    pub fn shutdown(&mut self) -> bool {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return true;
        }
        self.shared.registry.begin_drain();
        // unblock the accept loop with a throwaway connection
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared
            .registry
            .await_drained(self.shared.config.drain_timeout)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // a persistent accept error (EMFILE under connection
                // pressure, say) must not spin this thread at 100% CPU
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return; // the self-connect wakeup, or a late arrival
        }
        let Some(guard) = shared.registry.register() else {
            bump(&shared.counters.rejected_draining);
            reject_and_drop(stream, &shared, WireError::ShuttingDown);
            continue;
        };
        bump(&shared.counters.accepted);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("genie-net-conn".into())
            .spawn(move || {
                serve_connection(stream, conn_shared, guard);
            });
        if spawned.is_err() {
            bump(&shared.counters.io_drops);
        }
    }
}

/// Best-effort typed reject on a connection we will not serve.
fn reject_and_drop(mut stream: TcpStream, shared: &Shared, error: WireError) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let body = frame::encode_response(HANDSHAKE_REQUEST_ID, &Response::Reject { error });
    let _ = stream.write_all(&body);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One queued reply-in-progress on the writer side.
enum Job {
    /// A finished frame, writable immediately.
    Done(Vec<u8>),
    /// Ticketed search rounds; writable once the wave resolves them.
    Tickets {
        request_id: u64,
        final_k: u32,
        /// `(candidate count, ticket)` in schedule order.
        rounds: Vec<(u32, ResponseTicket)>,
        results: Vec<Option<TicketResult>>,
    },
}

impl Job {
    /// Poll every unresolved ticket; `true` once the job is writable.
    fn ready(&mut self) -> bool {
        match self {
            Job::Done(_) => true,
            Job::Tickets {
                rounds, results, ..
            } => {
                for (i, (_, ticket)) in rounds.iter().enumerate() {
                    if results[i].is_none() {
                        results[i] = ticket.try_take();
                    }
                }
                results.iter().all(|r| r.is_some())
            }
        }
    }

    /// Block up to `timeout` on the first unresolved ticket (no-op for
    /// finished frames).
    fn wait_a_little(&mut self, timeout: Duration) {
        if let Job::Tickets {
            rounds, results, ..
        } = self
        {
            for (i, (_, ticket)) in rounds.iter().enumerate() {
                if results[i].is_none() {
                    results[i] = ticket.wait_timeout(timeout);
                    return;
                }
            }
        }
    }

    /// Encode the finished reply. Only call once [`ready`](Self::ready)
    /// returned `true`.
    fn into_frame(self) -> (Vec<u8>, bool) {
        match self {
            Job::Done(bytes) => (bytes, false),
            Job::Tickets {
                request_id,
                final_k,
                rounds,
                results,
            } => {
                let response = assemble_search_reply(final_k, &rounds, results);
                let is_error = matches!(response, Response::Error { .. });
                (frame::encode_response(request_id, &response), is_error)
            }
        }
    }
}

/// Fold resolved schedule rounds into one Search reply: the first
/// *saturated* round (fewer hits than its candidate count — a larger K
/// cannot add more) or the last round, truncated to the requested `k`.
fn assemble_search_reply(
    final_k: u32,
    rounds: &[(u32, ResponseTicket)],
    results: Vec<Option<TicketResult>>,
) -> Response {
    let mut chosen = results.len() - 1;
    for (i, result) in results.iter().enumerate() {
        match result {
            Some(Ok(resp)) if resp.hits.len() < rounds[i].0 as usize => {
                chosen = i;
                break;
            }
            _ => {}
        }
    }
    let result = results
        .into_iter()
        .nth(chosen)
        .flatten()
        .expect("only assembled once every round resolved");
    match result {
        Ok(resp) => {
            let mut hits = resp.hits;
            hits.truncate(final_k as usize);
            Response::Search {
                rounds: (chosen + 1) as u32,
                audit_threshold: resp.audit_threshold,
                hits,
            }
        }
        Err(e) => Response::Error {
            error: service_error(e),
        },
    }
}

/// Translate the service's typed error onto the wire taxonomy — a
/// variant-for-variant mapping, never a classification of message
/// strings.
fn service_error(e: ServiceError) -> WireError {
    match e {
        ServiceError::ShuttingDown => WireError::ShuttingDown,
        ServiceError::UnknownCollection(id) => WireError::UnknownCollection(id),
        ServiceError::InvalidShards(e) => WireError::InvalidShards(e.to_string()),
        // no wire operation installs placement plans (rebalancing is
        // server-local), so this variant can only surface as a
        // diagnostic if that ever changes
        ServiceError::InvalidPlacement(e) => WireError::Service(format!("invalid placement: {e}")),
        ServiceError::Persist(e) => WireError::Service(format!("persistence failure: {e}")),
        ServiceError::Internal(e) => WireError::Service(e),
    }
}

fn mutate_error(e: MutateError) -> WireError {
    match e {
        MutateError::UnknownId(id) => WireError::UnknownId(id),
        MutateError::Service(e) => service_error(e),
    }
}

/// Serve one handshaken-or-not connection to completion. This is the
/// reader thread; it owns the writer thread it spawns.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>, guard: genie_service::ConnectionGuard) {
    // the guard must outlive the writer join below: every accepted
    // request's reply is flushed before the drain barrier releases
    let _guard = guard;
    let Some((mut read_half, write_half)) = handshake(stream, &shared) else {
        return;
    };
    let (tx, rx) = channel::<Job>();
    let writer_shared = Arc::clone(&shared);
    let writer = std::thread::Builder::new()
        .name("genie-net-write".into())
        .spawn(move || writer_loop(write_half, rx, writer_shared));
    let Ok(writer) = writer else {
        bump(&shared.counters.io_drops);
        return;
    };
    reader_loop(&mut read_half, &shared, &tx);
    // dropping the channel tells the writer to flush what remains and
    // exit; the socket shuts down only after that flush
    drop(tx);
    let _ = writer.join();
    let _ = read_half.shutdown(Shutdown::Both);
}

/// Run the handshake: first frame must be a well-formed Hello with the
/// right version and token. Returns the reader/writer socket halves on
/// success; on failure the connection is rejected/dropped here.
fn handshake(stream: TcpStream, shared: &Shared) -> Option<(TcpStream, TcpStream)> {
    let config = &shared.config;
    let _ = stream.set_nodelay(true);
    // poll-grade read timeout: the Hello may trickle in byte by byte,
    // and the loop below enforces the *total* handshake deadline (and
    // notices server shutdown) between polls — a client stalling
    // mid-prefix can neither desync the stream nor pin this thread (and
    // its drain guard) past the handshake timeout
    if stream.set_read_timeout(Some(config.read_poll)).is_err() {
        bump(&shared.counters.io_drops);
        return None;
    }
    let mut read_half = stream;
    let deadline = Instant::now() + config.handshake_timeout;
    let mut reader = FrameReader::new();
    let body = loop {
        match reader.read(&mut read_half, config.max_frame_len) {
            Ok(FrameProgress::Frame(body)) => break body,
            Ok(FrameProgress::Eof) => {
                // connected and went away without a word — the shutdown
                // self-connect does exactly this
                return None;
            }
            Ok(FrameProgress::TimedOut { .. }) => {
                if shared.shutdown.load(Ordering::Acquire) || Instant::now() >= deadline {
                    // no complete Hello within the handshake window
                    bump(&shared.counters.handshake_rejects);
                    return None;
                }
            }
            Err(FrameReadError::TooLarge { len, max }) => {
                bump(&shared.counters.oversized_frames);
                bump(&shared.counters.handshake_rejects);
                reject_and_drop(read_half, shared, WireError::TooLarge { len, max });
                return None;
            }
            Err(FrameReadError::Io(_)) => {
                bump(&shared.counters.handshake_rejects);
                return None;
            }
        }
    };
    let error = match frame::decode_request(&body) {
        Ok((HANDSHAKE_REQUEST_ID, Request::Hello { version, token })) => {
            if version != PROTOCOL_VERSION {
                Some(WireError::UnsupportedVersion {
                    got: version,
                    want: PROTOCOL_VERSION,
                })
            } else {
                match &config.auth_token {
                    Some(want) if *want != token => {
                        Some(WireError::Auth("invalid auth token".into()))
                    }
                    _ => None,
                }
            }
        }
        Ok(_) => Some(WireError::Protocol(
            "first frame must be Hello with request id 0".into(),
        )),
        Err(e) => Some(WireError::Protocol(format!("bad hello frame: {e}"))),
    };
    if let Some(error) = error {
        bump(&shared.counters.handshake_rejects);
        reject_and_drop(read_half, shared, error);
        return None;
    }
    let Ok(mut write_half) = read_half.try_clone() else {
        bump(&shared.counters.io_drops);
        return None;
    };
    let _ = write_half.set_write_timeout(Some(config.write_timeout));
    let welcome = frame::encode_response(
        HANDSHAKE_REQUEST_ID,
        &Response::Welcome {
            version: PROTOCOL_VERSION,
        },
    );
    if write_half.write_all(&welcome).is_err() {
        bump(&shared.counters.io_drops);
        return None;
    }
    bump(&shared.counters.frames_out);
    // the read timeout is already read_poll — exactly what the serving
    // reader_loop polls with
    Some((read_half, write_half))
}

/// Decode frames and dispatch them until EOF, a protocol breach, a
/// socket error, or server shutdown.
///
/// The [`FrameReader`] persists across poll ticks: a frame whose bytes
/// straddle the `read_poll` timeout (large frames, congested links,
/// incremental writers) resumes exactly where it stopped instead of
/// re-parsing mid-body bytes as a fresh length prefix, and a stalled
/// mid-frame sender still lets this thread observe server shutdown on
/// every tick.
fn reader_loop(read_half: &mut TcpStream, shared: &Shared, tx: &Sender<Job>) {
    let mut reader = FrameReader::new();
    loop {
        let body = match reader.read(read_half, shared.config.max_frame_len) {
            Ok(FrameProgress::Frame(body)) => body,
            Ok(FrameProgress::Eof) => return, // clean close
            Ok(FrameProgress::TimedOut { .. }) => {
                // poll tick: keep serving unless shutting down (partial
                // frame bytes stay buffered in the reader)
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(FrameReadError::TooLarge { len, max }) => {
                bump(&shared.counters.oversized_frames);
                send_error(
                    tx,
                    shared,
                    HANDSHAKE_REQUEST_ID,
                    WireError::TooLarge { len, max },
                );
                return;
            }
            Err(FrameReadError::Io(_)) => {
                bump(&shared.counters.io_drops);
                return;
            }
        };
        bump(&shared.counters.frames_in);
        let (request_id, request) = match frame::decode_request(&body) {
            Ok(decoded) => decoded,
            Err(e) => {
                bump(&shared.counters.protocol_errors);
                // the id field may still be intact — tag the error with
                // it so the client can match the failure to a request
                let id = salvage_request_id(&body);
                send_error(tx, shared, id, WireError::Protocol(e.to_string()));
                return; // stream may be out of sync: drop
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            send_error(tx, shared, request_id, WireError::ShuttingDown);
            return;
        }
        if request_id == HANDSHAKE_REQUEST_ID {
            bump(&shared.counters.protocol_errors);
            send_error(
                tx,
                shared,
                request_id,
                WireError::Protocol("request id 0 is reserved for the handshake".into()),
            );
            return;
        }
        if tx.send(dispatch(shared, request_id, request)).is_err() {
            return; // writer already dropped the connection
        }
    }
}

/// Best-effort undecodable-frame id salvage: the `u64` after the kind
/// byte, when the body got that far.
fn salvage_request_id(body: &[u8]) -> u64 {
    match body.get(1..9) {
        Some(bytes) => u64::from_le_bytes(bytes.try_into().expect("sliced to 8 bytes")),
        None => HANDSHAKE_REQUEST_ID,
    }
}

fn send_error(tx: &Sender<Job>, shared: &Shared, request_id: u64, error: WireError) {
    bump(&shared.counters.errors_sent);
    let body = frame::encode_response(request_id, &Response::Error { error });
    let _ = tx.send(Job::Done(body));
}

/// Turn one decoded request into a writer job — a ticket set for
/// searches, a finished frame for everything else.
fn dispatch(shared: &Shared, request_id: u64, request: Request) -> Job {
    let service = &shared.service;
    let done = |response: Response| {
        if matches!(response, Response::Error { .. }) {
            bump(&shared.counters.errors_sent);
        }
        Job::Done(frame::encode_response(request_id, &response))
    };
    // pre-check the collection so unknown ids answer with the typed
    // error instead of a formatted Service string at wave time
    if let Some(collection) = request.collection() {
        if service.collection_len(collection).is_none() {
            return done(Response::Error {
                error: WireError::UnknownCollection(collection),
            });
        }
    }
    match request {
        Request::Hello { .. } => done(Response::Error {
            error: WireError::Protocol("Hello is only valid as the first frame".into()),
        }),
        Request::Search {
            collection,
            k,
            query,
        } => submit_rounds(shared, request_id, collection, k, vec![k], query),
        Request::SearchAdaptive {
            collection,
            k,
            schedule,
            query,
        } => {
            if schedule.is_empty() {
                return done(Response::Error {
                    error: WireError::Service("adaptive schedule must be non-empty".into()),
                });
            }
            submit_rounds(shared, request_id, collection, k, schedule, query)
        }
        Request::Insert {
            collection,
            keywords,
        } => done(
            match service.mutate_collection(
                collection,
                &[],
                vec![Object { keywords }],
                &mut |_, _| {},
            ) {
                Ok(ids) => Response::Ids { ids },
                Err(e) => Response::Error {
                    error: mutate_error(e),
                },
            },
        ),
        Request::Delete { collection, ids } => done(
            match service.mutate_collection(collection, &ids, Vec::new(), &mut |_, _| {}) {
                Ok(_) => Response::Ack,
                Err(e) => Response::Error {
                    error: mutate_error(e),
                },
            },
        ),
        Request::Upsert {
            collection,
            id,
            keywords,
        } => done(
            match service.mutate_collection(
                collection,
                &[id],
                vec![Object { keywords }],
                &mut |_, _| {},
            ) {
                Ok(ids) => Response::Ids { ids },
                Err(e) => Response::Error {
                    error: mutate_error(e),
                },
            },
        ),
        Request::Mutate {
            collection,
            deletes,
            inserts,
        } => {
            let inserts = inserts
                .into_iter()
                .map(|keywords| Object { keywords })
                .collect();
            done(
                match service.mutate_collection(collection, &deletes, inserts, &mut |_, _| {}) {
                    Ok(ids) => Response::Ids { ids },
                    Err(e) => Response::Error {
                        error: mutate_error(e),
                    },
                },
            )
        }
        Request::Compact { collection } => done(match service.compact_collection(collection) {
            Ok(applied) => Response::Compacted { applied },
            Err(e) => Response::Error {
                error: service_error(e),
            },
        }),
        Request::MutationStatus { collection } => done(match service.mutation_status(collection) {
            Some(s) => Response::MutationStatus {
                live: s.live as u64,
                delta: s.delta as u64,
                tombstones: s.tombstones as u64,
                base_shards: s.base_shards as u64,
                next_id: s.next_id,
            },
            None => Response::Error {
                error: WireError::UnknownCollection(collection),
            },
        }),
        Request::CreateCollection {
            name,
            shards,
            objects,
        } => {
            // mirror GenieDb::create_collection_sharded: a zero shard
            // count is a typed validation error, not a silent clamp
            if shards == 0 {
                return done(Response::Error {
                    error: WireError::InvalidShards(ShardError::ZeroShards.to_string()),
                });
            }
            let index = build_index(&objects);
            done(
                match service.add_collection_sharded(&name, &index, shards as usize) {
                    Ok(id) => Response::Created { collection: id },
                    Err(e) => Response::Error {
                        error: service_error(e),
                    },
                },
            )
        }
        Request::Reindex {
            collection,
            objects,
        } => {
            let index = build_index(&objects);
            done(match service.swap_collection(collection, &index) {
                Ok(upload_sim_us) => Response::Reindexed { upload_sim_us },
                Err(e) => Response::Error {
                    error: service_error(e),
                },
            })
        }
        Request::ListCollections => {
            let entries = service
                .collection_names()
                .into_iter()
                .map(|(id, name)| CollectionInfo {
                    id,
                    name,
                    shards: service.collection_shards(id).unwrap_or(0) as u32,
                    len: service.collection_len(id).unwrap_or(0) as u64,
                })
                .collect();
            done(Response::Collections { entries })
        }
        Request::Stats => {
            let mut fields = service_stats_fields(&service.stats());
            fields.extend(backend_health_fields(&service.backend_health()));
            fields.extend(shared.counters.snapshot().fields());
            fields.push((
                "net/active_connections".into(),
                shared.registry.active() as f64,
            ));
            done(Response::Stats { fields })
        }
    }
}

/// Validate and admit one search round per schedule entry (they land
/// in the same wave), handing the tickets to the writer.
fn submit_rounds(
    shared: &Shared,
    request_id: u64,
    collection: u64,
    k: u32,
    schedule: Vec<u32>,
    query: Query,
) -> Job {
    let error = |error: WireError| {
        bump(&shared.counters.errors_sent);
        Job::Done(frame::encode_response(
            request_id,
            &Response::Error { error },
        ))
    };
    if k == 0 || schedule.contains(&0) {
        return error(WireError::Service("k must be at least 1".into()));
    }
    if let Err(e) = Query::try_new(query.items.clone()) {
        return error(WireError::from(e));
    }
    let rounds: Vec<(u32, ResponseTicket)> = schedule
        .iter()
        .map(|&kc| {
            bump(&shared.counters.requests_admitted);
            (
                kc,
                shared
                    .service
                    .submit_to(collection, query.clone(), kc as usize),
            )
        })
        .collect();
    let results = vec![None; rounds.len()];
    Job::Tickets {
        request_id,
        final_k: k,
        rounds,
        results,
    }
}

fn build_index(objects: &[Vec<u32>]) -> Arc<genie_core::index::InvertedIndex> {
    let mut builder = IndexBuilder::new();
    for keywords in objects {
        builder.add_object(&Object {
            keywords: keywords.clone(),
        });
    }
    Arc::new(builder.build(None))
}

impl Request {
    /// The collection id a request targets, if any — what the serving
    /// loop pre-validates.
    fn collection(&self) -> Option<u64> {
        match self {
            Request::Search { collection, .. }
            | Request::SearchAdaptive { collection, .. }
            | Request::Insert { collection, .. }
            | Request::Delete { collection, .. }
            | Request::Upsert { collection, .. }
            | Request::Mutate { collection, .. }
            | Request::Compact { collection }
            | Request::MutationStatus { collection }
            | Request::Reindex { collection, .. } => Some(*collection),
            Request::Hello { .. }
            | Request::CreateCollection { .. }
            | Request::ListCollections
            | Request::Stats => None,
        }
    }
}

/// Flatten the service counters into name→value rows for the Stats
/// frame (mirrors [`ServiceStats`] field for field).
pub fn service_stats_fields(s: &ServiceStats) -> Vec<(String, f64)> {
    vec![
        ("service/submitted".into(), s.submitted as f64),
        ("service/served".into(), s.served as f64),
        ("service/failed_requests".into(), s.failed_requests as f64),
        ("service/cache_hits".into(), s.cache_hits as f64),
        ("service/size_triggers".into(), s.size_triggers as f64),
        (
            "service/deadline_triggers".into(),
            s.deadline_triggers as f64,
        ),
        ("service/shutdown_flushes".into(), s.shutdown_flushes as f64),
        ("service/waves".into(), s.waves as f64),
        ("service/failed_waves".into(), s.failed_waves as f64),
        ("service/batches".into(), s.batches as f64),
        ("service/shard_runs".into(), s.shard_runs as f64),
        ("service/batched_requests".into(), s.batched_requests as f64),
        ("service/wall_us".into(), s.wall_us),
        ("service/predicted_cost_us".into(), s.predicted_cost_us),
        ("service/actual_cost_us".into(), s.actual_cost_us),
        ("service/mutation_batches".into(), s.mutation_batches as f64),
        ("service/inserted".into(), s.inserted as f64),
        ("service/deleted".into(), s.deleted as f64),
        ("service/compactions".into(), s.compactions as f64),
        (
            "service/stale_compactions".into(),
            s.stale_compactions as f64,
        ),
        (
            "service/mean_batch_occupancy".into(),
            s.mean_batch_occupancy(),
        ),
        // placement + learned-cost counters ride behind the v1 rows:
        // Stats consumers look names up by key, so appending rows is
        // wire-compatible (see `genie_net::protocol`, "Compatibility")
        (
            "service/placed_shard_runs".into(),
            s.placed_shard_runs as f64,
        ),
        ("service/hot_shard_events".into(), s.hot_shard_events as f64),
        ("service/rebalances".into(), s.rebalances as f64),
        ("service/stale_rebalances".into(), s.stale_rebalances as f64),
        ("service/learned_base_us".into(), s.learned_base_us),
        (
            "service/learned_us_per_posting".into(),
            s.learned_us_per_posting,
        ),
        (
            "service/cost_observations".into(),
            s.cost_observations as f64,
        ),
        ("service/journaled_events".into(), s.journaled_events as f64),
        ("service/checkpoints".into(), s.checkpoints as f64),
        ("service/persist_errors".into(), s.persist_errors as f64),
    ]
}

/// Flatten the fleet's health table into name→value rows for the Stats
/// frame: `backend/{i}/{name}/...` per backend, in fleet order. The
/// learned cost-model rows surface the scheduler's online EWMA (see
/// [`BackendHealth`]) so remote operators watch per-backend capacity
/// without shell access to the server.
pub fn backend_health_fields(health: &[BackendHealth]) -> Vec<(String, f64)> {
    let mut fields = Vec::with_capacity(health.len() * 8);
    for (i, b) in health.iter().enumerate() {
        let key = |stat: &str| format!("backend/{i}/{}/{stat}", b.name);
        fields.push((key("batches"), b.batches as f64));
        fields.push((key("queries"), b.queries as f64));
        fields.push((key("failed"), b.failed as f64));
        fields.push((key("retired"), u64::from(b.retired) as f64));
        fields.push((key("probes"), b.probes as f64));
        fields.push((key("learned_base_us"), b.cost_model.base_us));
        fields.push((key("learned_us_per_posting"), b.cost_model.us_per_posting));
        fields.push((key("cost_observations"), b.cost_observations as f64));
    }
    fields
}

/// Stream finished replies in completion order until the reader hangs
/// up and the queue is flushed, or the socket dies.
fn writer_loop(mut stream: TcpStream, rx: Receiver<Job>, shared: Arc<Shared>) {
    let mut queue: Vec<Job> = Vec::new();
    let mut disconnected = false;
    loop {
        // 1. pull everything the reader has queued, without blocking
        loop {
            match rx.try_recv() {
                Ok(job) => queue.push(job),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // 2. write every job that is ready, preserving completion order
        let mut wrote = false;
        let mut i = 0;
        while i < queue.len() {
            if queue[i].ready() {
                let (bytes, _) = queue.remove(i).into_frame();
                match stream.write_all(&bytes) {
                    Ok(()) => {
                        bump(&shared.counters.frames_out);
                        wrote = true;
                    }
                    Err(e) => {
                        use std::io::ErrorKind;
                        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                            bump(&shared.counters.slow_reader_drops);
                        } else {
                            bump(&shared.counters.io_drops);
                        }
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                }
            } else {
                i += 1;
            }
        }
        if wrote {
            continue; // new jobs may have become ready meanwhile
        }
        if disconnected && queue.is_empty() {
            return; // reader gone, everything flushed
        }
        // 3. idle: park briefly on the oldest incomplete ticket, or on
        // the channel when only finished work can arrive
        match queue.iter_mut().find(|j| matches!(j, Job::Tickets { .. })) {
            Some(job) => job.wait_a_little(Duration::from_millis(5)),
            None => {
                if disconnected {
                    continue;
                }
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(job) => queue.push(job),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
                }
            }
        }
    }
}
