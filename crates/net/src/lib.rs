//! genie-net — the network serving layer of the GENIE reproduction.
//!
//! Exposes the full [`genie_service::GenieService`] facade over a
//! versioned, length-prefixed, pipelined TCP protocol:
//!
//! * [`protocol`] — the normative wire specification (frame layout,
//!   handshake state machine, kind and error-code tables). Start here
//!   to implement a third-party client.
//! * [`wire`] — the primitive byte codec ([`wire::ByteWriter`] /
//!   [`wire::ByteReader`]) with hard bounds checking: every decode
//!   failure is a typed [`wire::DecodeError`], never a panic or an
//!   unbounded allocation.
//! * [`frame`] — typed [`frame::Request`]/[`frame::Response`] values
//!   ⇄ frames, plus the [`frame::WireError`] taxonomy mirroring the
//!   in-process error types.
//! * [`server`] — [`server::NetServer`]: the accept loop and
//!   per-connection reader/writer pairs fronting a service, with
//!   graceful drain on shutdown.
//!
//! The client side lives in the `genie-client` crate; the `repro
//! --net` benchmark drives both over loopback.

pub mod frame;
pub mod protocol;
pub mod server;
pub mod wire;

pub use frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, BuildError,
    CollectionInfo, FrameProgress, FrameReadError, FrameReader, Request, Response, WireError,
    DEFAULT_MAX_FRAME_LEN, HANDSHAKE_REQUEST_ID, HELLO_MAGIC, PROTOCOL_VERSION,
};
pub use server::{NetServer, NetStats, ServerConfig, ServerHandle};
pub use wire::{ByteReader, ByteWriter, DecodeError};
