//! Loopback integration: real sockets, real threads, results compared
//! against the same service queried in-process.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{objects, query, start_server};
use genie_client::{Client, ClientConfig, ClientError};
use genie_core::model::Query;
use genie_net::frame::{Request, Response, WireError};
use genie_net::server::ServerConfig;
use genie_service::DEFAULT_COLLECTION;

const UNIVERSE: u32 = 96;

/// ≥4 concurrent connections, each pipelining searches, must return
/// hit-for-hit what the in-process facade returns — and per-thread
/// mutation batches must land atomically in per-thread collections.
#[test]
fn concurrent_pipelined_clients_match_in_process() {
    let data = objects(300, UNIVERSE, 8, 0x5eed);
    let (service, handle) = start_server(&data, ServerConfig::default());
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let client = Client::connect(addr).expect("connect");
                // pipeline a burst: send everything, then resolve
                let queries: Vec<Query> = (0..24).map(|i| query(UNIVERSE, t * 1000 + i)).collect();
                let pendings: Vec<_> = queries
                    .iter()
                    .map(|q| {
                        client
                            .send(&Request::Search {
                                collection: DEFAULT_COLLECTION,
                                k: 10,
                                query: q.clone(),
                            })
                            .expect("send")
                    })
                    .collect();
                for (q, pending) in queries.iter().zip(pendings) {
                    let reply = pending.wait().expect("reply");
                    let truth = service
                        .submit_to(DEFAULT_COLLECTION, q.clone(), 10)
                        .wait()
                        .expect("in-process search");
                    match reply.response {
                        Response::Search {
                            audit_threshold,
                            hits,
                            ..
                        } => {
                            assert_eq!(hits, truth.hits, "wire hits must match in-process");
                            assert_eq!(audit_threshold, truth.audit_threshold);
                        }
                        other => panic!("wanted a Search reply, got {other:?}"),
                    }
                    assert!(reply.server_latency_us <= reply.full_latency_us);
                }
                // a private collection: mutation batches + identity
                let base = objects(40, UNIVERSE, 6, 0xbeef ^ t);
                let coll = client
                    .create_collection(&format!("t{t}"), 1, base)
                    .expect("create");
                let ids = client
                    .mutate(coll, vec![], vec![vec![1, 2, 3], vec![4, 5]])
                    .expect("insert batch");
                assert_eq!(ids.len(), 2);
                client.delete(coll, vec![ids[0]]).expect("delete");
                let (live, _, tombstones, _, _) = client.mutation_status(coll).expect("status");
                assert_eq!(live, 41, "40 base + 2 inserted - 1 deleted");
                assert!(tombstones >= 1);
                let q = query(UNIVERSE, 7 + t);
                let wire = client.search(coll, 5, q.clone()).expect("search");
                let truth = service
                    .submit_to(coll, q, 5)
                    .wait()
                    .expect("in-process search");
                assert_eq!(wire.hits, truth.hits);
                assert_eq!(wire.audit_threshold, truth.audit_threshold);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let stats = handle.net_stats();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.io_drops, 0);
    assert!(stats.frames_in >= 4 * 24);
}

/// The shutdown-drain regression: requests the server *accepted* must
/// be answered even when shutdown lands while they are in flight.
#[test]
fn shutdown_drains_accepted_requests() {
    let data = objects(200, UNIVERSE, 8, 0xd1a1);
    let (_service, mut handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    let pendings: Vec<_> = (0..16)
        .map(|i| {
            client
                .send(&Request::Search {
                    collection: DEFAULT_COLLECTION,
                    k: 8,
                    query: query(UNIVERSE, i),
                })
                .expect("send")
        })
        .collect();
    // let the reader decode and admit the burst, then pull the plug
    std::thread::sleep(Duration::from_millis(50));
    let drained = handle.shutdown();
    assert!(drained, "drain must complete within the timeout");
    for pending in pendings {
        let reply = pending
            .wait()
            .expect("an accepted request is never silently dropped");
        assert!(
            matches!(reply.response, Response::Search { .. }),
            "accepted searches resolve with real results, got {:?}",
            reply.response
        );
    }
    // post-drain the listener is gone: fresh connections fail fast
    assert!(Client::connect(handle.addr()).is_err());
}

/// Adaptive schedules consume rounds until saturation.
#[test]
fn adaptive_search_over_the_wire() {
    let data = objects(120, UNIVERSE, 8, 0xada);
    let (_service, handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    // a schedule whose last round asks for more than the collection
    // holds: some round must saturate, and hits stay capped at k
    let reply = client
        .search_adaptive(DEFAULT_COLLECTION, 10, vec![1, 4, 1000], query(UNIVERSE, 3))
        .expect("adaptive search");
    assert!((1..=3).contains(&reply.rounds));
    assert!(reply.hits.len() <= 10);
    for pair in reply.hits.windows(2) {
        assert!(
            pair[0].count > pair[1].count
                || (pair[0].count == pair[1].count && pair[0].id < pair[1].id),
            "hits stay count-desc / id-asc over the wire"
        );
    }
}

/// Semantic failures answer the one request and leave the connection
/// (and its neighbors) serving.
#[test]
fn typed_errors_are_request_scoped() {
    let data = objects(100, UNIVERSE, 8, 0xe44);
    let (_service, handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    let err = client.search(999, 5, query(UNIVERSE, 1)).unwrap_err();
    assert_eq!(err, ClientError::Remote(WireError::UnknownCollection(999)));
    let err = client
        .search(DEFAULT_COLLECTION, 5, Query::new(vec![]))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Remote(WireError::Build(genie_net::frame::BuildError::EmptyQuery))
        ),
        "empty query surfaces the typed build error, got {err:?}"
    );
    let err = client
        .search(DEFAULT_COLLECTION, 0, query(UNIVERSE, 1))
        .unwrap_err();
    assert!(matches!(err, ClientError::Remote(WireError::Service(_))));
    let err = client
        .delete(DEFAULT_COLLECTION, vec![9_999_999])
        .unwrap_err();
    assert_eq!(err, ClientError::Remote(WireError::UnknownId(9_999_999)));
    // after all that abuse the connection still serves
    let ok = client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 2))
        .expect("connection survives request-scoped errors");
    assert!(ok.hits.len() <= 5);
    assert_eq!(handle.net_stats().io_drops, 0);
}

/// Handshake rejection paths: wrong version, wrong token.
#[test]
fn handshake_rejects_are_typed() {
    let data = objects(50, UNIVERSE, 6, 0x4a11);
    let config = ServerConfig {
        auth_token: Some("sesame".into()),
        ..ServerConfig::default()
    };
    let (_service, handle) = start_server(&data, config);
    let err = match Client::connect(handle.addr()) {
        Err(e) => e,
        Ok(_) => panic!("a tokenless handshake must be rejected"),
    };
    assert!(
        matches!(err, ClientError::Rejected(WireError::Auth(_))),
        "missing token must be a typed Auth reject, got {err:?}"
    );
    let ok = Client::connect_with(
        handle.addr(),
        ClientConfig {
            token: "sesame".into(),
            ..ClientConfig::default()
        },
    );
    assert!(ok.is_ok(), "the right token handshakes");
    assert_eq!(handle.net_stats().handshake_rejects, 1);
}

/// Connection churn: many short-lived connections leave no residue.
#[test]
fn connection_churn_leaves_no_residue() {
    let data = objects(80, UNIVERSE, 6, 0xc4c4);
    let (_service, handle) = start_server(&data, ServerConfig::default());
    for i in 0..25 {
        let client = Client::connect(handle.addr()).expect("connect");
        let reply = client
            .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, i))
            .expect("search");
        assert!(reply.hits.len() <= 5);
        drop(client);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "all churned connections must unregister"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.net_stats();
    assert_eq!(stats.accepted, 25);
    assert_eq!(stats.protocol_errors, 0);
}

/// A client that stops draining its socket is dropped by the write
/// timeout instead of wedging the server.
#[test]
fn slow_reader_is_dropped_not_served_forever() {
    use std::io::Write;

    let data = objects(60, UNIVERSE, 6, 0x510);
    let config = ServerConfig {
        write_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let (_service, handle) = start_server(&data, config);
    // raw socket: handshake, then request floods of Stats replies
    // without ever reading them
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(&genie_net::frame::encode_request(
            0,
            &Request::Hello {
                version: genie_net::frame::PROTOCOL_VERSION,
                token: String::new(),
            },
        ))
        .expect("hello");
    let stats_frame = genie_net::frame::encode_request(1, &Request::Stats);
    let deadline = Instant::now() + Duration::from_secs(30);
    'flood: while Instant::now() < deadline {
        for _ in 0..64 {
            if stream.write_all(&stats_frame).is_err() {
                break 'flood; // server already dropped us
            }
        }
        if handle.net_stats().slow_reader_drops > 0 {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.net_stats().slow_reader_drops == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        handle.net_stats().slow_reader_drops > 0,
        "a never-draining client must trip the write timeout"
    );
    // the server still serves new clients afterwards
    let client = Client::connect(handle.addr()).expect("connect after drop");
    client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 9))
        .expect("post-drop search");
}

/// Stats frames expose both service counters and net counters.
#[test]
fn stats_frame_merges_service_and_net_counters() {
    let data = objects(50, UNIVERSE, 6, 0x57a7);
    let (_service, handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 0))
        .expect("search");
    let fields = client.stats().expect("stats");
    let get = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stats must carry {name}"))
            .1
    };
    assert!(get("service/submitted") >= 1.0);
    assert!(get("service/served") >= 1.0);
    assert_eq!(get("net/accepted"), 1.0);
    assert!(get("net/frames_in") >= 1.0);
    assert_eq!(get("net/active_connections"), 1.0);
    assert!(get("net/protocol_errors") == 0.0);
}

/// The placement extension's trailing Stats rows: fleet-health and
/// learned-cost fields ride behind the v1 rows (`backend/{i}/...` per
/// backend plus the new `service/...` counters), and the client's
/// `fleet_health` regrouping recovers them per backend.
#[test]
fn stats_frame_carries_fleet_health_and_learned_costs() {
    let data = objects(50, UNIVERSE, 6, 0x0f1e);
    let (_service, handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 1))
        .expect("search");
    let fields = client.stats().expect("stats");
    let get = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stats must carry {name}"))
            .1
    };
    // new service counters exist (placement inactive: zeros are fine)
    assert_eq!(get("service/rebalances"), 0.0);
    assert_eq!(get("service/hot_shard_events"), 0.0);
    // the learned model starts at the (positive) seed and has already
    // folded this search's wave
    assert!(get("service/learned_base_us") > 0.0);
    assert!(get("service/learned_us_per_posting") > 0.0);
    assert!(get("service/cost_observations") >= 1.0);
    // per-backend rows: the single-cpu fleet of start_server
    assert!(get("backend/0/cpu/queries") >= 1.0);
    assert_eq!(get("backend/0/cpu/retired"), 0.0);
    assert!(get("backend/0/cpu/learned_us_per_posting") > 0.0);
    // the client-side regrouping sees the same backend
    let fleet = client.fleet_health().expect("fleet health");
    assert_eq!(fleet.len(), 1);
    assert_eq!(fleet[0].0, "0/cpu");
    let rows = &fleet[0].1;
    let row = |name: &str| {
        rows.iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("fleet health must carry {name}"))
            .1
    };
    assert!(row("queries") >= 1.0);
    assert!(row("cost_observations") >= 1.0);
    assert_eq!(row("queries"), get("backend/0/cpu/queries"));
}
