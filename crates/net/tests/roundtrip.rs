//! Round-trip identity: encode → frame → decode is the identity for
//! queries and results from every domain, and a genie-client search
//! over loopback returns exactly what the in-process typed facade
//! returns.

mod common;

use std::sync::Arc;

use common::{objects, start_server};
use genie_client::Client;
use genie_core::backend::CpuBackend;
use genie_core::domain::Domain;
use genie_core::model::{Query, QueryItem};
use genie_core::topk::TopHit;
use genie_net::frame::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use genie_net::server::{NetServer, ServerConfig};
use genie_sa::document::DocumentIndex;
use genie_sa::relational::{Attribute, Condition, RelationalIndex, RelationalSchema, Value};
use genie_sa::sequence::SequenceIndex;
use genie_service::{GenieDb, DEFAULT_COLLECTION};
use proptest::prelude::*;

fn roundtrip_request(request: &Request) -> Request {
    let frame = encode_request(42, request);
    let (id, decoded) = decode_request(&frame[4..]).expect("valid frames decode");
    assert_eq!(id, 42);
    decoded
}

fn roundtrip_response(response: &Response) -> Response {
    let frame = encode_response(43, response);
    let (id, decoded) = decode_response(&frame[4..]).expect("valid frames decode");
    assert_eq!(id, 43);
    decoded
}

proptest! {
    /// Arbitrary raw queries survive the wire byte-for-byte.
    #[test]
    fn raw_queries_roundtrip(
        items in proptest::collection::vec((0u32..500, 0u32..500), 1..12),
        k in 1u32..100,
        collection in 0u64..10,
    ) {
        let query = Query::new(
            items
                .iter()
                .map(|&(a, b)| QueryItem::range(a.min(b), a.max(b)))
                .collect(),
        );
        let request = Request::Search { collection, k, query };
        prop_assert_eq!(roundtrip_request(&request), request);
    }

    /// Arbitrary result sets survive the wire byte-for-byte.
    #[test]
    fn result_sets_roundtrip(
        hits in proptest::collection::vec((0u32..100_000, 0u32..64), 0..60),
        audit_threshold in 0u32..64,
        rounds in 1u32..8,
    ) {
        let response = Response::Search {
            rounds,
            audit_threshold,
            hits: hits.iter().map(|&(id, count)| TopHit { id, count }).collect(),
        };
        prop_assert_eq!(roundtrip_response(&response), response);
    }

    /// Mutation batches (the other payload-heavy frame) round-trip.
    #[test]
    fn mutation_batches_roundtrip(
        deletes in proptest::collection::vec(0u32..10_000, 0..20),
        inserts in proptest::collection::vec(
            proptest::collection::vec(0u32..500, 0..10),
            0..10,
        ),
        collection in 0u64..10,
    ) {
        let request = Request::Mutate { collection, deletes, inserts };
        prop_assert_eq!(roundtrip_request(&request), request);
    }
}

/// Queries produced by each typed domain's encoder — document,
/// relational, sequence, plus raw keywords — round-trip through the
/// frame codec unchanged.
#[test]
fn domain_encoded_queries_roundtrip() {
    let mut encoded: Vec<Query> = Vec::new();

    let docs: Vec<Vec<String>> = vec![
        vec!["genie".into(), "inverted".into(), "index".into()],
        vec!["match".into(), "count".into(), "genie".into()],
        vec!["gpu".into(), "batch".into()],
    ];
    let doc_index = DocumentIndex::build(&docs);
    encoded.push(
        doc_index
            .encode(&vec!["genie".into(), "batch".into()])
            .expect("document query encodes"),
    );

    let schema = RelationalSchema {
        attrs: vec![
            Attribute::Categorical { cardinality: 8 },
            Attribute::Numeric {
                min: 0.0,
                max: 100.0,
                buckets: 32,
            },
        ],
        load_balance: None,
    };
    let rows = vec![
        vec![Value::Cat(3), Value::Num(12.5)],
        vec![Value::Cat(5), Value::Num(77.0)],
    ];
    let rel_index = RelationalIndex::build(schema.attrs.clone(), &rows, None);
    encoded.push(
        rel_index
            .encode(&vec![
                Condition::CatEq { attr: 0, value: 3 },
                Condition::NumRange {
                    attr: 1,
                    lo: 10.0,
                    hi: 80.0,
                },
            ])
            .expect("relational query encodes"),
    );

    let seqs: Vec<Vec<u8>> = vec![b"GATTACA".to_vec(), b"CATCATG".to_vec()];
    let seq_index = SequenceIndex::create(3, seqs);
    encoded.push(
        seq_index
            .encode(&b"GATCAT".to_vec())
            .expect("sequence query encodes"),
    );

    encoded.push(Query::from_keywords(&[1, 5, 9]));

    for query in encoded {
        let request = Request::Search {
            collection: DEFAULT_COLLECTION,
            k: 10,
            query: query.clone(),
        };
        match roundtrip_request(&request) {
            Request::Search { query: back, .. } => {
                assert_eq!(back, query, "domain-encoded query must survive the wire")
            }
            other => panic!("round-trip changed the request kind: {other:?}"),
        }
    }
}

/// End-to-end identity: a genie-client search over loopback returns
/// hit-for-hit (ids, counts, AT) what `Collection::search` returns
/// in-process on the same typed collection.
#[test]
fn client_search_matches_in_process_collection_search() {
    let db = GenieDb::single(Arc::new(CpuBackend::new())).expect("db opens");
    let vocab = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    ];
    let docs: Vec<Vec<String>> = (0..120)
        .map(|i: usize| {
            (0..1 + i % 5)
                .map(|j| vocab[(i * 7 + j * 3) % vocab.len()].to_string())
                .collect()
        })
        .collect();
    let coll = db
        .create_collection::<DocumentIndex>("docs", (), docs)
        .expect("collection builds");
    let handle = NetServer::spawn(db.service_handle(), "127.0.0.1:0", ServerConfig::default())
        .expect("server binds");
    let client = Client::connect(handle.addr()).expect("connect");
    for i in 0..10usize {
        let spec: Vec<String> = vec![
            vocab[i % vocab.len()].to_string(),
            vocab[(i * 3 + 1) % vocab.len()].to_string(),
        ];
        let truth = coll.search(&spec, 10).expect("in-process search");
        let query = coll.domain().encode(&spec).expect("spec encodes");
        let wire = client.search(coll.id(), 10, query).expect("wire search");
        assert_eq!(
            wire.hits, truth.hits,
            "wire hits == Collection::search hits"
        );
        assert_eq!(wire.audit_threshold, truth.audit_threshold);
    }
}

/// The raw keyword path agrees too: default collection, handmade
/// queries, wire vs `submit_to`.
#[test]
fn client_search_matches_in_process_submit() {
    let data = objects(150, 80, 7, 0x1d);
    let (service, handle) = start_server(&data, ServerConfig::default());
    let client = Client::connect(handle.addr()).expect("connect");
    for i in 0..10u64 {
        let query = common::query(80, i);
        let truth = service
            .submit_to(DEFAULT_COLLECTION, query.clone(), 8)
            .wait()
            .expect("in-process");
        let wire = client
            .search(DEFAULT_COLLECTION, 8, query)
            .expect("wire search");
        assert_eq!(wire.hits, truth.hits);
        assert_eq!(wire.audit_threshold, truth.audit_threshold);
    }
}
