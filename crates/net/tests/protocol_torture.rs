//! Adversarial input: truncated, oversized, mis-versioned and garbage
//! frames must produce a typed error frame or a clean drop — never a
//! panic, and never corruption of neighboring connections.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use common::{objects, query, start_server};
use genie_client::Client;
use genie_net::frame::{
    encode_request, read_frame, Request, Response, WireError, PROTOCOL_VERSION,
};
use genie_net::server::{ServerConfig, ServerHandle};
use genie_service::{GenieService, DEFAULT_COLLECTION};
use proptest::prelude::*;

const UNIVERSE: u32 = 64;
const TORTURE_FRAME_CAP: u32 = 64 * 1024;

struct Fixture {
    _service: Arc<GenieService>,
    handle: Mutex<ServerHandle>,
    addr: std::net::SocketAddr,
}

/// One server shared by every proptest case in this file — the point
/// is exactly that hundreds of hostile connections hit the *same*
/// server and it keeps serving.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = objects(80, UNIVERSE, 6, 0x70a7);
        let config = ServerConfig {
            // keep hostile half-open connections from pinning threads
            handshake_timeout: Duration::from_millis(500),
            max_frame_len: TORTURE_FRAME_CAP,
            ..ServerConfig::default()
        };
        let (service, handle) = start_server(&data, config);
        let addr = handle.addr();
        Fixture {
            _service: service,
            handle: Mutex::new(handle),
            addr,
        }
    })
}

/// The health probe: a fresh well-behaved client must still be served.
fn assert_server_healthy(tag: &str) {
    let client = Client::connect(fixture().addr)
        .unwrap_or_else(|e| panic!("server unreachable after {tag}: {e}"));
    let reply = client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 1))
        .unwrap_or_else(|e| panic!("server unhealthy after {tag}: {e}"));
    assert!(reply.hits.len() <= 5);
}

fn handshake(stream: &mut TcpStream) {
    stream
        .write_all(&encode_request(
            0,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                token: String::new(),
            },
        ))
        .expect("hello");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    read_frame(stream, TORTURE_FRAME_CAP)
        .expect("welcome readable")
        .expect("welcome present");
}

/// Read frames until the peer closes; never blocks forever.
fn drain_until_close(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

fn sample_request(i: usize) -> Request {
    match i % 4 {
        0 => Request::Search {
            collection: DEFAULT_COLLECTION,
            k: 5,
            query: query(UNIVERSE, i as u64),
        },
        1 => Request::Mutate {
            collection: DEFAULT_COLLECTION,
            deletes: vec![],
            inserts: vec![vec![1, 2], vec![3]],
        },
        2 => Request::ListCollections,
        _ => Request::Stats,
    }
}

proptest! {
    /// A valid frame truncated at any byte → clean drop or typed
    /// error; the server survives every time.
    #[test]
    fn truncated_frames_never_wedge_the_server(which in 0usize..4, cut_bp in 0u32..10_000) {
        let mut stream = TcpStream::connect(fixture().addr).expect("connect");
        handshake(&mut stream);
        let full = encode_request(7, &sample_request(which));
        let cut = (full.len() - 1) * cut_bp as usize / 10_000;
        stream.write_all(&full[..cut]).expect("write truncated");
        // half-close: the server sees EOF mid-frame
        let _ = stream.shutdown(std::net::Shutdown::Write);
        drain_until_close(&mut stream);
        assert_server_healthy("a truncated frame");
    }

    /// Arbitrary garbage after a valid handshake → typed error frame
    /// or drop, never a panic.
    #[test]
    fn garbage_after_handshake_degrades_cleanly(
        bytes in proptest::collection::vec(0u8..=255, 1..200),
    ) {
        let mut stream = TcpStream::connect(fixture().addr).expect("connect");
        handshake(&mut stream);
        let _ = stream.write_all(&bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        drain_until_close(&mut stream);
        assert_server_healthy("garbage bytes");
    }

    /// Garbage *instead of* a handshake.
    #[test]
    fn garbage_handshakes_are_rejected(
        bytes in proptest::collection::vec(0u8..=255, 1..64),
    ) {
        let mut stream = TcpStream::connect(fixture().addr).expect("connect");
        let _ = stream.write_all(&bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        drain_until_close(&mut stream);
        assert_server_healthy("a garbage handshake");
    }

    /// Any version other than 1 is rejected with the typed
    /// UnsupportedVersion error naming the wanted version.
    #[test]
    fn wrong_versions_get_typed_rejects(raw in 2u16..1000) {
        // map one value onto 0 so the below-current case is covered too
        let version = if raw == 2 { 0 } else { raw };
        let mut stream = TcpStream::connect(fixture().addr).expect("connect");
        stream
            .write_all(&encode_request(0, &Request::Hello { version, token: String::new() }))
            .expect("hello");
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let body = read_frame(&mut stream, TORTURE_FRAME_CAP)
            .expect("reject readable")
            .expect("reject present");
        let (id, response) = genie_net::frame::decode_response(&body).expect("typed reject");
        prop_assert_eq!(id, 0);
        match response {
            Response::Reject { error: WireError::UnsupportedVersion { got, want } } => {
                prop_assert_eq!(got, version);
                prop_assert_eq!(want, PROTOCOL_VERSION);
            }
            other => panic!("wanted UnsupportedVersion, got {other:?}"),
        }
        drain_until_close(&mut stream);
        assert_server_healthy("a mis-versioned hello");
    }

    /// Length prefixes beyond the cap are refused without reading the
    /// body, while a *neighbor* connection keeps serving mid-abuse.
    #[test]
    fn oversized_lengths_are_refused_without_allocation(
        declared in TORTURE_FRAME_CAP + 1..u32::MAX,
    ) {
        let neighbor = Client::connect(fixture().addr).expect("neighbor connects");
        let mut stream = TcpStream::connect(fixture().addr).expect("connect");
        handshake(&mut stream);
        let before = fixture().handle.lock().unwrap().net_stats().oversized_frames;
        stream.write_all(&declared.to_le_bytes()).expect("length prefix");
        // no body follows — the declared length alone must get us dropped
        drain_until_close(&mut stream);
        let after = fixture().handle.lock().unwrap().net_stats().oversized_frames;
        prop_assert!(after > before, "the oversize counter must bump");
        // the neighbor never noticed
        let reply = neighbor
            .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 2))
            .expect("neighbor survives sibling abuse");
        prop_assert!(reply.hits.len() <= 5);
    }
}
