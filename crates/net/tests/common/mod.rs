//! Shared loopback-server scaffolding for the genie-net test suites.

use std::sync::Arc;

use genie_core::backend::CpuBackend;
use genie_core::index::{IndexBuilder, InvertedIndex};
use genie_core::model::{Object, Query, QueryItem};
use genie_net::server::{NetServer, ServerConfig, ServerHandle};
use genie_service::{GenieService, QueryScheduler, ServiceConfig};

/// Deterministic keyword multisets (xorshift — no dependency, no
/// global RNG state shared between tests).
pub fn objects(n: usize, universe: u32, max_len: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let len = 1 + (next() as usize) % max_len;
            (0..len).map(|_| (next() as u32) % universe).collect()
        })
        .collect()
}

pub fn index_of(objects: &[Vec<u32>]) -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    for keywords in objects {
        b.add_object(&Object {
            keywords: keywords.clone(),
        });
    }
    Arc::new(b.build(None))
}

/// One CPU-backed service over `objects` (as the default collection)
/// fronted by a loopback server.
pub fn start_server(
    objects: &[Vec<u32>],
    config: ServerConfig,
) -> (Arc<GenieService>, ServerHandle) {
    let service = Arc::new(
        GenieService::start(
            QueryScheduler::single(Arc::new(CpuBackend::new())),
            &index_of(objects),
            ServiceConfig::default(),
        )
        .expect("service starts"),
    );
    let handle = NetServer::spawn(Arc::clone(&service), "127.0.0.1:0", config)
        .expect("server binds loopback");
    (service, handle)
}

/// A deterministic query family over `universe` (mixes exacts and
/// ranges so postings scans of different widths batch together).
pub fn query(universe: u32, i: u64) -> Query {
    let a = (i * 7 + 3) as u32 % universe;
    let b = (i * 13 + 5) as u32 % universe;
    let (lo, hi) = (a.min(b), a.max(b));
    Query::new(vec![
        QueryItem::exact(a),
        QueryItem::range(lo, hi),
        QueryItem::exact((i as u32 * 31 + 11) % universe),
    ])
}
