//! Slow and stalled peers: frames that arrive slower than the reader
//! poll interval must still decode intact (no stream desync), and a
//! peer that stalls mid-prefix must not pin its connection thread
//! past the handshake timeout or block a server drain.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{objects, query, start_server};
use genie_client::Client;
use genie_net::frame::{
    decode_response, encode_request, read_frame, Request, Response, PROTOCOL_VERSION,
};
use genie_net::server::ServerConfig;
use genie_service::DEFAULT_COLLECTION;

const UNIVERSE: u32 = 64;
const FRAME_CAP: u32 = 64 * 1024;

/// Short poll so every test tick is cheap; sleeps between trickled
/// chunks are comfortably longer than this, so the server reader is
/// guaranteed to hit its read timeout mid-frame.
const READ_POLL: Duration = Duration::from_millis(20);

fn config() -> ServerConfig {
    ServerConfig {
        read_poll: READ_POLL,
        handshake_timeout: Duration::from_millis(250),
        drain_timeout: Duration::from_secs(5),
        max_frame_len: FRAME_CAP,
        ..ServerConfig::default()
    }
}

fn handshake(stream: &mut TcpStream) {
    stream
        .write_all(&encode_request(
            0,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                token: String::new(),
            },
        ))
        .expect("hello");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    read_frame(stream, FRAME_CAP)
        .expect("welcome readable")
        .expect("welcome present");
}

/// Regression: a frame delivered slower than the reader poll used to
/// desync the stream — the reader dropped the partially-read body and
/// re-parsed mid-body bytes as a fresh length prefix. Trickling a
/// request in small chunks with pauses longer than `read_poll` must
/// yield a correct answer, and the *next* request on the same
/// connection must still line up.
#[test]
fn slow_frame_delivery_does_not_desync_the_stream() {
    let data = objects(80, UNIVERSE, 6, 0x5701);
    let (_service, mut handle) = start_server(&data, config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    handshake(&mut stream);

    let request = encode_request(
        11,
        &Request::Search {
            collection: DEFAULT_COLLECTION,
            k: 5,
            query: query(UNIVERSE, 3),
        },
    );
    // Pause inside the length prefix, on the prefix/body boundary, and
    // inside the body — every spot the old reader could lose bytes at.
    let cuts = [2usize, 4, 4 + (request.len() - 4) / 2, request.len()];
    let mut at = 0;
    for &cut in &cuts {
        stream.write_all(&request[at..cut]).expect("trickled chunk");
        at = cut;
        std::thread::sleep(3 * READ_POLL);
    }

    let body = read_frame(&mut stream, FRAME_CAP)
        .expect("response readable")
        .expect("response present");
    let (id, response) = decode_response(&body).expect("response decodes");
    assert_eq!(id, 11, "response must answer the trickled request");
    match response {
        Response::Search { hits, .. } => assert!(hits.len() <= 5),
        other => panic!("wanted Search, got {other:?}"),
    }

    // A second, normally-paced request on the same connection: if the
    // reader had mis-framed above, this one reads garbage or hangs.
    stream
        .write_all(&encode_request(12, &Request::Stats))
        .expect("follow-up request");
    let body = read_frame(&mut stream, FRAME_CAP)
        .expect("follow-up readable")
        .expect("follow-up present");
    let (id, response) = decode_response(&body).expect("follow-up decodes");
    assert_eq!(id, 12, "stream must still be frame-aligned");
    assert!(matches!(response, Response::Stats { .. }));

    assert!(handle.shutdown(), "drain must complete");
}

/// Regression: a peer that sends a few prefix bytes and stalls used to
/// spin the reader in an unbounded retry loop that never observed the
/// shutdown flag, so a drain had to ride out `drain_timeout`. The
/// reader must now surface each poll tick and exit promptly.
#[test]
fn stalled_mid_prefix_peer_does_not_block_shutdown() {
    let data = objects(80, UNIVERSE, 6, 0x5702);
    let (_service, mut handle) = start_server(&data, config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    handshake(&mut stream);

    // Two bytes of a length prefix, then silence.
    stream.write_all(&[0x10, 0x00]).expect("partial prefix");
    // Give the server a moment to consume them so the reader is
    // genuinely parked mid-prefix when the drain begins.
    std::thread::sleep(3 * READ_POLL);

    let started = Instant::now();
    assert!(
        handle.shutdown(),
        "drain must complete despite a stalled mid-prefix peer"
    );
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "drain took {:?}; reader ignored the shutdown flag",
        started.elapsed()
    );
}

/// Regression companion: the same stall *before* the handshake — a
/// client trickling its Hello one byte at a time must be cut off at
/// `handshake_timeout`, not held forever.
#[test]
fn trickled_handshake_is_bounded_by_the_timeout() {
    let data = objects(80, UNIVERSE, 6, 0x5703);
    let (_service, mut handle) = start_server(&data, config());

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&[0x09]).expect("lone prefix byte");
    // Wait past handshake_timeout (250ms) for the reject to land.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if handle.net_stats().handshake_rejects > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "handshake never timed out for a stalled peer"
        );
        std::thread::sleep(READ_POLL);
    }

    // The server is unscathed: a well-behaved client still gets served.
    let client = Client::connect(handle.addr()).expect("healthy client connects");
    let reply = client
        .search(DEFAULT_COLLECTION, 5, query(UNIVERSE, 1))
        .expect("healthy client served");
    assert!(reply.hits.len() <= 5);

    drop(stream);
    assert!(handle.shutdown(), "drain must complete");
}
