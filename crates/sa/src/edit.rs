//! Edit (Levenshtein) distance: the verification metric of the sequence
//! pipeline (paper §V-A2).

/// Classic two-row DP edit distance.
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded edit distance: returns `Some(d)` if `d <= limit`, else `None`.
/// Only cells within `limit` of the diagonal are touched, so candidates
/// already worse than the current k-th best are rejected in
/// `O(limit * max(|a|,|b|))` — the workhorse of Algorithm 2.
pub fn edit_distance_bounded(a: &[u8], b: &[u8], limit: usize) -> Option<usize> {
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > limit {
        return None;
    }
    if la == 0 {
        return (lb <= limit).then_some(lb);
    }
    if lb == 0 {
        return (la <= limit).then_some(la);
    }
    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; lb + 1];
    let mut cur = vec![INF; lb + 1];
    for (j, p) in prev.iter_mut().enumerate().take(limit.min(lb) + 1) {
        *p = j;
    }
    for i in 1..=la {
        let lo = i.saturating_sub(limit).max(1);
        let hi = (i + limit).min(lb);
        if lo > hi {
            return None;
        }
        cur[lo - 1] = if i <= limit + (lo - 1) && lo == 1 {
            i
        } else {
            INF
        };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let v = (prev[j - 1] + cost).min(prev[j] + 1).min(cur[j - 1] + 1);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if hi < lb {
            cur[hi + 1..].fill(INF);
        }
        if row_min > limit {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(INF);
    }
    (prev[lb] <= limit).then_some(prev[lb])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"same", b"same"), 0);
    }

    #[test]
    fn bounded_agrees_when_within_limit() {
        assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 10), Some(3));
        assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 2), None);
    }

    #[test]
    fn bounded_short_circuits_on_length_gap() {
        assert_eq!(edit_distance_bounded(b"a", b"aaaaaaaa", 3), None);
        assert_eq!(edit_distance_bounded(b"", b"ab", 2), Some(2));
        assert_eq!(edit_distance_bounded(b"", b"ab", 1), None);
    }

    proptest! {
        #[test]
        fn bounded_matches_full_dp(
            a in proptest::collection::vec(0u8..5, 0..20),
            b in proptest::collection::vec(0u8..5, 0..20),
            limit in 0usize..12,
        ) {
            let full = edit_distance(&a, &b);
            match edit_distance_bounded(&a, &b, limit) {
                Some(d) => prop_assert_eq!(d, full),
                None => prop_assert!(full > limit, "full={full} limit={limit}"),
            }
        }

        #[test]
        fn metric_properties(
            a in proptest::collection::vec(0u8..4, 0..15),
            b in proptest::collection::vec(0u8..4, 0..15),
            c in proptest::collection::vec(0u8..4, 0..15),
        ) {
            let dab = edit_distance(&a, &b);
            let dba = edit_distance(&b, &a);
            prop_assert_eq!(dab, dba, "symmetry");
            prop_assert_eq!(edit_distance(&a, &a), 0, "identity");
            let dac = edit_distance(&a, &c);
            let dbc = edit_distance(&b, &c);
            prop_assert!(dac <= dab + dbc, "triangle inequality");
        }
    }
}
