//! Graph similarity search via star decomposition (paper §II-B2,
//! "stars for graphs"; star structures after Yan et al. and the star
//! mapping distance of Zeng et al., "Comparing stars: on approximating
//! graph edit distance", VLDB 2009).
//!
//! The SA decomposition for labelled undirected graphs: every node
//! contributes its *star* — the node's label plus the sorted multiset of
//! its neighbours' labels. Graphs sharing many stars share much local
//! structure, so the match count is a candidate filter for graph
//! similarity; retrieved candidates are verified with the *star mapping
//! distance* `μ(G1, G2)` — the minimum-cost assignment between the two
//! star multisets (computed exactly with the Hungarian algorithm) —
//! which lower-bounds graph edit distance by `μ / max(4, δ+1)` where δ
//! is the maximum degree.

use std::collections::HashMap;

use genie_core::model::{KeywordId, Object, Query};

/// A labelled undirected graph in adjacency form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    labels: Vec<u32>,
    adj: Vec<Vec<usize>>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with `label`, returning its id.
    pub fn add_node(&mut self, label: u32) -> usize {
        self.labels.push(label);
        self.adj.push(Vec::new());
        self.labels.len() - 1
    }

    /// Add an undirected edge; duplicate edges are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a != b, "self-loops are not supported");
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label(&self, node: usize) -> u32 {
        self.labels[node]
    }

    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|n| n.len()).max().unwrap_or(0)
    }
}

/// A star: a node's label plus the sorted labels of its neighbours.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Star {
    pub root: u32,
    pub leaves: Vec<u32>,
}

/// Extract the star multiset of `g` (one star per node).
pub fn stars(g: &Graph) -> Vec<Star> {
    (0..g.len())
        .map(|v| {
            let mut leaves: Vec<u32> = g.adj[v].iter().map(|&u| g.labels[u]).collect();
            leaves.sort_unstable();
            Star {
                root: g.labels[v],
                leaves,
            }
        })
        .collect()
}

/// Edit cost between two stars (Zeng et al.):
/// `T(root) + |d1 - d2| + (max(d1, d2) - |leaf multiset intersection|)`.
pub fn star_distance(a: &Star, b: &Star) -> u32 {
    let root = u32::from(a.root != b.root);
    let (d1, d2) = (a.leaves.len(), b.leaves.len());
    // multiset intersection of two sorted vecs
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < d1 && j < d2 {
        match a.leaves[i].cmp(&b.leaves[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    root + d1.abs_diff(d2) as u32 + (d1.max(d2) - inter) as u32
}

/// Cost of deleting (or inserting) a whole star.
fn star_deletion_cost(s: &Star) -> u32 {
    1 + s.leaves.len() as u32
}

/// Star mapping distance `μ(G1, G2)`: the minimum-cost perfect matching
/// between the two star multisets, padded with empty slots costed as
/// whole-star insertions/deletions. Exact, via the Hungarian algorithm.
pub fn star_mapping_distance(a: &Graph, b: &Graph) -> u32 {
    let sa = stars(a);
    let sb = stars(b);
    let n = sa.len().max(sb.len());
    if n == 0 {
        return 0;
    }
    let mut cost = vec![vec![0i64; n]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = match (sa.get(i), sb.get(j)) {
                (Some(x), Some(y)) => star_distance(x, y) as i64,
                (Some(x), None) => star_deletion_cost(x) as i64,
                (None, Some(y)) => star_deletion_cost(y) as i64,
                (None, None) => 0,
            };
        }
    }
    hungarian_min_cost(&cost) as u32
}

/// GED lower bound from the mapping distance: `μ / max(4, δ+1)`
/// (Zeng et al., Theorem 4.2-style normalisation).
pub fn ged_lower_bound(a: &Graph, b: &Graph) -> u32 {
    let mu = star_mapping_distance(a, b);
    let delta = a.max_degree().max(b.max_degree());
    mu / (4.max(delta + 1)) as u32
}

/// Hungarian algorithm (Kuhn–Munkres, O(n³)) for a square cost matrix;
/// returns the minimum total assignment cost.
pub fn hungarian_min_cost(cost: &[Vec<i64>]) -> i64 {
    let n = cost.len();
    if n == 0 {
        return 0;
    }
    const INF: i64 = i64::MAX / 4;
    // potentials and matching, 1-based internal arrays (classic e-maxx)
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    (1..=n).map(|j| cost[p[j] - 1][j - 1]).sum()
}

/// A star inverted index over a set of graphs, searched through GENIE.
///
/// The stored graphs and the star vocabulary sit behind locks so live
/// inserts (`Domain::decompose` / `Domain::store_item`) can grow them
/// under `&self`; the store only appends and existing vocabulary
/// entries are never reassigned.
pub struct GraphIndex {
    graphs: std::sync::RwLock<Vec<Graph>>,
    vocab: std::sync::RwLock<HashMap<(Star, u32), KeywordId>>,
    index: std::sync::Arc<genie_core::index::InvertedIndex>,
}

/// One verified graph hit: id and star mapping distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphHit {
    pub id: u32,
    pub distance: u32,
}

impl GraphIndex {
    /// Decompose and index `graphs`.
    pub fn build(graphs: Vec<Graph>) -> Self {
        let mut vocab: HashMap<(Star, u32), KeywordId> = HashMap::new();
        let mut builder = genie_core::index::IndexBuilder::new();
        for g in &graphs {
            let kws = Self::keywords_of(g, &mut vocab);
            builder.add_object(&Object::new(kws));
        }
        Self {
            graphs: std::sync::RwLock::new(graphs),
            vocab: std::sync::RwLock::new(vocab),
            index: std::sync::Arc::new(builder.build(None)),
        }
    }

    fn keywords_of(g: &Graph, vocab: &mut HashMap<(Star, u32), KeywordId>) -> Vec<KeywordId> {
        let mut occ: HashMap<Star, u32> = HashMap::new();
        stars(g)
            .into_iter()
            .map(|s| {
                let o = occ.entry(s.clone()).or_insert(0);
                let key = (s, *o);
                *o += 1;
                let next = vocab.len() as KeywordId;
                *vocab.entry(key).or_insert(next)
            })
            .collect()
    }

    /// Graphs in the store (build-time set plus live inserts; deleted
    /// graphs stay stored until a reindex).
    pub fn num_graphs(&self) -> usize {
        self.graphs.read().unwrap().len()
    }

    pub fn graph(&self, id: u32) -> Graph {
        self.graphs.read().unwrap()[id as usize].clone()
    }

    pub fn inverted_index(&self) -> &std::sync::Arc<genie_core::index::InvertedIndex> {
        &self.index
    }

    /// Query over the known stars of `q`.
    pub fn to_query(&self, q: &Graph) -> Query {
        let vocab = self.vocab.read().unwrap();
        let mut occ: HashMap<Star, u32> = HashMap::new();
        let kws: Vec<KeywordId> = stars(q)
            .into_iter()
            .filter_map(|s| {
                let o = occ.entry(s.clone()).or_insert(0);
                let key = (s, *o);
                *o += 1;
                vocab.get(&key).copied()
            })
            .collect();
        Query::from_keywords(&kws)
    }
}

impl genie_core::domain::Domain for GraphIndex {
    type Config = ();
    type Item = Graph;
    type QuerySpec = Graph;
    type Response = Vec<GraphHit>;

    fn name() -> &'static str {
        "graph"
    }

    fn create(_config: (), items: Vec<Graph>) -> Self {
        Self::build(items)
    }

    fn index(&self) -> &std::sync::Arc<genie_core::index::InvertedIndex> {
        &self.index
    }

    /// A graph with no nodes is a typed error; unknown stars match
    /// nothing and are skipped.
    fn encode(&self, spec: &Graph) -> Result<Query, genie_core::model::QueryBuildError> {
        if spec.is_empty() {
            return Err(genie_core::model::QueryBuildError::EmptyQuery);
        }
        Ok(self.to_query(spec))
    }

    /// Decompose one graph exactly like [`GraphIndex::build`] does:
    /// occurrence-tagged stars become keywords, unseen stars extend the
    /// vocabulary. A graph with no nodes is a typed error, mirroring
    /// `encode`.
    fn decompose(
        &self,
        item: &Graph,
    ) -> Result<genie_core::model::Object, genie_core::model::QueryBuildError> {
        if item.is_empty() {
            return Err(genie_core::model::QueryBuildError::EmptyQuery);
        }
        let mut vocab = self.vocab.write().unwrap();
        Ok(Object::new(Self::keywords_of(item, &mut vocab)))
    }

    /// Graphs must be stored for decode's verification pass; ids are
    /// dense and append-only.
    fn store_item(&self, id: genie_core::model::ObjectId, item: Graph) {
        let mut graphs = self.graphs.write().unwrap();
        debug_assert_eq!(graphs.len(), id as usize, "stable ids arrive dense");
        graphs.push(item);
    }

    /// Over-fetch candidates for the verify step (shared-star counts
    /// only *filter* for the star mapping distance).
    fn candidates_for(&self, k: usize) -> usize {
        (k * 8).max(32)
    }

    /// Verify the retrieved candidates with the Hungarian star-mapping
    /// distance and keep the top-k (ascending distance, ascending id).
    fn decode(
        &self,
        spec: &Graph,
        hits: Vec<genie_core::topk::TopHit>,
        _audit_threshold: u32,
        _k_candidates: usize,
        k: usize,
    ) -> Vec<GraphHit> {
        let graphs = self.graphs.read().unwrap();
        let mut verified: Vec<GraphHit> = hits
            .iter()
            .map(|h| GraphHit {
                id: h.id,
                distance: star_mapping_distance(spec, &graphs[h.id as usize]),
            })
            .collect();
        verified.sort_unstable_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)));
        verified.truncate(k);
        verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A labelled path graph a-b-c.
    fn path3(l: [u32; 3]) -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(l[0]);
        let b = g.add_node(l[1]);
        let c = g.add_node(l[2]);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g
    }

    /// A labelled triangle.
    fn triangle(l: [u32; 3]) -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(l[0]);
        let b = g.add_node(l[1]);
        let c = g.add_node(l[2]);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        g
    }

    #[test]
    fn stars_capture_neighbourhoods() {
        let g = path3([7, 8, 9]);
        let ss = stars(&g);
        assert_eq!(
            ss[0],
            Star {
                root: 7,
                leaves: vec![8]
            }
        );
        assert_eq!(
            ss[1],
            Star {
                root: 8,
                leaves: vec![7, 9]
            }
        );
        assert_eq!(
            ss[2],
            Star {
                root: 9,
                leaves: vec![8]
            }
        );
    }

    #[test]
    fn star_distance_cases() {
        let a = Star {
            root: 1,
            leaves: vec![2, 3],
        };
        assert_eq!(star_distance(&a, &a), 0);
        let b = Star {
            root: 9,
            leaves: vec![2, 3],
        };
        assert_eq!(star_distance(&a, &b), 1, "root relabel");
        let c = Star {
            root: 1,
            leaves: vec![2],
        };
        assert_eq!(star_distance(&a, &c), 2, "degree diff + missing leaf");
        let d = Star {
            root: 1,
            leaves: vec![4, 5],
        };
        assert_eq!(star_distance(&a, &d), 2, "two leaf relabels");
    }

    #[test]
    fn identical_graphs_have_zero_mapping_distance() {
        let g = triangle([1, 2, 3]);
        assert_eq!(star_mapping_distance(&g, &g), 0);
    }

    #[test]
    fn mapping_distance_sees_structural_change() {
        let p = path3([1, 2, 3]);
        let t = triangle([1, 2, 3]);
        // closing the triangle adds one edge = two star changes
        let mu = star_mapping_distance(&p, &t);
        assert!(mu > 0);
        assert!(ged_lower_bound(&p, &t) <= 1, "one edge insertion suffices");
    }

    #[test]
    fn hungarian_solves_known_matrices() {
        assert_eq!(hungarian_min_cost(&[]), 0);
        assert_eq!(hungarian_min_cost(&[vec![5]]), 5);
        // classic example: optimal is 1 + 2 + 3 off-diagonal
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        assert_eq!(hungarian_min_cost(&cost), 5);
        // permutation matrix: must pick the zeros
        let cost = vec![vec![9, 0, 9], vec![0, 9, 9], vec![9, 9, 0]];
        assert_eq!(hungarian_min_cost(&cost), 0);
    }

    fn arb_graph() -> impl Strategy<Value = Graph> {
        (
            proptest::collection::vec(0u32..4, 1..8),
            proptest::collection::vec((0usize..8, 0usize..8), 0..12),
        )
            .prop_map(|(labels, edges)| {
                let mut g = Graph::new();
                for l in &labels {
                    g.add_node(*l);
                }
                for (a, b) in edges {
                    let (a, b) = (a % g.len(), b % g.len());
                    if a != b {
                        g.add_edge(a, b);
                    }
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// μ is symmetric, zero on identity, and the Hungarian optimum
        /// never exceeds the identity assignment's cost.
        #[test]
        fn mapping_distance_is_sane((a, b) in (arb_graph(), arb_graph())) {
            prop_assert_eq!(star_mapping_distance(&a, &a), 0);
            prop_assert_eq!(
                star_mapping_distance(&a, &b),
                star_mapping_distance(&b, &a)
            );
            // upper bound: match stars in index order, pad with deletions
            let sa = stars(&a);
            let sb = stars(&b);
            let naive: u32 = (0..sa.len().max(sb.len()))
                .map(|i| match (sa.get(i), sb.get(i)) {
                    (Some(x), Some(y)) => star_distance(x, y),
                    (Some(x), None) | (None, Some(x)) => 1 + x.leaves.len() as u32,
                    (None, None) => 0,
                })
                .sum();
            prop_assert!(star_mapping_distance(&a, &b) <= naive);
        }

        /// The Hungarian result is a true lower bound over random
        /// permutation assignments.
        #[test]
        fn hungarian_is_optimal_vs_sampled_permutations(
            seed in 0u64..1000,
            n in 1usize..6,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let cost: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.random_range(0..50i64)).collect())
                .collect();
            let best = hungarian_min_cost(&cost);
            // exhaustively enumerate permutations (n <= 5)
            let mut perm: Vec<usize> = (0..n).collect();
            let mut minimum = i64::MAX;
            loop {
                let total: i64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
                minimum = minimum.min(total);
                if !next_permutation(&mut perm) {
                    break;
                }
            }
            prop_assert_eq!(best, minimum);
        }
    }

    fn next_permutation(p: &mut [usize]) -> bool {
        let n = p.len();
        if n < 2 {
            return false;
        }
        let mut i = n - 1;
        while i > 0 && p[i - 1] >= p[i] {
            i -= 1;
        }
        if i == 0 {
            return false;
        }
        let mut j = n - 1;
        while p[j] <= p[i - 1] {
            j -= 1;
        }
        p.swap(i - 1, j);
        p[i..].reverse();
        true
    }

    #[test]
    fn end_to_end_graph_search() {
        use genie_core::backend::SearchBackend;
        use genie_core::domain::Domain;
        use genie_core::exec::Engine;
        use gpu_sim::Device;
        use std::sync::Arc;

        let graphs = vec![
            path3([1, 2, 3]),
            path3([1, 2, 4]),
            triangle([1, 2, 3]),
            triangle([5, 6, 7]),
        ];
        let idx = GraphIndex::build(graphs.clone());
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let didx = SearchBackend::upload(&engine, Arc::clone(Domain::index(&idx))).unwrap();
        let spec = path3([1, 2, 3]);
        let q = idx.encode(&spec).unwrap();
        let out = SearchBackend::search_batch(&engine, &didx, &[q], 4);
        let hits = idx.decode(&spec, out.results[0].clone(), out.audit_thresholds[0], 4, 2);
        assert_eq!(hits[0], GraphHit { id: 0, distance: 0 });
        assert!(hits[1].distance > 0);
        assert_ne!(hits[1].id, 3, "disjoint-label triangle is farthest");
        assert!(
            idx.encode(&Graph::new()).is_err(),
            "empty graph is a typed error"
        );
    }
}
