//! Ordered n-gram decomposition (paper §V-A1, Example 5.1) and the
//! count filter (Lemma 5.1 / Theorem 5.1).
//!
//! A sequence is chopped into length-n windows; because the same n-gram
//! can recur, each occurrence is tagged with its repeat index — the
//! *ordered* n-gram `(gram, i)`. With ordered n-grams as keywords, the
//! match-count model computes `Σ_g min(count_S(g), count_Q(g))` exactly
//! (Lemma 5.1), which Theorem 5.1 turns into an edit-distance filter:
//! `ed(S, Q) = τ` implies `MC ≥ max(|S|,|Q|) − n + 1 − τ·n`.

use std::collections::HashMap;

/// One ordered n-gram: the window bytes plus its occurrence index within
/// the sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderedGram {
    pub gram: Vec<u8>,
    pub occurrence: u32,
}

/// Decompose `seq` into ordered n-grams (Example 5.1: "aabaab" with
/// n = 3 yields (aab,0), (aba,0), (baa,0), (aab,1)).
pub fn ordered_ngrams(seq: &[u8], n: usize) -> Vec<OrderedGram> {
    assert!(n >= 1, "n-gram length must be at least 1");
    if seq.len() < n {
        return Vec::new();
    }
    let mut seen: HashMap<&[u8], u32> = HashMap::new();
    let mut out = Vec::with_capacity(seq.len() - n + 1);
    for w in seq.windows(n) {
        let occ = seen.entry(w).or_insert(0);
        out.push(OrderedGram {
            gram: w.to_vec(),
            occurrence: *occ,
        });
        *occ += 1;
    }
    out
}

/// Lemma 5.1 reference: `Σ_g min(count_S(g), count_Q(g))` over plain
/// (unordered) n-grams — what the match count over ordered n-grams must
/// equal.
pub fn common_gram_count(a: &[u8], b: &[u8], n: usize) -> u32 {
    if a.len() < n || b.len() < n {
        return 0;
    }
    let mut ca: HashMap<&[u8], u32> = HashMap::new();
    for w in a.windows(n) {
        *ca.entry(w).or_insert(0) += 1;
    }
    let mut cb: HashMap<&[u8], u32> = HashMap::new();
    for w in b.windows(n) {
        *cb.entry(w).or_insert(0) += 1;
    }
    ca.iter()
        .map(|(g, &c)| c.min(cb.get(g).copied().unwrap_or(0)))
        .sum()
}

/// Theorem 5.1: the minimum match count a sequence within edit distance
/// `tau` of the query must achieve. Negative bounds clamp to 0 (the
/// filter is vacuous there).
pub fn count_lower_bound(len_q: usize, len_s: usize, tau: u32, n: usize) -> u32 {
    let base = len_q.max(len_s) as i64 - n as i64 + 1 - tau as i64 * n as i64;
    base.max(0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::edit_distance;
    use proptest::prelude::*;

    #[test]
    fn example_5_1_from_the_paper() {
        let grams = ordered_ngrams(b"aabaab", 3);
        let expect = [
            (b"aab".to_vec(), 0u32),
            (b"aba".to_vec(), 0),
            (b"baa".to_vec(), 0),
            (b"aab".to_vec(), 1),
        ];
        assert_eq!(grams.len(), 4);
        for (g, (bytes, occ)) in grams.iter().zip(expect.iter()) {
            assert_eq!(&g.gram, bytes);
            assert_eq!(g.occurrence, *occ);
        }
    }

    #[test]
    fn short_sequences_have_no_grams() {
        assert!(ordered_ngrams(b"ab", 3).is_empty());
        assert_eq!(ordered_ngrams(b"abc", 3).len(), 1);
    }

    #[test]
    fn ordered_grams_give_min_count_semantics() {
        // "aabaab" vs "aab": shared grams = min counts = 1 x "aab"... the
        // ordered encoding shares (aab,0) only
        let a: Vec<_> = ordered_ngrams(b"aabaab", 3);
        let b: Vec<_> = ordered_ngrams(b"aab", 3);
        let shared = a.iter().filter(|g| b.contains(g)).count() as u32;
        assert_eq!(shared, common_gram_count(b"aabaab", b"aab", 3));
    }

    #[test]
    fn bound_matches_paper_formula() {
        // |Q| = 40, n = 3, tau = 2: bound = 40 - 3 + 1 - 6 = 32
        assert_eq!(count_lower_bound(40, 40, 2, 3), 32);
        // vacuous case clamps to zero
        assert_eq!(count_lower_bound(5, 5, 10, 3), 0);
    }

    proptest! {
        /// The ordered-gram intersection equals Σ min counts for random
        /// byte strings (Lemma 5.1).
        #[test]
        fn ordered_intersection_equals_min_count(
            a in proptest::collection::vec(0u8..4, 0..24),
            b in proptest::collection::vec(0u8..4, 0..24),
            n in 1usize..5,
        ) {
            let ga = ordered_ngrams(&a, n);
            let gb = ordered_ngrams(&b, n);
            let shared = ga.iter().filter(|g| gb.contains(g)).count() as u32;
            prop_assert_eq!(shared, common_gram_count(&a, &b, n));
        }

        /// Theorem 5.1: for random pairs, the common-gram count respects
        /// the edit-distance lower bound.
        #[test]
        fn theorem_5_1_holds(
            a in proptest::collection::vec(0u8..6, 3..30),
            b in proptest::collection::vec(0u8..6, 3..30),
            n in 1usize..4,
        ) {
            let tau = edit_distance(&a, &b) as u32;
            let mc = common_gram_count(&a, &b, n);
            let bound = count_lower_bound(a.len(), b.len(), tau, n);
            prop_assert!(mc >= bound, "mc={mc} bound={bound} tau={tau}");
        }
    }
}
