//! Candidate verification — Algorithm 2 plus the Theorem 5.2 exactness
//! certificate.
//!
//! GENIE returns K candidates ordered by match count; verification
//! computes true edit distances over them, pruning with three filters:
//!
//! 1. *count break* (Alg. 2 line 5): once the Theorem 5.1 bound for the
//!    current k-th best distance exceeds a candidate's count, no later
//!    candidate (counts are descending) can improve the answer — stop;
//! 2. *length filter* (line 7): `||Q| − |S|| > τ*` implies `ed > τ*`;
//! 3. *banded DP*: distances are computed with a band of the current
//!    k-th best, rejecting losers early.
//!
//! Afterwards, Theorem 5.2 tells us whether the verified top-k is
//! provably the true top-k: it is when `c_K < |Q| − n + 1 − τ_k·n`,
//! where `c_K` is the K-th candidate's count. If the certificate fails,
//! the caller may retry with larger K (the adaptive loop in
//! [`crate::sequence`]).

use crate::edit::{edit_distance, edit_distance_bounded};
use crate::ngram::count_lower_bound;

/// A candidate produced by the match-count search, with its count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    pub id: u32,
    pub count: u32,
}

/// A verified hit: candidate id and its exact edit distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifiedHit {
    pub id: u32,
    pub distance: u32,
}

/// Statistics of one verification pass (how hard the filters worked).
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyStats {
    pub examined: usize,
    pub skipped_by_length: usize,
    pub rejected_by_band: usize,
    pub stopped_early: bool,
}

/// Run Algorithm 2 (generalised from top-1 to top-k): verify
/// `candidates` — **must be sorted by descending count** — against
/// `query`, returning up to `k` hits sorted by ascending edit distance
/// (ties by id) plus filter statistics.
pub fn verify_candidates<'a, L>(
    query: &[u8],
    candidates: &[Candidate],
    lookup: L,
    n: usize,
    k: usize,
) -> (Vec<VerifiedHit>, VerifyStats)
where
    L: Fn(u32) -> &'a [u8],
{
    let mut stats = VerifyStats::default();
    // current top-k as a max-heap on (distance, id): the root is the
    // incumbent k-th best, the τ* of Algorithm 2
    let mut heap: std::collections::BinaryHeap<(u32, u32)> = std::collections::BinaryHeap::new();

    for cand in candidates {
        let tau_star = if heap.len() == k {
            heap.peek().map(|&(d, _)| d)
        } else {
            None
        };
        if let Some(tau) = tau_star {
            // line 3/14: filtering bound θ = |Q| − n + 1 − n(τ* − 1);
            // a candidate with fewer shared grams cannot beat τ* − 1
            let theta = count_lower_bound(query.len(), query.len(), tau.saturating_sub(1), n);
            if theta > cand.count {
                stats.stopped_early = true;
                break; // counts are descending: all later ones fail too
            }
            // line 7: length filter
            let seq = lookup(cand.id);
            if query.len().abs_diff(seq.len()) as u32 > tau {
                stats.skipped_by_length += 1;
                continue;
            }
            stats.examined += 1;
            // only an improvement (distance <= τ* − 1) is useful
            match edit_distance_bounded(query, seq, tau.saturating_sub(1) as usize) {
                Some(d) => {
                    heap.pop();
                    heap.push((d as u32, cand.id));
                }
                None => stats.rejected_by_band += 1,
            }
        } else {
            // heap not full yet: verify unconditionally
            stats.examined += 1;
            let seq = lookup(cand.id);
            let d = edit_distance(query, seq) as u32;
            heap.push((d, cand.id));
        }
    }

    let mut hits: Vec<VerifiedHit> = heap
        .into_iter()
        .map(|(distance, id)| VerifiedHit { id, distance })
        .collect();
    hits.sort_unstable_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)));
    (hits, stats)
}

/// Theorem 5.2: the verified top-k among the K candidates is provably
/// the global top-k iff `c_K < |Q| − n + 1 − τ_k·n`, with `c_K` the K-th
/// candidate's match count (0 if fewer than K candidates exist — the
/// candidate list was exhaustive) and `τ_k` the k-th verified distance.
pub fn exactness_certificate(len_q: usize, c_k_th: u32, tau_k: u32, n: usize) -> bool {
    let bound = len_q as i64 - n as i64 + 1 - tau_k as i64 * n as i64;
    (c_k_th as i64) < bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::common_gram_count;

    fn seqs() -> Vec<Vec<u8>> {
        vec![
            b"abcdefgh".to_vec(),   // 0
            b"abcdefgx".to_vec(),   // 1: ed 1 from 0
            b"abxxefgh".to_vec(),   // 2: ed 2 from 0
            b"zzzzzzzz".to_vec(),   // 3: far
            b"abcdefghij".to_vec(), // 4: ed 2 from 0 (2 inserts)
        ]
    }

    fn candidates_for(query: &[u8], data: &[Vec<u8>], n: usize) -> Vec<Candidate> {
        let mut c: Vec<Candidate> = data
            .iter()
            .enumerate()
            .map(|(i, s)| Candidate {
                id: i as u32,
                count: common_gram_count(query, s, n),
            })
            .filter(|c| c.count > 0)
            .collect();
        c.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        c
    }

    #[test]
    fn finds_exact_match_first() {
        let data = seqs();
        let q = b"abcdefgh";
        let cands = candidates_for(q, &data, 3);
        let (hits, _) = verify_candidates(q, &cands, |id| &data[id as usize][..], 3, 3);
        assert_eq!(hits[0], VerifiedHit { id: 0, distance: 0 });
        assert_eq!(hits[1], VerifiedHit { id: 1, distance: 1 });
        assert_eq!(hits[2].distance, 2);
    }

    #[test]
    fn early_break_engages_on_weak_tails() {
        let data = seqs();
        let q = b"abcdefgh";
        // append a zero-count straggler to prove the break fires before it
        let mut cands = candidates_for(q, &data, 3);
        cands.push(Candidate { id: 3, count: 0 });
        let (hits, stats) = verify_candidates(q, &cands, |id| &data[id as usize][..], 3, 1);
        assert_eq!(hits[0].distance, 0);
        assert!(stats.stopped_early, "θ filter must cut the tail");
    }

    #[test]
    fn length_filter_skips_hopeless_candidates() {
        let long = vec![b'a'; 100];
        let data = [b"aaa".to_vec(), long.clone()];
        let q = b"aaa";
        let cands = vec![Candidate { id: 0, count: 1 }, Candidate { id: 1, count: 1 }];
        let (hits, stats) = verify_candidates(q, &cands, |id| &data[id as usize][..], 3, 1);
        assert_eq!(hits[0].id, 0);
        assert_eq!(stats.skipped_by_length, 1);
    }

    #[test]
    fn returns_fewer_hits_when_candidates_scarce() {
        let data = seqs();
        let q = b"abcdefgh";
        let cands = vec![Candidate { id: 0, count: 6 }];
        let (hits, _) = verify_candidates(q, &cands, |id| &data[id as usize][..], 3, 5);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn certificate_follows_theorem_5_2() {
        // |Q| = 40, n = 3, τ_k = 1: bound = 40-3+1-3 = 35
        assert!(exactness_certificate(40, 34, 1, 3));
        assert!(!exactness_certificate(40, 35, 1, 3));
        // exhaustive candidate list (c_K = 0) certifies any sane τ_k
        assert!(exactness_certificate(40, 0, 2, 3));
    }

    #[test]
    fn verified_topk_matches_brute_force() {
        let data = seqs();
        let q = b"abcdefgh";
        let cands = candidates_for(q, &data, 3);
        let (hits, _) = verify_candidates(q, &cands, |id| &data[id as usize][..], 3, 4);
        // brute force over candidates
        let mut brute: Vec<(u32, u32)> = cands
            .iter()
            .map(|c| (edit_distance(q, &data[c.id as usize]) as u32, c.id))
            .collect();
        brute.sort_unstable();
        for (hit, (d, id)) in hits.iter().zip(brute.iter()) {
            assert_eq!(hit.distance, *d);
            assert_eq!(hit.id, *id);
        }
    }
}
