//! Tree similarity search via binary branches (paper §II-B2, citing
//! Yang, Kalnis & Tung, "Similarity evaluation on tree-structured
//! data", SIGMOD 2005).
//!
//! The SA decomposition for ordered labelled trees: transform the tree
//! to its binary representation (first child -> left, next sibling ->
//! right) and take every node's *binary branch* — the triple
//! `(label, left-label | ε, right-label | ε)` — as a sub-unit. Yang et
//! al. prove the L1 distance between two trees' binary-branch vectors is
//! at most `5 x` their tree edit distance, so the shared-branch count
//! GENIE computes is an edit-distance filter exactly like n-grams are
//! for strings:
//!
//! `common(T1, T2) >= (|T1| + |T2| - 5 * ted(T1, T2)) / 2`
//!
//! Verification runs the Zhang–Shasha ordered tree edit distance over
//! the retrieved candidates.

use std::collections::HashMap;

use genie_core::model::{KeywordId, Object, Query};

/// An ordered labelled tree in arena form. Node 0 is the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    labels: Vec<u32>,
    children: Vec<Vec<usize>>,
}

impl Tree {
    /// Single-node tree.
    pub fn leaf(label: u32) -> Self {
        Self {
            labels: vec![label],
            children: vec![Vec::new()],
        }
    }

    /// Append a new node under `parent`; returns its id.
    pub fn add_child(&mut self, parent: usize, label: u32) -> usize {
        let id = self.labels.len();
        self.labels.push(label);
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label(&self, node: usize) -> u32 {
        self.labels[node]
    }

    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }
}

/// The "no node" marker in a binary branch.
pub const EPSILON: u32 = u32::MAX;

/// One binary branch: a node's label with the labels of its first child
/// and next sibling in the binary-tree transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinaryBranch {
    pub label: u32,
    pub left: u32,
    pub right: u32,
}

/// Extract the binary-branch multiset of `tree` (one branch per node).
pub fn binary_branches(tree: &Tree) -> Vec<BinaryBranch> {
    let mut out = Vec::with_capacity(tree.len());
    // next sibling of node i within its parent's child list
    let mut next_sibling = vec![EPSILON; tree.len()];
    for kids in &tree.children {
        for pair in kids.windows(2) {
            next_sibling[pair[0]] = tree.labels[pair[1]];
        }
    }
    for (node, &right) in next_sibling.iter().enumerate() {
        let left = tree.children[node]
            .first()
            .map(|&c| tree.labels[c])
            .unwrap_or(EPSILON);
        out.push(BinaryBranch {
            label: tree.labels[node],
            left,
            right,
        });
    }
    out
}

/// `Σ min counts` of shared binary branches — the quantity the
/// match-count model computes when branches are indexed with occurrence
/// tags.
pub fn common_branches(a: &Tree, b: &Tree) -> u32 {
    let mut ca: HashMap<BinaryBranch, u32> = HashMap::new();
    for br in binary_branches(a) {
        *ca.entry(br).or_insert(0) += 1;
    }
    let mut cb: HashMap<BinaryBranch, u32> = HashMap::new();
    for br in binary_branches(b) {
        *cb.entry(br).or_insert(0) += 1;
    }
    ca.iter()
        .map(|(br, &c)| c.min(cb.get(br).copied().unwrap_or(0)))
        .sum()
}

/// Yang et al.'s filter: trees within tree edit distance `tau` of a
/// query with `len_q` nodes share at least this many binary branches
/// with it (clamped at 0 when vacuous).
pub fn branch_lower_bound(len_q: usize, len_t: usize, tau: u32) -> u32 {
    let bound = (len_q as i64 + len_t as i64 - 5 * tau as i64) / 2;
    bound.max(0) as u32
}

/// Zhang–Shasha ordered tree edit distance (unit costs for insert,
/// delete and relabel).
pub fn tree_edit_distance(a: &Tree, b: &Tree) -> u32 {
    let pa = Postorder::of(a);
    let pb = Postorder::of(b);
    let (na, nb) = (pa.labels.len(), pb.labels.len());
    if na == 0 {
        return nb as u32;
    }
    if nb == 0 {
        return na as u32;
    }
    let mut tree_dist = vec![vec![0u32; nb]; na];
    for &kr_a in &pa.keyroots {
        for &kr_b in &pb.keyroots {
            forest_dist(&pa, &pb, kr_a, kr_b, &mut tree_dist);
        }
    }
    tree_dist[na - 1][nb - 1]
}

/// Postorder view of a tree: labels, leftmost-leaf indices, keyroots.
struct Postorder {
    labels: Vec<u32>,
    /// `lml[i]`: postorder index of the leftmost leaf of subtree `i`.
    lml: Vec<usize>,
    /// Nodes with a left sibling, plus the root — the LR keyroots.
    keyroots: Vec<usize>,
}

impl Postorder {
    fn of(tree: &Tree) -> Self {
        let mut order = Vec::with_capacity(tree.len());
        fn visit(tree: &Tree, node: usize, order: &mut Vec<usize>) {
            for &c in tree.children(node) {
                visit(tree, c, order);
            }
            order.push(node);
        }
        if !tree.is_empty() {
            visit(tree, 0, &mut order);
        }
        let post_of: HashMap<usize, usize> =
            order.iter().enumerate().map(|(p, &n)| (n, p)).collect();
        let mut labels = vec![0u32; order.len()];
        let mut lml = vec![0usize; order.len()];
        for (post, &node) in order.iter().enumerate() {
            labels[post] = tree.label(node);
            // leftmost leaf: descend first children
            let mut cur = node;
            while let Some(&first) = tree.children(cur).first() {
                cur = first;
            }
            lml[post] = post_of[&cur];
        }
        // keyroots: highest node of every distinct leftmost-leaf chain
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for (post, &leftmost) in lml.iter().enumerate() {
            seen.insert(leftmost, post); // later (higher) wins
        }
        let mut keyroots: Vec<usize> = seen.into_values().collect();
        keyroots.sort_unstable();
        Self {
            labels,
            lml,
            keyroots,
        }
    }
}

fn forest_dist(a: &Postorder, b: &Postorder, i: usize, j: usize, tree_dist: &mut [Vec<u32>]) {
    let (li, lj) = (a.lml[i], b.lml[j]);
    let rows = i - li + 2;
    let cols = j - lj + 2;
    let mut fd = vec![vec![0u32; cols]; rows];
    for (r, row) in fd.iter_mut().enumerate().skip(1) {
        row[0] = r as u32;
    }
    for (c, cell) in fd[0].iter_mut().enumerate().skip(1) {
        *cell = c as u32;
    }
    for r in 1..rows {
        let ai = li + r - 1;
        for c in 1..cols {
            let bj = lj + c - 1;
            if a.lml[ai] == li && b.lml[bj] == lj {
                // both forests are whole trees: a relabel is possible
                let cost = u32::from(a.labels[ai] != b.labels[bj]);
                fd[r][c] = (fd[r - 1][c] + 1)
                    .min(fd[r][c - 1] + 1)
                    .min(fd[r - 1][c - 1] + cost);
                tree_dist[ai][bj] = fd[r][c];
            } else {
                let (ra, ca) = (a.lml[ai].saturating_sub(li), b.lml[bj].saturating_sub(lj));
                fd[r][c] = (fd[r - 1][c] + 1)
                    .min(fd[r][c - 1] + 1)
                    .min(fd[ra][ca] + tree_dist[ai][bj]);
            }
        }
    }
}

/// A binary-branch inverted index over a forest, searched through GENIE.
///
/// The stored trees and the branch vocabulary sit behind locks so live
/// inserts (`Domain::decompose` / `Domain::store_item`) can grow them
/// under `&self`; the store only appends and existing vocabulary
/// entries are never reassigned.
pub struct TreeIndex {
    trees: std::sync::RwLock<Vec<Tree>>,
    vocab: std::sync::RwLock<HashMap<(BinaryBranch, u32), KeywordId>>,
    index: std::sync::Arc<genie_core::index::InvertedIndex>,
}

/// One verified tree hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeHit {
    pub id: u32,
    pub distance: u32,
}

impl TreeIndex {
    /// Decompose and index `trees`.
    pub fn build(trees: Vec<Tree>) -> Self {
        let mut vocab: HashMap<(BinaryBranch, u32), KeywordId> = HashMap::new();
        let mut builder = genie_core::index::IndexBuilder::new();
        for tree in &trees {
            let kws = Self::keywords_of(tree, &mut vocab);
            builder.add_object(&Object::new(kws));
        }
        Self {
            trees: std::sync::RwLock::new(trees),
            vocab: std::sync::RwLock::new(vocab),
            index: std::sync::Arc::new(builder.build(None)),
        }
    }

    fn keywords_of(
        tree: &Tree,
        vocab: &mut HashMap<(BinaryBranch, u32), KeywordId>,
    ) -> Vec<KeywordId> {
        let mut occ: HashMap<BinaryBranch, u32> = HashMap::new();
        let mut kws = Vec::with_capacity(tree.len());
        for br in binary_branches(tree) {
            let o = occ.entry(br).or_insert(0);
            let key = (br, *o);
            *o += 1;
            let next = vocab.len() as KeywordId;
            kws.push(*vocab.entry(key).or_insert(next));
        }
        kws
    }

    fn lookup_keywords(&self, tree: &Tree) -> Vec<KeywordId> {
        let vocab = self.vocab.read().unwrap();
        let mut occ: HashMap<BinaryBranch, u32> = HashMap::new();
        let mut kws = Vec::with_capacity(tree.len());
        for br in binary_branches(tree) {
            let o = occ.entry(br).or_insert(0);
            let key = (br, *o);
            *o += 1;
            if let Some(&kw) = vocab.get(&key) {
                kws.push(kw);
            }
        }
        kws
    }

    /// Trees in the store (build-time forest plus live inserts; deleted
    /// trees stay stored until a reindex).
    pub fn num_trees(&self) -> usize {
        self.trees.read().unwrap().len()
    }

    pub fn tree(&self, id: u32) -> Tree {
        self.trees.read().unwrap()[id as usize].clone()
    }

    pub fn inverted_index(&self) -> &std::sync::Arc<genie_core::index::InvertedIndex> {
        &self.index
    }

    /// Query over the known branches of `q` (unknown branches match
    /// nothing and are skipped).
    pub fn to_query(&self, q: &Tree) -> Query {
        Query::from_keywords(&self.lookup_keywords(q))
    }
}

impl genie_core::domain::Domain for TreeIndex {
    type Config = ();
    type Item = Tree;
    type QuerySpec = Tree;
    type Response = Vec<TreeHit>;

    fn name() -> &'static str {
        "tree"
    }

    fn create(_config: (), items: Vec<Tree>) -> Self {
        Self::build(items)
    }

    fn index(&self) -> &std::sync::Arc<genie_core::index::InvertedIndex> {
        &self.index
    }

    /// An empty query tree is a typed error; a tree whose branches are
    /// all unknown encodes to a query matching nothing.
    fn encode(&self, spec: &Tree) -> Result<Query, genie_core::model::QueryBuildError> {
        if spec.is_empty() {
            return Err(genie_core::model::QueryBuildError::EmptyQuery);
        }
        Ok(self.to_query(spec))
    }

    /// Decompose one tree exactly like [`TreeIndex::build`] does:
    /// occurrence-tagged binary branches become keywords, unseen
    /// branches extend the vocabulary. An empty tree is a typed error,
    /// mirroring `encode`.
    fn decompose(
        &self,
        item: &Tree,
    ) -> Result<genie_core::model::Object, genie_core::model::QueryBuildError> {
        if item.is_empty() {
            return Err(genie_core::model::QueryBuildError::EmptyQuery);
        }
        let mut vocab = self.vocab.write().unwrap();
        Ok(Object::new(Self::keywords_of(item, &mut vocab)))
    }

    /// Trees must be stored for decode's verification pass; ids are
    /// dense and append-only.
    fn store_item(&self, id: genie_core::model::ObjectId, item: Tree) {
        let mut trees = self.trees.write().unwrap();
        debug_assert_eq!(trees.len(), id as usize, "stable ids arrive dense");
        trees.push(item);
    }

    /// Over-fetch candidates for the verify step (shared-branch counts
    /// only *filter* for tree edit distance).
    fn candidates_for(&self, k: usize) -> usize {
        (k * 8).max(32)
    }

    /// Verify the retrieved candidates with the Zhang–Shasha distance
    /// and keep the top-k (ascending distance, ascending id).
    fn decode(
        &self,
        spec: &Tree,
        hits: Vec<genie_core::topk::TopHit>,
        _audit_threshold: u32,
        _k_candidates: usize,
        k: usize,
    ) -> Vec<TreeHit> {
        let trees = self.trees.read().unwrap();
        let mut verified: Vec<TreeHit> = hits
            .iter()
            .map(|h| TreeHit {
                id: h.id,
                distance: tree_edit_distance(spec, &trees[h.id as usize]),
            })
            .collect();
        verified.sort_unstable_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)));
        verified.truncate(k);
        verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The classic Zhang–Shasha example: f(d(a c(b)) e) vs f(c(d(a b)) e)
    /// has distance 2.
    fn zs_example() -> (Tree, Tree) {
        let mut t1 = Tree::leaf(b'f' as u32);
        let d = t1.add_child(0, b'd' as u32);
        t1.add_child(0, b'e' as u32);
        t1.add_child(d, b'a' as u32);
        let c = t1.add_child(d, b'c' as u32);
        t1.add_child(c, b'b' as u32);

        let mut t2 = Tree::leaf(b'f' as u32);
        let c = t2.add_child(0, b'c' as u32);
        t2.add_child(0, b'e' as u32);
        let d = t2.add_child(c, b'd' as u32);
        t2.add_child(d, b'a' as u32);
        t2.add_child(d, b'b' as u32);
        (t1, t2)
    }

    #[test]
    fn zhang_shasha_classic_example() {
        let (t1, t2) = zs_example();
        assert_eq!(tree_edit_distance(&t1, &t2), 2);
        assert_eq!(tree_edit_distance(&t1, &t1), 0);
        assert_eq!(tree_edit_distance(&t2, &t2), 0);
    }

    #[test]
    fn ted_simple_cases() {
        let a = Tree::leaf(1);
        let b = Tree::leaf(2);
        assert_eq!(tree_edit_distance(&a, &b), 1, "relabel");
        let mut c = Tree::leaf(1);
        c.add_child(0, 3);
        assert_eq!(tree_edit_distance(&a, &c), 1, "insert one node");
        assert_eq!(tree_edit_distance(&c, &a), 1, "delete one node");
    }

    #[test]
    fn binary_branches_capture_structure() {
        // root(a b): branches are (root, a, eps), (a, eps, b), (b, eps, eps)
        let mut t = Tree::leaf(0);
        t.add_child(0, 1);
        t.add_child(0, 2);
        let brs = binary_branches(&t);
        assert_eq!(brs.len(), 3);
        assert_eq!(
            brs[0],
            BinaryBranch {
                label: 0,
                left: 1,
                right: EPSILON
            }
        );
        assert_eq!(
            brs[1],
            BinaryBranch {
                label: 1,
                left: EPSILON,
                right: 2
            }
        );
    }

    #[test]
    fn identical_trees_share_all_branches() {
        let (t1, _) = zs_example();
        assert_eq!(common_branches(&t1, &t1), t1.len() as u32);
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        // random parent-pointer encoding: node i attaches to parent in 0..i
        proptest::collection::vec((0u32..5, 0usize..8), 0..12).prop_map(|spec| {
            let mut t = Tree::leaf(0);
            for (label, ppick) in spec {
                let parent = ppick % t.len();
                t.add_child(parent, label);
            }
            t
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Yang et al.'s theorem: branch-vector L1 distance <= 5 * TED,
        /// i.e. common >= (|T1| + |T2| - 5 ted) / 2.
        #[test]
        fn branch_filter_never_prunes_true_neighbours((a, b) in (arb_tree(), arb_tree())) {
            let ted = tree_edit_distance(&a, &b);
            let common = common_branches(&a, &b);
            let bound = branch_lower_bound(a.len(), b.len(), ted);
            prop_assert!(common >= bound, "common={common} bound={bound} ted={ted}");
        }

        /// TED is a metric on the generated trees.
        #[test]
        fn ted_metric_properties((a, b) in (arb_tree(), arb_tree())) {
            prop_assert_eq!(tree_edit_distance(&a, &a), 0);
            prop_assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
            // size difference is a trivial lower bound
            prop_assert!(tree_edit_distance(&a, &b) >= a.len().abs_diff(b.len()) as u32);
            prop_assert!(tree_edit_distance(&a, &b) <= (a.len() + b.len()) as u32);
        }
    }

    #[test]
    fn end_to_end_tree_search_finds_exact_tree() {
        use genie_core::backend::SearchBackend;
        use genie_core::domain::Domain;
        use genie_core::exec::Engine;
        use gpu_sim::Device;
        use std::sync::Arc;

        let (t1, t2) = zs_example();
        let mut t3 = Tree::leaf(9);
        t3.add_child(0, 9);
        let idx = TreeIndex::build(vec![t1.clone(), t2.clone(), t3]);
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let didx = SearchBackend::upload(&engine, Arc::clone(Domain::index(&idx))).unwrap();
        let q = idx.encode(&t1).unwrap();
        let out = SearchBackend::search_batch(&engine, &didx, &[q], 3);
        let hits = idx.decode(&t1, out.results[0].clone(), out.audit_thresholds[0], 3, 2);
        assert_eq!(hits[0], TreeHit { id: 0, distance: 0 });
        assert_eq!(hits[1], TreeHit { id: 1, distance: 2 });
        assert!(TreeIndex::encode(&idx, &Tree::leaf(1)).is_ok());
    }
}
