//! # genie-sa — shotgun-and-assembly search on GENIE
//!
//! The SA side of the paper (§V): complex structured data is broken into
//! small sub-units ("shotgun"), the sub-units become inverted-index
//! keywords, and the match count between a query's and an object's
//! sub-units either *is* the similarity (documents: binary vector-space
//! inner product) or lower-bounds it (sequences: the n-gram count filter
//! for edit distance), in which case a verification step ("assembly")
//! computes exact distances over the retrieved candidates.
//!
//! * [`ngram`] — ordered n-gram decomposition (Example 5.1) and the
//!   count/edit-distance bound of Theorem 5.1;
//! * [`edit`] — edit distance (full and bounded);
//! * [`verify`] — Algorithm 2 with count, length and early-break filters
//!   plus the Theorem 5.2 exactness certificate;
//! * [`sequence`] — end-to-end sequence kNN under edit distance,
//!   including the adaptive-K loop the paper suggests;
//! * [`document`] — short-document search (Tweets experiment);
//! * [`relational`] — relational tables: discretisation, keyword
//!   encoding and range selections (Adult experiment, Figure 1).

pub mod document;
pub mod edit;
pub mod graph;
pub mod ngram;
pub mod relational;
pub mod sequence;
pub mod tree;
pub mod verify;

pub use document::DocumentIndex;
pub use graph::{Graph, GraphHit, GraphIndex};
pub use relational::{Attribute, Condition, RelationalIndex, RelationalSchema, Value};
pub use sequence::{SequenceIndex, SequenceSearchReport};
pub use tree::{Tree, TreeHit, TreeIndex};
