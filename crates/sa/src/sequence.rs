//! End-to-end sequence similarity search under edit distance
//! (paper §V-A; DBLP experiments of Tables VI & VII).
//!
//! Index: ordered n-grams become keywords through a build-time
//! vocabulary. Query: the query's ordered n-grams are looked up (unknown
//! grams match nothing), GENIE returns the K candidates with the largest
//! shared-gram counts, and [`crate::verify`] assembles the exact top-k.
//! Theorem 5.2 certifies whether the result is provably exact; if not,
//! the adaptive loop re-runs with a doubled K.
//!
//! [`SequenceIndex`] implements [`Domain`]: `encode` maps a query
//! sequence onto its known grams, `candidates_for` over-fetches (the
//! paper's `K ≥ k`), and `decode` runs the verify-and-certify assembly.
//! `is_exact` exposes the Theorem 5.2 certificate, so the facade's
//! generic adaptive loop doubles K exactly like the paper's multi-round
//! strategy.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use genie_core::domain::Domain;
use genie_core::index::{IndexBuilder, InvertedIndex};
use genie_core::model::{KeywordId, Object, ObjectId, Query, QueryBuildError};
use genie_core::topk::TopHit;

use crate::ngram::{ordered_ngrams, OrderedGram};
use crate::verify::{exactness_certificate, verify_candidates, Candidate, VerifiedHit};

/// Result of one sequence query.
#[derive(Debug, Clone)]
pub struct SequenceSearchReport {
    /// Up to k verified hits, ascending edit distance.
    pub hits: Vec<VerifiedHit>,
    /// Theorem 5.2: whether `hits` is provably the true top-k.
    pub certified: bool,
    /// K used for the candidate retrieval that produced `hits`.
    pub k_candidates: usize,
}

/// An n-gram inverted index over a corpus of sequences.
///
/// The stored sequences and the gram vocabulary sit behind locks so
/// live inserts ([`Domain::decompose`] / [`Domain::store_item`]) can
/// grow them under `&self`; the store only ever appends (stable ids are
/// dense and never reused) and existing vocabulary entries are never
/// reassigned.
pub struct SequenceIndex {
    seqs: RwLock<Vec<Vec<u8>>>,
    n: usize,
    vocab: RwLock<HashMap<OrderedGram, KeywordId>>,
    index: Arc<InvertedIndex>,
}

impl SequenceIndex {
    /// Decompose and index `seqs` with length-`n` sliding windows.
    pub fn build(seqs: Vec<Vec<u8>>, n: usize) -> Self {
        let mut vocab: HashMap<OrderedGram, KeywordId> = HashMap::new();
        let mut builder = IndexBuilder::new();
        for seq in &seqs {
            let kws: Vec<KeywordId> = ordered_ngrams(seq, n)
                .into_iter()
                .map(|g| {
                    let next = vocab.len() as KeywordId;
                    *vocab.entry(g).or_insert(next)
                })
                .collect();
            builder.add_object(&Object::new(kws));
        }
        Self {
            seqs: RwLock::new(seqs),
            n,
            vocab: RwLock::new(vocab),
            index: Arc::new(builder.build(None)),
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Sequences in the store (build-time corpus plus live inserts;
    /// deleted sequences stay stored until a reindex).
    pub fn num_sequences(&self) -> usize {
        self.seqs.read().unwrap().len()
    }

    pub fn sequence(&self, id: u32) -> Vec<u8> {
        self.seqs.read().unwrap()[id as usize].clone()
    }

    pub fn inverted_index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Query over the grams of `q` that exist in the vocabulary.
    pub fn to_query(&self, q: &[u8]) -> Query {
        let vocab = self.vocab.read().unwrap();
        let kws: Vec<KeywordId> = ordered_ngrams(q, self.n)
            .into_iter()
            .filter_map(|g| vocab.get(&g).copied())
            .collect();
        Query::from_keywords(&kws)
    }
}

impl Domain for SequenceIndex {
    /// n-gram length.
    type Config = usize;
    type Item = Vec<u8>;
    type QuerySpec = Vec<u8>;
    type Response = SequenceSearchReport;

    fn name() -> &'static str {
        "sequence"
    }

    fn create(n: usize, items: Vec<Vec<u8>>) -> Self {
        Self::build(items, n)
    }

    fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// An empty query sequence is a typed error; a non-empty sequence
    /// whose grams are all unknown encodes to a query matching nothing
    /// (the count filter then proves nothing, so the report is
    /// uncertified).
    fn encode(&self, spec: &Vec<u8>) -> Result<Query, QueryBuildError> {
        if spec.is_empty() {
            return Err(QueryBuildError::EmptyQuery);
        }
        Ok(self.to_query(spec))
    }

    /// Decompose one sequence exactly like [`SequenceIndex::build`]
    /// does: its ordered n-grams become keywords, unseen grams extend
    /// the vocabulary. A sequence shorter than `n` has no grams and
    /// simply never matches, as at build time.
    fn decompose(&self, item: &Vec<u8>) -> Result<Object, QueryBuildError> {
        let mut vocab = self.vocab.write().unwrap();
        let kws: Vec<KeywordId> = ordered_ngrams(item, self.n)
            .into_iter()
            .map(|g| {
                let next = vocab.len() as KeywordId;
                *vocab.entry(g).or_insert(next)
            })
            .collect();
        Ok(Object::new(kws))
    }

    /// Sequences must be stored for decode's verification pass; ids are
    /// dense and append-only.
    fn store_item(&self, id: ObjectId, item: Vec<u8>) {
        let mut seqs = self.seqs.write().unwrap();
        debug_assert_eq!(seqs.len(), id as usize, "stable ids arrive dense");
        seqs.push(item);
    }

    /// The paper retrieves `K ≥ k` candidates and verifies; default to
    /// the K = 32 the DBLP experiments use, scaled up for larger `k`.
    fn candidates_for(&self, k: usize) -> usize {
        (k * 8).max(32)
    }

    fn decode(
        &self,
        spec: &Vec<u8>,
        hits: Vec<TopHit>,
        _audit_threshold: u32,
        k_candidates: usize,
        k: usize,
    ) -> SequenceSearchReport {
        let candidates: Vec<Candidate> = hits
            .iter()
            .map(|h| Candidate {
                id: h.id,
                count: h.count,
            })
            .collect();
        let seqs = self.seqs.read().unwrap();
        let (verified, _) = verify_candidates(
            spec,
            &candidates,
            |id| seqs[id as usize].as_slice(),
            self.n,
            k,
        );
        // c_K: the K-th candidate's count, or 0 when GENIE returned
        // everything it had (exhaustive list)
        let c_k_th = if candidates.len() == k_candidates {
            candidates.last().map(|c| c.count).unwrap_or(0)
        } else {
            0
        };
        let certified = match verified.last() {
            Some(worst) => exactness_certificate(spec.len(), c_k_th, worst.distance, self.n),
            // no candidate shared a single gram: the count filter
            // says nothing about the true top-k, so not certified
            // (unless there is no data at all; the store only grows, so
            // a collection *emptied* by deletes stays uncertified here
            // while a true rebuild would certify its empty answer)
            None => seqs.is_empty(),
        };
        SequenceSearchReport {
            hits: verified,
            certified,
            k_candidates,
        }
    }

    /// Theorem 5.2's exactness certificate drives the adaptive loop.
    fn is_exact(response: &SequenceSearchReport) -> bool {
        response.certified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::edit_distance;
    use genie_core::backend::SearchBackend;
    use genie_core::exec::Engine;
    use gpu_sim::Device;

    fn corpus() -> Vec<Vec<u8>> {
        [
            "approximate string matching",
            "approximate string watching",
            "exact string matching",
            "inverted index framework",
            "generic inverted index",
            "similarity search on gpu",
            "parallel similarity search",
            "sequence similarity search",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    fn engine() -> Engine {
        Engine::new(Arc::new(Device::with_defaults()))
    }

    /// Direct path: encode, one backend batch at an explicit K, decode.
    fn search(
        idx: &SequenceIndex,
        backend: &dyn SearchBackend,
        queries: &[Vec<u8>],
        k_candidates: usize,
        k: usize,
    ) -> Vec<SequenceSearchReport> {
        let bindex = backend.upload(Arc::clone(Domain::index(idx))).unwrap();
        let qs: Vec<Query> = queries.iter().map(|q| idx.to_query(q)).collect();
        let out = backend.search_batch(&bindex, &qs, k_candidates);
        queries
            .iter()
            .zip(out.results.into_iter().zip(out.audit_thresholds))
            .map(|(q, (hits, at))| idx.decode(q, hits, at, k_candidates, k))
            .collect()
    }

    #[test]
    fn exact_query_returns_itself_certified() {
        let idx = SequenceIndex::build(corpus(), 3);
        let eng = engine();
        let q = vec![b"approximate string matching".to_vec()];
        let reports = search(&idx, &eng, &q, 8, 1);
        assert_eq!(reports[0].hits[0].id, 0);
        assert_eq!(reports[0].hits[0].distance, 0);
        assert!(reports[0].certified);
        assert!(SequenceIndex::is_exact(&reports[0]));
    }

    #[test]
    fn near_query_finds_nearest_sequence() {
        let idx = SequenceIndex::build(corpus(), 3);
        let eng = engine();
        // one substitution away from sequence 0
        let q = vec![b"approximate strinG matching".to_vec()];
        let reports = search(&idx, &eng, &q, 8, 2);
        assert_eq!(reports[0].hits[0].id, 0);
        assert_eq!(reports[0].hits[0].distance, 1);
        // the second hit is the "watching" variant
        assert_eq!(reports[0].hits[1].id, 1);
    }

    #[test]
    fn results_match_brute_force_when_certified() {
        let data = corpus();
        let idx = SequenceIndex::build(data.clone(), 3);
        let eng = engine();
        let queries = vec![
            b"generic inverted indexes".to_vec(),
            b"similarity search on cpu".to_vec(),
        ];
        let reports = search(&idx, &eng, &queries, data.len(), 1);
        for (q, rep) in queries.iter().zip(&reports) {
            let best = data
                .iter()
                .map(|s| edit_distance(q, s) as u32)
                .min()
                .unwrap();
            assert!(rep.certified, "full-K retrieval must certify");
            assert_eq!(rep.hits[0].distance, best);
        }
    }

    #[test]
    fn unknown_grams_yield_empty_uncertified_results() {
        let idx = SequenceIndex::build(corpus(), 3);
        let eng = engine();
        let q = vec![b"@@@@@@@@".to_vec()];
        let reports = search(&idx, &eng, &q, 4, 1);
        assert!(reports[0].hits.is_empty());
        assert!(
            !reports[0].certified,
            "no shared grams means the filter proves nothing"
        );
        // but an empty query sequence is a typed encode error
        assert_eq!(idx.encode(&vec![]), Err(QueryBuildError::EmptyQuery));
    }

    #[test]
    fn candidate_sizing_over_fetches() {
        let idx = SequenceIndex::build(corpus(), 3);
        assert_eq!(idx.candidates_for(1), 32);
        assert_eq!(idx.candidates_for(10), 80);
    }
}
