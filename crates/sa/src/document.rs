//! Short-document search (paper §V-B; Tweets experiment).
//!
//! Documents are bags of words reduced to *binary* vectors (a word is in
//! the document or not); the match count between a query document and an
//! object document is exactly the inner product of their binary vectors
//! — i.e. the number of shared distinct words — so GENIE's top-k *is*
//! the vector-space top-k, no verification needed.

use std::collections::HashMap;
use std::sync::Arc;

use genie_core::backend::{BackendIndex, SearchBackend};
use genie_core::index::{IndexBuilder, InvertedIndex};
use genie_core::model::{KeywordId, Object, Query};
use genie_core::topk::TopHit;

/// A word-level inverted index over a corpus of short documents.
pub struct DocumentIndex {
    vocab: HashMap<String, KeywordId>,
    index: Arc<InvertedIndex>,
    num_docs: usize,
}

impl DocumentIndex {
    /// Index `docs`, each a pre-tokenised word list (stop words should
    /// already be removed, as the paper does for Tweets). Duplicate
    /// words within a document collapse to one keyword (binary model).
    pub fn build<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let mut vocab: HashMap<String, KeywordId> = HashMap::new();
        let mut builder = IndexBuilder::new();
        for doc in docs {
            let mut kws: Vec<KeywordId> = doc
                .iter()
                .map(|w| {
                    let next = vocab.len() as KeywordId;
                    *vocab.entry(w.as_ref().to_owned()).or_insert(next)
                })
                .collect();
            kws.sort_unstable();
            kws.dedup();
            builder.add_object(&Object::new(kws));
        }
        Self {
            vocab,
            index: Arc::new(builder.build(None)),
            num_docs: docs.len(),
        }
    }

    pub fn num_documents(&self) -> usize {
        self.num_docs
    }

    pub fn vocabulary_size(&self) -> usize {
        self.vocab.len()
    }

    pub fn inverted_index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Query over the distinct known words of `doc`.
    pub fn to_query<S: AsRef<str>>(&self, doc: &[S]) -> Query {
        let mut kws: Vec<KeywordId> = doc
            .iter()
            .filter_map(|w| self.vocab.get(w.as_ref()).copied())
            .collect();
        kws.sort_unstable();
        kws.dedup();
        Query::from_keywords(&kws)
    }

    pub fn upload(&self, backend: &dyn SearchBackend) -> Result<BackendIndex, String> {
        backend.upload(Arc::clone(&self.index))
    }

    /// Batched top-k by shared-word count (= binary inner product).
    pub fn search<S: AsRef<str>>(
        &self,
        backend: &dyn SearchBackend,
        bindex: &BackendIndex,
        queries: &[Vec<S>],
        k: usize,
    ) -> Vec<Vec<TopHit>> {
        let qs: Vec<Query> = queries.iter().map(|q| self.to_query(q)).collect();
        backend.search_batch(bindex, &qs, k).results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::exec::Engine;
    use gpu_sim::Device;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        vec![
            toks("singapore food joint laksa"),
            toks("best restaurant singapore city"),
            toks("city marathon results"),
            toks("food review laksa restaurant"),
            toks("gpu similarity search"),
        ]
    }

    #[test]
    fn top_hit_shares_most_words() {
        let idx = DocumentIndex::build(&corpus());
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let didx = idx.upload(&eng).unwrap();
        let results = idx.search(&eng, &didx, &[toks("laksa food singapore")], 3);
        assert_eq!(results[0][0].id, 0, "doc 0 shares all three words");
        assert_eq!(results[0][0].count, 3);
    }

    #[test]
    fn duplicates_count_once_binary_model() {
        let idx = DocumentIndex::build(&corpus());
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let didx = eng.upload(Arc::clone(idx.inverted_index())).unwrap();
        let q = idx.to_query(&toks("laksa laksa laksa"));
        assert_eq!(q.items.len(), 1, "query words dedupe");
        let out = eng.search(&didx, &[q], 5);
        for hit in &out.results[0] {
            assert_eq!(hit.count, 1, "binary vectors: one shared word = 1");
        }
    }

    #[test]
    fn unknown_words_are_ignored() {
        let idx = DocumentIndex::build(&corpus());
        let q = idx.to_query(&toks("zzz unknown laksa"));
        assert_eq!(q.items.len(), 1);
    }

    #[test]
    fn match_count_is_inner_product() {
        let docs = corpus();
        let idx = DocumentIndex::build(&docs);
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let didx = idx.upload(&eng).unwrap();
        let query = toks("restaurant city singapore");
        let results = idx.search(&eng, &didx, std::slice::from_ref(&query), 5);
        // brute-force binary inner product
        use std::collections::HashSet;
        let qset: HashSet<&str> = query.iter().map(|s| s.as_str()).collect();
        for hit in &results[0] {
            let dset: HashSet<&str> = docs[hit.id as usize].iter().map(|s| s.as_str()).collect();
            let ip = qset.intersection(&dset).count() as u32;
            assert_eq!(hit.count, ip, "doc {}", hit.id);
        }
        assert_eq!(results[0][0].id, 1);
        assert_eq!(results[0][0].count, 3);
    }
}
