//! Short-document search (paper §V-B; Tweets experiment).
//!
//! Documents are bags of words reduced to *binary* vectors (a word is in
//! the document or not); the match count between a query document and an
//! object document is exactly the inner product of their binary vectors
//! — i.e. the number of shared distinct words — so GENIE's top-k *is*
//! the vector-space top-k, no verification needed.
//!
//! [`DocumentIndex`] implements [`Domain`], so a corpus is served
//! through the typed facade (`GenieDb::create_collection::<DocumentIndex>`)
//! like every other domain; the direct path is
//! [`Domain::encode`] → [`SearchBackend::search_batch`](genie_core::backend::SearchBackend::search_batch)
//! → [`Domain::decode`].

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use genie_core::domain::{Domain, MatchHits};
use genie_core::index::{IndexBuilder, InvertedIndex};
use genie_core::model::{KeywordId, Object, Query, QueryBuildError};
use genie_core::topk::TopHit;

/// A word-level inverted index over a corpus of short documents.
///
/// The vocabulary sits behind a lock so live inserts
/// ([`Domain::decompose`]) can coin keyword ids for unseen words under
/// `&self`; existing entries are never reassigned, so previously
/// decomposed objects keep their meaning.
pub struct DocumentIndex {
    vocab: RwLock<HashMap<String, KeywordId>>,
    index: Arc<InvertedIndex>,
    num_docs: usize,
}

impl DocumentIndex {
    /// Index `docs`, each a pre-tokenised word list (stop words should
    /// already be removed, as the paper does for Tweets). Duplicate
    /// words within a document collapse to one keyword (binary model).
    pub fn build<S: AsRef<str>>(docs: &[Vec<S>]) -> Self {
        let mut vocab: HashMap<String, KeywordId> = HashMap::new();
        let mut builder = IndexBuilder::new();
        for doc in docs {
            let mut kws: Vec<KeywordId> = doc
                .iter()
                .map(|w| {
                    let next = vocab.len() as KeywordId;
                    *vocab.entry(w.as_ref().to_owned()).or_insert(next)
                })
                .collect();
            kws.sort_unstable();
            kws.dedup();
            builder.add_object(&Object::new(kws));
        }
        Self {
            vocab: RwLock::new(vocab),
            index: Arc::new(builder.build(None)),
            num_docs: docs.len(),
        }
    }

    /// Documents indexed at build time. Live inserts/deletes are
    /// tracked by the serving layer (`Collection::len`), not here.
    pub fn num_documents(&self) -> usize {
        self.num_docs
    }

    pub fn vocabulary_size(&self) -> usize {
        self.vocab.read().unwrap().len()
    }

    pub fn inverted_index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Query over the distinct known words of `doc` (unknown words
    /// match nothing and are skipped).
    pub fn to_query<S: AsRef<str>>(&self, doc: &[S]) -> Query {
        let vocab = self.vocab.read().unwrap();
        let mut kws: Vec<KeywordId> = doc
            .iter()
            .filter_map(|w| vocab.get(w.as_ref()).copied())
            .collect();
        kws.sort_unstable();
        kws.dedup();
        Query::from_keywords(&kws)
    }
}

impl Domain for DocumentIndex {
    type Config = ();
    type Item = Vec<String>;
    type QuerySpec = Vec<String>;
    type Response = MatchHits;

    fn name() -> &'static str {
        "document"
    }

    fn create(_config: (), items: Vec<Vec<String>>) -> Self {
        Self::build(&items)
    }

    fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// A query with no words at all is a typed error; words outside the
    /// vocabulary are legal and simply match nothing.
    fn encode(&self, spec: &Vec<String>) -> Result<Query, QueryBuildError> {
        if spec.is_empty() {
            return Err(QueryBuildError::EmptyQuery);
        }
        Ok(self.to_query(spec))
    }

    /// Decompose one document exactly like [`DocumentIndex::build`]
    /// does: unseen words extend the vocabulary (first-seen order),
    /// duplicates collapse to one keyword (binary model). An empty
    /// document is legal here, as it is at build time — it simply
    /// matches nothing.
    fn decompose(&self, item: &Vec<String>) -> Result<Object, QueryBuildError> {
        let mut vocab = self.vocab.write().unwrap();
        let mut kws: Vec<KeywordId> = item
            .iter()
            .map(|w| {
                let next = vocab.len() as KeywordId;
                *vocab.entry(w.clone()).or_insert(next)
            })
            .collect();
        kws.sort_unstable();
        kws.dedup();
        Ok(Object::new(kws))
    }

    fn decode(
        &self,
        _spec: &Vec<String>,
        hits: Vec<TopHit>,
        audit_threshold: u32,
        _k_candidates: usize,
        k: usize,
    ) -> MatchHits {
        let mut hits = hits;
        hits.truncate(k);
        MatchHits {
            hits,
            audit_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::backend::SearchBackend;
    use genie_core::exec::Engine;
    use gpu_sim::Device;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        vec![
            toks("singapore food joint laksa"),
            toks("best restaurant singapore city"),
            toks("city marathon results"),
            toks("food review laksa restaurant"),
            toks("gpu similarity search"),
        ]
    }

    /// The direct (facade-free) path every domain test drives: encode,
    /// one backend batch, decode.
    fn search(
        idx: &DocumentIndex,
        backend: &dyn SearchBackend,
        queries: &[Vec<String>],
        k: usize,
    ) -> Vec<MatchHits> {
        let bindex = backend.upload(Arc::clone(Domain::index(idx))).unwrap();
        let qs: Vec<Query> = queries.iter().map(|q| idx.encode(q).unwrap()).collect();
        let out = backend.search_batch(&bindex, &qs, idx.candidates_for(k));
        queries
            .iter()
            .zip(out.results.into_iter().zip(out.audit_thresholds))
            .map(|(q, (hits, at))| idx.decode(q, hits, at, idx.candidates_for(k), k))
            .collect()
    }

    #[test]
    fn top_hit_shares_most_words() {
        let idx = DocumentIndex::build(&corpus());
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let results = search(&idx, &eng, &[toks("laksa food singapore")], 3);
        assert_eq!(results[0].hits[0].id, 0, "doc 0 shares all three words");
        assert_eq!(results[0].hits[0].count, 3);
    }

    #[test]
    fn duplicates_count_once_binary_model() {
        let idx = DocumentIndex::build(&corpus());
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let q = idx.encode(&toks("laksa laksa laksa")).unwrap();
        assert_eq!(q.items.len(), 1, "query words dedupe");
        let results = search(&idx, &eng, &[toks("laksa laksa laksa")], 5);
        for hit in &results[0].hits {
            assert_eq!(hit.count, 1, "binary vectors: one shared word = 1");
        }
    }

    #[test]
    fn unknown_words_are_ignored_but_empty_specs_error() {
        let idx = DocumentIndex::build(&corpus());
        let q = idx.encode(&toks("zzz unknown laksa")).unwrap();
        assert_eq!(q.items.len(), 1);
        assert_eq!(idx.encode(&vec![]), Err(QueryBuildError::EmptyQuery));
    }

    #[test]
    fn match_count_is_inner_product() {
        let docs = corpus();
        let idx = DocumentIndex::build(&docs);
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let query = toks("restaurant city singapore");
        let results = search(&idx, &eng, std::slice::from_ref(&query), 5);
        // brute-force binary inner product
        use std::collections::HashSet;
        let qset: HashSet<&str> = query.iter().map(|s| s.as_str()).collect();
        for hit in &results[0].hits {
            let dset: HashSet<&str> = docs[hit.id as usize].iter().map(|s| s.as_str()).collect();
            let ip = qset.intersection(&dset).count() as u32;
            assert_eq!(hit.count, ip, "doc {}", hit.id);
        }
        assert_eq!(results[0].hits[0].id, 1);
        assert_eq!(results[0].hits[0].count, 3);
        // Theorem 3.1: AT - 1 is the k-th count when k objects matched
        assert!(results[0].audit_threshold >= 1);
    }
}
