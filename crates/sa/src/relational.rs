//! Relational-table search (paper §II-A Figure 1, §V-C; Adult
//! experiment).
//!
//! Every `(attribute, value)` pair is a keyword: categorical attributes
//! contribute their category ids directly, continuous attributes are
//! discretised into equal-width buckets (the paper uses 1024 for Adult).
//! A range-selection query becomes one query item per attribute
//! condition — a contiguous keyword range — and GENIE's top-k by match
//! count is a top-k selection under the "number of satisfied conditions"
//! ranking, useful for tables mixing categorical and numerical columns.

use std::sync::Arc;

use genie_core::backend::{BackendIndex, SearchBackend};
use genie_core::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
use genie_core::model::{KeywordId, Object, Query, QueryItem};
use genie_core::topk::TopHit;

/// Schema of one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attribute {
    /// Categorical with ids `0..cardinality`.
    Categorical { cardinality: u32 },
    /// Continuous, discretised into `buckets` equal-width intervals over
    /// `[min, max]`.
    Numeric { min: f64, max: f64, buckets: u32 },
}

impl Attribute {
    fn domain(&self) -> u32 {
        match *self {
            Attribute::Categorical { cardinality } => cardinality,
            Attribute::Numeric { buckets, .. } => buckets,
        }
    }
}

/// One cell of a row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Cat(u32),
    Num(f64),
}

/// A query condition on one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Categorical equality.
    CatEq { attr: usize, value: u32 },
    /// Numeric range `[lo, hi]` in attribute units.
    NumRange { attr: usize, lo: f64, hi: f64 },
    /// Range directly in bucket space `[lo, hi]` (what the Adult
    /// experiment's `[v−50, v+50]` discretised windows are).
    BucketRange { attr: usize, lo: u32, hi: u32 },
}

/// A relational table indexed for GENIE.
pub struct RelationalIndex {
    attrs: Vec<Attribute>,
    /// Keyword-space offset of each attribute (prefix sums of domains).
    offsets: Vec<u32>,
    index: Arc<InvertedIndex>,
    num_rows: usize,
}

impl RelationalIndex {
    /// Discretise and index `rows` under `attrs`. `load_balance` caps
    /// postings-list length — essential for low-cardinality attributes
    /// (the paper's Fig. 12 experiment).
    pub fn build(
        attrs: Vec<Attribute>,
        rows: &[Vec<Value>],
        load_balance: Option<LoadBalanceConfig>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(attrs.len());
        let mut acc = 0u32;
        for a in &attrs {
            offsets.push(acc);
            acc += a.domain();
        }
        let mut builder = IndexBuilder::new();
        let this = Self {
            attrs,
            offsets,
            index: Arc::new(IndexBuilder::new().build(None)), // replaced below
            num_rows: rows.len(),
        };
        for row in rows {
            builder.add_object(&this.encode_row(row));
        }
        Self {
            index: Arc::new(builder.build(load_balance)),
            ..this
        }
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_attributes(&self) -> usize {
        self.attrs.len()
    }

    pub fn inverted_index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Bucket id of `value` under attribute `attr`.
    pub fn bucket_of(&self, attr: usize, value: Value) -> u32 {
        match (self.attrs[attr], value) {
            (Attribute::Categorical { cardinality }, Value::Cat(c)) => {
                assert!(c < cardinality, "category {c} out of range");
                c
            }
            (Attribute::Numeric { min, max, buckets }, Value::Num(v)) => {
                let span = (max - min).max(f64::MIN_POSITIVE);
                let frac = ((v - min) / span).clamp(0.0, 1.0);
                ((frac * buckets as f64) as u32).min(buckets - 1)
            }
            (a, v) => panic!("value {v:?} does not match attribute {a:?}"),
        }
    }

    /// Keyword of `(attr, bucket)`.
    pub fn keyword(&self, attr: usize, bucket: u32) -> KeywordId {
        debug_assert!(bucket < self.attrs[attr].domain());
        self.offsets[attr] + bucket
    }

    /// Encode a row as a match-count object (Example 2.1).
    pub fn encode_row(&self, row: &[Value]) -> Object {
        assert_eq!(row.len(), self.attrs.len(), "row arity mismatch");
        Object::new(
            row.iter()
                .enumerate()
                .map(|(a, &v)| self.keyword(a, self.bucket_of(a, v)))
                .collect(),
        )
    }

    /// Encode a selection query: one item per condition.
    pub fn encode_query(&self, conditions: &[Condition]) -> Query {
        let items = conditions
            .iter()
            .map(|c| match *c {
                Condition::CatEq { attr, value } => {
                    QueryItem::exact(self.keyword(attr, self.bucket_of(attr, Value::Cat(value))))
                }
                Condition::NumRange { attr, lo, hi } => {
                    let bl = self.bucket_of(attr, Value::Num(lo));
                    let bh = self.bucket_of(attr, Value::Num(hi));
                    QueryItem::range(self.keyword(attr, bl), self.keyword(attr, bh))
                }
                Condition::BucketRange { attr, lo, hi } => {
                    let max = self.attrs[attr].domain() - 1;
                    QueryItem::range(
                        self.keyword(attr, lo.min(max)),
                        self.keyword(attr, hi.min(max)),
                    )
                }
            })
            .collect();
        Query::new(items)
    }

    pub fn upload(&self, backend: &dyn SearchBackend) -> Result<BackendIndex, String> {
        backend.upload(Arc::clone(&self.index))
    }

    /// Batched top-k selection: rows ranked by how many conditions they
    /// satisfy.
    pub fn search(
        &self,
        backend: &dyn SearchBackend,
        bindex: &BackendIndex,
        queries: &[Vec<Condition>],
        k: usize,
    ) -> Vec<Vec<TopHit>> {
        let qs: Vec<Query> = queries.iter().map(|q| self.encode_query(q)).collect();
        backend.search_batch(bindex, &qs, k).results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::exec::Engine;
    use gpu_sim::Device;

    /// The Figure 1 table: attributes A, B, C with small integer values.
    fn fig1() -> RelationalIndex {
        let attrs = vec![
            Attribute::Categorical { cardinality: 4 },
            Attribute::Categorical { cardinality: 4 },
            Attribute::Categorical { cardinality: 4 },
        ];
        let rows = vec![
            vec![Value::Cat(1), Value::Cat(2), Value::Cat(1)], // O1
            vec![Value::Cat(2), Value::Cat(1), Value::Cat(3)], // O2
            vec![Value::Cat(1), Value::Cat(3), Value::Cat(2)], // O3
        ];
        RelationalIndex::build(attrs, &rows, None)
    }

    #[test]
    fn figure_1_query_ranks_o2_first() {
        let rel = fig1();
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let didx = rel.upload(&eng).unwrap();
        // Q1: 1 <= A <= 2, B = 1, 2 <= C <= 3
        let q = vec![
            Condition::BucketRange {
                attr: 0,
                lo: 1,
                hi: 2,
            },
            Condition::CatEq { attr: 1, value: 1 },
            Condition::BucketRange {
                attr: 2,
                lo: 2,
                hi: 3,
            },
        ];
        let results = rel.search(&eng, &didx, &[q], 3);
        assert_eq!(results[0][0].id, 1, "O2 satisfies all three conditions");
        assert_eq!(results[0][0].count, 3);
        // O3 satisfies A and C; O1 satisfies only A
        assert_eq!(results[0][1], TopHit { id: 2, count: 2 });
        assert_eq!(results[0][2], TopHit { id: 0, count: 1 });
    }

    #[test]
    fn numeric_discretisation_clamps_and_buckets() {
        let attrs = vec![Attribute::Numeric {
            min: 0.0,
            max: 100.0,
            buckets: 10,
        }];
        let rows = vec![
            vec![Value::Num(5.0)],
            vec![Value::Num(95.0)],
            vec![Value::Num(-3.0)],
            vec![Value::Num(120.0)],
        ];
        let rel = RelationalIndex::build(attrs, &rows, None);
        assert_eq!(rel.bucket_of(0, Value::Num(5.0)), 0);
        assert_eq!(rel.bucket_of(0, Value::Num(95.0)), 9);
        assert_eq!(rel.bucket_of(0, Value::Num(-3.0)), 0, "clamps below");
        assert_eq!(rel.bucket_of(0, Value::Num(120.0)), 9, "clamps above");
    }

    #[test]
    fn numeric_range_query_hits_rows_in_window() {
        let attrs = vec![
            Attribute::Numeric {
                min: 0.0,
                max: 100.0,
                buckets: 100,
            },
            Attribute::Categorical { cardinality: 2 },
        ];
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Num(i as f64 * 2.0), Value::Cat(i % 2)])
            .collect();
        let rel = RelationalIndex::build(attrs, &rows, None);
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let didx = rel.upload(&eng).unwrap();
        let q = vec![
            Condition::NumRange {
                attr: 0,
                lo: 10.0,
                hi: 20.0,
            },
            Condition::CatEq { attr: 1, value: 0 },
        ];
        let results = rel.search(&eng, &didx, &[q], 5);
        // rows with value in [10,20]: ids 5..=10; among them even ids have
        // Cat 0 -> count 2
        let top = &results[0][0];
        assert_eq!(top.count, 2);
        assert!(top.id.is_multiple_of(2) && (5..=10).contains(&top.id));
    }

    #[test]
    fn keyword_spaces_of_attributes_do_not_overlap() {
        let rel = fig1();
        assert_eq!(rel.keyword(0, 3), 3);
        assert_eq!(rel.keyword(1, 0), 4);
        assert_eq!(rel.keyword(2, 0), 8);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_is_rejected() {
        let rel = fig1();
        rel.encode_row(&[Value::Cat(1)]);
    }
}
