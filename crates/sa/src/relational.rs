//! Relational-table search (paper §II-A Figure 1, §V-C; Adult
//! experiment).
//!
//! Every `(attribute, value)` pair is a keyword: categorical attributes
//! contribute their category ids directly, continuous attributes are
//! discretised into equal-width buckets (the paper uses 1024 for Adult).
//! A range-selection query becomes one query item per attribute
//! condition — a contiguous keyword range — and GENIE's top-k by match
//! count is a top-k selection under the "number of satisfied conditions"
//! ranking, useful for tables mixing categorical and numerical columns.
//!
//! [`RelationalIndex`] implements [`Domain`]; its `encode` validates
//! conditions up front — unknown attributes, out-of-cardinality
//! categories, NaN/infinite numeric bounds and inverted ranges are typed
//! [`QueryBuildError`]s instead of panics inside the encoding maths.

use std::sync::Arc;

use genie_core::domain::{Domain, MatchHits};
use genie_core::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
use genie_core::model::{KeywordId, Object, Query, QueryBuildError, QueryItem};
use genie_core::topk::TopHit;

/// Schema of one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attribute {
    /// Categorical with ids `0..cardinality`.
    Categorical { cardinality: u32 },
    /// Continuous, discretised into `buckets` equal-width intervals over
    /// `[min, max]`.
    Numeric { min: f64, max: f64, buckets: u32 },
}

impl Attribute {
    fn domain(&self) -> u32 {
        match *self {
            Attribute::Categorical { cardinality } => cardinality,
            Attribute::Numeric { buckets, .. } => buckets,
        }
    }
}

/// One cell of a row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Cat(u32),
    Num(f64),
}

/// A query condition on one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Categorical equality.
    CatEq { attr: usize, value: u32 },
    /// Numeric range `[lo, hi]` in attribute units.
    NumRange { attr: usize, lo: f64, hi: f64 },
    /// Range directly in bucket space `[lo, hi]` (what the Adult
    /// experiment's `[v−50, v+50]` discretised windows are). Clamped
    /// into the attribute's bucket domain, window-style.
    BucketRange { attr: usize, lo: u32, hi: u32 },
}

/// The schema a relational collection is created with: the attribute
/// list plus the optional postings-list length cap.
#[derive(Debug, Clone, Default)]
pub struct RelationalSchema {
    pub attrs: Vec<Attribute>,
    /// Caps postings-list length — essential for low-cardinality
    /// attributes (the paper's Fig. 12 experiment).
    pub load_balance: Option<LoadBalanceConfig>,
}

/// A relational table indexed for GENIE.
pub struct RelationalIndex {
    attrs: Vec<Attribute>,
    /// Keyword-space offset of each attribute (prefix sums of domains).
    offsets: Vec<u32>,
    index: Arc<InvertedIndex>,
    num_rows: usize,
}

impl RelationalIndex {
    /// Discretise and index `rows` under `attrs`. `load_balance` caps
    /// postings-list length.
    pub fn build(
        attrs: Vec<Attribute>,
        rows: &[Vec<Value>],
        load_balance: Option<LoadBalanceConfig>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(attrs.len());
        let mut acc = 0u32;
        for a in &attrs {
            offsets.push(acc);
            acc += a.domain();
        }
        let mut builder = IndexBuilder::new();
        let this = Self {
            attrs,
            offsets,
            index: Arc::new(IndexBuilder::new().build(None)), // replaced below
            num_rows: rows.len(),
        };
        for row in rows {
            builder.add_object(&this.encode_row(row));
        }
        Self {
            index: Arc::new(builder.build(load_balance)),
            ..this
        }
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_attributes(&self) -> usize {
        self.attrs.len()
    }

    pub fn inverted_index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// Bucket id of `value` under attribute `attr`.
    pub fn bucket_of(&self, attr: usize, value: Value) -> u32 {
        match (self.attrs[attr], value) {
            (Attribute::Categorical { cardinality }, Value::Cat(c)) => {
                assert!(c < cardinality, "category {c} out of range");
                c
            }
            (Attribute::Numeric { min, max, buckets }, Value::Num(v)) => {
                let span = (max - min).max(f64::MIN_POSITIVE);
                let frac = ((v - min) / span).clamp(0.0, 1.0);
                ((frac * buckets as f64) as u32).min(buckets - 1)
            }
            (a, v) => panic!("value {v:?} does not match attribute {a:?}"),
        }
    }

    /// Keyword of `(attr, bucket)`.
    pub fn keyword(&self, attr: usize, bucket: u32) -> KeywordId {
        debug_assert!(bucket < self.attrs[attr].domain());
        self.offsets[attr] + bucket
    }

    /// Encode a row as a match-count object (Example 2.1).
    pub fn encode_row(&self, row: &[Value]) -> Object {
        assert_eq!(row.len(), self.attrs.len(), "row arity mismatch");
        Object::new(
            row.iter()
                .enumerate()
                .map(|(a, &v)| self.keyword(a, self.bucket_of(a, v)))
                .collect(),
        )
    }

    /// The attribute behind condition index `attr`, validated.
    fn attribute(&self, attr: usize) -> Result<Attribute, QueryBuildError> {
        self.attrs
            .get(attr)
            .copied()
            .ok_or(QueryBuildError::UnknownAttribute {
                attr,
                num_attributes: self.attrs.len(),
            })
    }

    /// Encode one validated condition into a query item.
    fn encode_condition(&self, c: &Condition) -> Result<QueryItem, QueryBuildError> {
        match *c {
            Condition::CatEq { attr, value } => {
                let Attribute::Categorical { cardinality } = self.attribute(attr)? else {
                    return Err(QueryBuildError::TypeMismatch {
                        attr,
                        expected: "categorical",
                    });
                };
                if value >= cardinality {
                    return Err(QueryBuildError::ValueOutOfRange {
                        attr,
                        value,
                        cardinality,
                    });
                }
                Ok(QueryItem::exact(self.keyword(attr, value)))
            }
            Condition::NumRange { attr, lo, hi } => {
                if !matches!(self.attribute(attr)?, Attribute::Numeric { .. }) {
                    return Err(QueryBuildError::TypeMismatch {
                        attr,
                        expected: "numeric",
                    });
                }
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(QueryBuildError::NonFinite {
                        what: "numeric range bound",
                    });
                }
                if lo > hi {
                    return Err(QueryBuildError::EmptyNumericRange { attr, lo, hi });
                }
                let bl = self.bucket_of(attr, Value::Num(lo));
                let bh = self.bucket_of(attr, Value::Num(hi));
                QueryItem::try_range(self.keyword(attr, bl), self.keyword(attr, bh))
            }
            Condition::BucketRange { attr, lo, hi } => {
                let a = self.attribute(attr)?;
                if lo > hi {
                    return Err(QueryBuildError::EmptyRange { lo, hi });
                }
                let max = a.domain() - 1;
                QueryItem::try_range(
                    self.keyword(attr, lo.min(max)),
                    self.keyword(attr, hi.min(max)),
                )
            }
        }
    }

    /// Encode a selection query: one item per condition, validated.
    pub fn encode_query(&self, conditions: &[Condition]) -> Result<Query, QueryBuildError> {
        if conditions.is_empty() {
            return Err(QueryBuildError::EmptyQuery);
        }
        let items = conditions
            .iter()
            .map(|c| self.encode_condition(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Query::new(items))
    }
}

impl Domain for RelationalIndex {
    type Config = RelationalSchema;
    type Item = Vec<Value>;
    type QuerySpec = Vec<Condition>;
    type Response = MatchHits;

    fn name() -> &'static str {
        "relational"
    }

    fn create(config: RelationalSchema, items: Vec<Vec<Value>>) -> Self {
        Self::build(config.attrs, &items, config.load_balance)
    }

    fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    fn encode(&self, spec: &Vec<Condition>) -> Result<Query, QueryBuildError> {
        self.encode_query(spec)
    }

    /// Decompose one row exactly like [`RelationalIndex::build`] does,
    /// with [`encode_row`](RelationalIndex::encode_row)'s panics
    /// surfaced as typed errors: wrong arity, kind mismatches,
    /// out-of-cardinality categories and non-finite numerics. The
    /// schema is fixed at build time, so nothing grows here.
    fn decompose(&self, item: &Vec<Value>) -> Result<Object, QueryBuildError> {
        if item.len() != self.attrs.len() {
            return Err(QueryBuildError::RowArity {
                got: item.len(),
                expected: self.attrs.len(),
            });
        }
        let mut kws = Vec::with_capacity(item.len());
        for (attr, &value) in item.iter().enumerate() {
            let bucket = match (self.attrs[attr], value) {
                (Attribute::Categorical { cardinality }, Value::Cat(c)) => {
                    if c >= cardinality {
                        return Err(QueryBuildError::ValueOutOfRange {
                            attr,
                            value: c,
                            cardinality,
                        });
                    }
                    c
                }
                (Attribute::Numeric { .. }, Value::Num(v)) => {
                    if !v.is_finite() {
                        return Err(QueryBuildError::NonFinite {
                            what: "row cell value",
                        });
                    }
                    self.bucket_of(attr, Value::Num(v))
                }
                (Attribute::Categorical { .. }, Value::Num(_)) => {
                    return Err(QueryBuildError::TypeMismatch {
                        attr,
                        expected: "numeric",
                    });
                }
                (Attribute::Numeric { .. }, Value::Cat(_)) => {
                    return Err(QueryBuildError::TypeMismatch {
                        attr,
                        expected: "categorical",
                    });
                }
            };
            kws.push(self.keyword(attr, bucket));
        }
        Ok(Object::new(kws))
    }

    fn decode(
        &self,
        _spec: &Vec<Condition>,
        hits: Vec<TopHit>,
        audit_threshold: u32,
        _k_candidates: usize,
        k: usize,
    ) -> MatchHits {
        let mut hits = hits;
        hits.truncate(k);
        MatchHits {
            hits,
            audit_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_core::backend::SearchBackend;
    use genie_core::exec::Engine;
    use gpu_sim::Device;

    /// The Figure 1 table: attributes A, B, C with small integer values.
    fn fig1() -> RelationalIndex {
        let attrs = vec![
            Attribute::Categorical { cardinality: 4 },
            Attribute::Categorical { cardinality: 4 },
            Attribute::Categorical { cardinality: 4 },
        ];
        let rows = vec![
            vec![Value::Cat(1), Value::Cat(2), Value::Cat(1)], // O1
            vec![Value::Cat(2), Value::Cat(1), Value::Cat(3)], // O2
            vec![Value::Cat(1), Value::Cat(3), Value::Cat(2)], // O3
        ];
        RelationalIndex::build(attrs, &rows, None)
    }

    fn search(
        rel: &RelationalIndex,
        backend: &dyn SearchBackend,
        queries: &[Vec<Condition>],
        k: usize,
    ) -> Vec<MatchHits> {
        let bindex = backend.upload(Arc::clone(Domain::index(rel))).unwrap();
        let qs: Vec<Query> = queries.iter().map(|q| rel.encode(q).unwrap()).collect();
        let out = backend.search_batch(&bindex, &qs, k);
        queries
            .iter()
            .zip(out.results.into_iter().zip(out.audit_thresholds))
            .map(|(q, (hits, at))| rel.decode(q, hits, at, k, k))
            .collect()
    }

    #[test]
    fn figure_1_query_ranks_o2_first() {
        let rel = fig1();
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        // Q1: 1 <= A <= 2, B = 1, 2 <= C <= 3
        let q = vec![
            Condition::BucketRange {
                attr: 0,
                lo: 1,
                hi: 2,
            },
            Condition::CatEq { attr: 1, value: 1 },
            Condition::BucketRange {
                attr: 2,
                lo: 2,
                hi: 3,
            },
        ];
        let results = search(&rel, &eng, &[q], 3);
        assert_eq!(results[0].hits[0].id, 1, "O2 satisfies all three");
        assert_eq!(results[0].hits[0].count, 3);
        // O3 satisfies A and C; O1 satisfies only A
        assert_eq!(results[0].hits[1], TopHit { id: 2, count: 2 });
        assert_eq!(results[0].hits[2], TopHit { id: 0, count: 1 });
        // AT - 1 = third-best count = 1
        assert_eq!(results[0].audit_threshold, 2);
    }

    #[test]
    fn numeric_discretisation_clamps_and_buckets() {
        let attrs = vec![Attribute::Numeric {
            min: 0.0,
            max: 100.0,
            buckets: 10,
        }];
        let rows = vec![
            vec![Value::Num(5.0)],
            vec![Value::Num(95.0)],
            vec![Value::Num(-3.0)],
            vec![Value::Num(120.0)],
        ];
        let rel = RelationalIndex::build(attrs, &rows, None);
        assert_eq!(rel.bucket_of(0, Value::Num(5.0)), 0);
        assert_eq!(rel.bucket_of(0, Value::Num(95.0)), 9);
        assert_eq!(rel.bucket_of(0, Value::Num(-3.0)), 0, "clamps below");
        assert_eq!(rel.bucket_of(0, Value::Num(120.0)), 9, "clamps above");
    }

    #[test]
    fn numeric_range_query_hits_rows_in_window() {
        let attrs = vec![
            Attribute::Numeric {
                min: 0.0,
                max: 100.0,
                buckets: 100,
            },
            Attribute::Categorical { cardinality: 2 },
        ];
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Num(i as f64 * 2.0), Value::Cat(i % 2)])
            .collect();
        let rel = RelationalIndex::build(attrs, &rows, None);
        let eng = Engine::new(Arc::new(Device::with_defaults()));
        let q = vec![
            Condition::NumRange {
                attr: 0,
                lo: 10.0,
                hi: 20.0,
            },
            Condition::CatEq { attr: 1, value: 0 },
        ];
        let results = search(&rel, &eng, &[q], 5);
        // rows with value in [10,20]: ids 5..=10; among them even ids have
        // Cat 0 -> count 2
        let top = &results[0].hits[0];
        assert_eq!(top.count, 2);
        assert!(top.id.is_multiple_of(2) && (5..=10).contains(&top.id));
    }

    #[test]
    fn keyword_spaces_of_attributes_do_not_overlap() {
        let rel = fig1();
        assert_eq!(rel.keyword(0, 3), 3);
        assert_eq!(rel.keyword(1, 0), 4);
        assert_eq!(rel.keyword(2, 0), 8);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_is_rejected() {
        let rel = fig1();
        rel.encode_row(&[Value::Cat(1)]);
    }

    #[test]
    fn malformed_conditions_are_typed_errors_not_panics() {
        let rel = fig1();
        assert_eq!(rel.encode(&vec![]), Err(QueryBuildError::EmptyQuery));
        // unknown attribute
        assert_eq!(
            rel.encode(&vec![Condition::CatEq { attr: 9, value: 0 }]),
            Err(QueryBuildError::UnknownAttribute {
                attr: 9,
                num_attributes: 3
            })
        );
        // category beyond cardinality (used to be an assert deep in
        // bucket_of)
        assert_eq!(
            rel.encode(&vec![Condition::CatEq { attr: 1, value: 7 }]),
            Err(QueryBuildError::ValueOutOfRange {
                attr: 1,
                value: 7,
                cardinality: 4
            })
        );
        // inverted bucket range
        assert_eq!(
            rel.encode(&vec![Condition::BucketRange {
                attr: 0,
                lo: 3,
                hi: 1
            }]),
            Err(QueryBuildError::EmptyRange { lo: 3, hi: 1 })
        );
        // NaN numeric bound on a numeric attribute
        let attrs = vec![Attribute::Numeric {
            min: 0.0,
            max: 1.0,
            buckets: 8,
        }];
        let rel = RelationalIndex::build(attrs, &[vec![Value::Num(0.5)]], None);
        assert_eq!(
            rel.encode(&vec![Condition::NumRange {
                attr: 0,
                lo: f64::NAN,
                hi: 0.5
            }]),
            Err(QueryBuildError::NonFinite {
                what: "numeric range bound"
            })
        );
        // inverted numeric range reports the real bounds in attribute
        // units
        assert_eq!(
            rel.encode(&vec![Condition::NumRange {
                attr: 0,
                lo: 0.9,
                hi: 0.1
            }]),
            Err(QueryBuildError::EmptyNumericRange {
                attr: 0,
                lo: 0.9,
                hi: 0.1
            })
        );
    }

    #[test]
    fn condition_kind_must_match_attribute_kind() {
        // one categorical + one numeric attribute
        let rel = RelationalIndex::build(
            vec![
                Attribute::Categorical { cardinality: 4 },
                Attribute::Numeric {
                    min: 0.0,
                    max: 1.0,
                    buckets: 8,
                },
            ],
            &[vec![Value::Cat(1), Value::Num(0.5)]],
            None,
        );
        // a numeric range over the categorical attribute used to panic
        // inside bucket_of; now a typed error
        assert_eq!(
            rel.encode(&vec![Condition::NumRange {
                attr: 0,
                lo: 0.0,
                hi: 1.0
            }]),
            Err(QueryBuildError::TypeMismatch {
                attr: 0,
                expected: "numeric"
            })
        );
        // a categorical equality over the numeric attribute used to be
        // silently reinterpreted as a bucket index; now a typed error
        assert_eq!(
            rel.encode(&vec![Condition::CatEq { attr: 1, value: 3 }]),
            Err(QueryBuildError::TypeMismatch {
                attr: 1,
                expected: "categorical"
            })
        );
        // BucketRange is kind-agnostic (bucket space exists for both)
        assert!(rel
            .encode(&vec![Condition::BucketRange {
                attr: 1,
                lo: 0,
                hi: 3
            }])
            .is_ok());
    }

    #[test]
    fn bucket_ranges_clamp_window_style() {
        let rel = fig1();
        // hi beyond the domain clamps (the Adult experiment's v+50
        // windows run off the edge routinely)
        let q = rel
            .encode(&vec![Condition::BucketRange {
                attr: 0,
                lo: 2,
                hi: 99,
            }])
            .unwrap();
        assert_eq!(q.items[0], QueryItem::range(2, 3));
    }
}
