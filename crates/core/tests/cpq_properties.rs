//! Property tests of the Count Priority Queue: for arbitrary update
//! multisets applied under full device concurrency, the hash table must
//! contain the exact top-k and the AuditThreshold must satisfy
//! Theorem 3.1.

use genie_core::cpq::{Cpq, CpqLayout};
use gpu_sim::{Device, LaunchConfig};
use proptest::prelude::*;

/// Apply `updates` (object ids, possibly repeated) concurrently and
/// return (final AT, merged hash-table contents).
fn run_cpq(updates: &[u32], num_objects: usize, bound: u32, k: usize) -> (u32, Vec<(u32, u32)>) {
    let layout = CpqLayout {
        num_queries: 1,
        num_objects,
        bound,
        k,
    };
    let cpq = Cpq::new(layout);
    let device = Device::with_defaults();
    let n = updates.len();
    let c = &cpq;
    let u = updates;
    device.launch("prop", LaunchConfig::cover(n.max(1), 64), move |ctx| {
        let gid = ctx.global_id();
        if gid < n {
            c.update(ctx, 0, u[gid]);
        }
    });
    let at = cpq.final_audit_threshold(0);
    // merge duplicates by max count
    let mut best = std::collections::HashMap::new();
    for (id, count) in cpq.table().host_entries(0) {
        let e = best.entry(id).or_insert(0u32);
        *e = (*e).max(count);
    }
    let mut entries: Vec<(u32, u32)> = best.into_iter().collect();
    entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    (at, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cpq_topk_equals_reference(
        updates in proptest::collection::vec(0u32..40, 0..300),
        k in 1usize..12,
    ) {
        let num_objects = 40usize;
        // exact counts
        let mut counts = vec![0u32; num_objects];
        for &o in &updates {
            counts[o as usize] += 1;
        }
        let bound = counts.iter().copied().max().unwrap_or(0).max(1);
        let (at, entries) = run_cpq(&updates, num_objects, bound, k);

        // Theorem 3.1: MC_k = AT - 1 (when at least k objects matched)
        let mut sorted: Vec<u32> = counts.iter().copied().filter(|&c| c > 0).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if sorted.len() >= k {
            prop_assert_eq!(at - 1, sorted[k - 1], "MC_k must equal AT - 1");
        } else {
            prop_assert_eq!(at, 1, "AT must stay 1 when fewer than k objects matched");
        }

        // the top-k count profile must be recoverable from the table
        let threshold = at.saturating_sub(1);
        let survivors: Vec<u32> = entries
            .iter()
            .filter(|&&(_, c)| c >= threshold)
            .map(|&(_, c)| c)
            .take(k)
            .collect();
        let expected: Vec<u32> = sorted.iter().copied().take(k).collect();
        prop_assert_eq!(survivors, expected, "top-k count profile");

        // every reported (id, count) must be truthful
        for &(id, c) in &entries {
            prop_assert!(c <= counts[id as usize],
                "table reports count {} for object {} with true count {}",
                c, id, counts[id as usize]);
        }
    }

    /// Oversizing the bound (more bits than needed) never changes the
    /// answer.
    #[test]
    fn bound_oversizing_is_harmless(
        updates in proptest::collection::vec(0u32..20, 1..150),
    ) {
        let num_objects = 20usize;
        let mut counts = vec![0u32; num_objects];
        for &o in &updates {
            counts[o as usize] += 1;
        }
        let tight = counts.iter().copied().max().unwrap().max(1);
        let k = 5usize;
        let (at_tight, top_tight) = run_cpq(&updates, num_objects, tight, k);
        let (at_loose, top_loose) = run_cpq(&updates, num_objects, tight * 3 + 7, k);
        prop_assert_eq!(at_tight, at_loose);
        let profile = |v: &[(u32, u32)], th: u32| -> Vec<u32> {
            v.iter().filter(|&&(_, c)| c >= th).map(|&(_, c)| c).take(k).collect()
        };
        prop_assert_eq!(
            profile(&top_tight, at_tight.saturating_sub(1)),
            profile(&top_loose, at_loose.saturating_sub(1))
        );
    }
}
