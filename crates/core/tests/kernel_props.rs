//! Property tests of the sparse-aware host counting kernel: across
//! randomized objects, queries and `k` — including overlapping range
//! items that credit one object through several postings segments,
//! queries that match nothing, and `k` larger than the match set — the
//! kernel (sequential *and* intra-query parallel, any worker split)
//! must be **bit-identical** (ids, counts, AT) to the seed dense path
//! it replaced, which stays executable as
//! [`kernel::reference_search_one`].

use std::sync::Arc;

use genie_core::backend::kernel::{self, CountScratch, KernelConfig, KernelStats, ScratchPool};
use genie_core::backend::{CpuBackend, SearchBackend};
use genie_core::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
use genie_core::model::{Object, Query, QueryItem};
use proptest::prelude::*;

const UNIVERSE: u32 = 60;

fn index_of(objects: &[Object], lb: Option<LoadBalanceConfig>) -> Arc<InvertedIndex> {
    let mut b = IndexBuilder::new();
    b.add_objects(objects.iter());
    Arc::new(b.build(lb))
}

fn objects_strategy() -> impl Strategy<Value = Vec<Object>> {
    proptest::collection::vec(proptest::collection::vec(0u32..UNIVERSE, 1..7), 1..120)
        .prop_map(|keyword_sets| keyword_sets.into_iter().map(Object::new).collect())
}

/// Queries with deliberately *overlapping* range items: one object can
/// be credited by several items, and one range can span many segments.
fn query_strategy() -> impl Strategy<Value = Query> {
    proptest::collection::vec((0u32..UNIVERSE, 0u32..20), 1..6).prop_map(|ranges| {
        Query::new(
            ranges
                .into_iter()
                .map(|(lo, span)| QueryItem::range(lo, (lo + span).min(UNIVERSE - 1)))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_is_bit_identical_to_the_seed_dense_path(
        objects in objects_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..8),
        k in 1usize..200,
        balanced in 0u32..2,
    ) {
        let lb = (balanced == 1).then_some(LoadBalanceConfig { max_list_len: 5 });
        let index = index_of(&objects, lb);
        // exercise both adaptive regimes across the case set: default
        // thresholds plus a config that forces the mid-scan fallback
        let configs = [
            KernelConfig::default(),
            KernelConfig {
                dense_postings_per_object: f64::INFINITY,
                dense_touched_fraction: 0.01,
                ..Default::default()
            },
        ];
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let pool = ScratchPool::new();
        for q in &queries {
            let expected = kernel::reference_search_one(&index, q, k);
            for config in &configs {
                let got = kernel::search_one(&index, q, k, &mut scratch, config, &stats);
                prop_assert_eq!(&expected, &got, "sequential kernel");
            }
            // any intra-query split must merge back bit-identically
            let par_config = KernelConfig {
                parallel_min_postings: 0,
                ..Default::default()
            };
            for workers in [2usize, 5] {
                let got = kernel::search_one_parallel(
                    &index, q, k, &pool, workers, &par_config, &stats,
                );
                prop_assert_eq!(&expected, &got, "parallel kernel, {} workers", workers);
            }
        }
    }

    /// The lane-split dense scatter handles every run-length residue:
    /// forcing the dense path (`dense_postings_per_object: 0`) over
    /// tiny object sets sweeps runs shorter than the lane count, runs
    /// whose length is not a lane multiple (scalar tail), and empty
    /// runs — all of which must stay bit-identical to the seed path
    /// at every configured lane count (including out-of-range values
    /// the config clamps).
    #[test]
    fn dense_lane_split_is_bit_identical_at_any_run_length(
        objects in proptest::collection::vec(
            proptest::collection::vec(0u32..UNIVERSE, 1..7), 1..40,
        ).prop_map(|sets| sets.into_iter().map(Object::new).collect::<Vec<Object>>()),
        queries in proptest::collection::vec(query_strategy(), 1..5),
        k in 1usize..20,
        lanes in 0usize..10,
    ) {
        let index = index_of(&objects, None);
        let config = KernelConfig {
            dense_postings_per_object: 0.0, // predict dense up front
            dense_lanes: lanes,
            ..Default::default()
        };
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        for q in &queries {
            let expected = kernel::reference_search_one(&index, q, k);
            let got = kernel::search_one(&index, q, k, &mut scratch, &config, &stats);
            prop_assert_eq!(&expected, &got, "lanes = {}, n = {}", lanes, objects.len());
        }
        prop_assert_eq!(stats.snapshot().sparse_finalize, 0, "dense was forced");
    }

    #[test]
    fn backend_batches_match_the_seed_path_query_by_query(
        objects in objects_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..6),
        k in 1usize..30,
    ) {
        let index = index_of(&objects, None);
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, Arc::clone(&index)).unwrap();
        let out = cpu.search_batch(&bindex, &queries, k);
        for (qi, q) in queries.iter().enumerate() {
            let (hits, at) = kernel::reference_search_one(&index, q, k);
            prop_assert_eq!(&hits, &out.results[qi], "query {}", qi);
            prop_assert_eq!(at, out.audit_thresholds[qi], "query {}", qi);
        }
    }
}

#[test]
fn one_object_credited_through_many_segments_and_items() {
    // object 0 holds every keyword 0..24: a [0, 23] range item walks 24
    // postings segments that all credit it; a second overlapping item
    // credits part of the same span again
    let mut objects = vec![Object::new((0..24).collect())];
    objects.extend((0..40).map(|i| Object::new(vec![i % 24])));
    let index = index_of(&objects, None);
    let q = Query::new(vec![QueryItem::range(0, 23), QueryItem::range(10, 30)]);
    let stats = KernelStats::default();
    let mut scratch = CountScratch::default();
    for k in [1, 3, 41, 100] {
        let expected = kernel::reference_search_one(&index, &q, k);
        let got = kernel::search_one(
            &index,
            &q,
            k,
            &mut scratch,
            &KernelConfig::default(),
            &stats,
        );
        assert_eq!(expected, got, "k = {k}");
    }
    // the top hit is object 0 with count 24 + 14
    let (hits, at) = kernel::reference_search_one(&index, &q, 1);
    assert_eq!(hits[0].id, 0);
    assert_eq!(hits[0].count, 38);
    assert_eq!(at, 39);
}

/// Explicit lane-boundary object counts: below the 4-lane width, one
/// off a lane multiple, prime, and a query mixing matching items with
/// an item that matches nothing (an empty postings range).
#[test]
fn lane_boundary_sizes_and_empty_runs_stay_bit_identical() {
    let stats = KernelStats::default();
    for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 31, 33] {
        let objects: Vec<Object> = (0..n).map(|i| Object::new(vec![i as u32 % 7, 7])).collect();
        let index = index_of(&objects, None);
        // keyword 40 is indexed by nobody: its range contributes zero
        // postings runs between two contributing items
        let q = Query::new(vec![
            QueryItem::range(0, 6),
            QueryItem::range(40, 50),
            QueryItem::range(7, 7),
        ]);
        for lanes in [1usize, 2, 4, 8] {
            let config = KernelConfig {
                dense_postings_per_object: 0.0,
                dense_lanes: lanes,
                ..Default::default()
            };
            let mut scratch = CountScratch::default();
            for k in [1, 2, n, n + 3] {
                let expected = kernel::reference_search_one(&index, &q, k);
                let got = kernel::search_one(&index, &q, k, &mut scratch, &config, &stats);
                assert_eq!(expected, got, "n = {n}, lanes = {lanes}, k = {k}");
            }
        }
    }
}

/// Epoch wrap-around of the reused scratch is transparent: counters
/// stamped by pre-wrap queries must never leak into post-wrap answers,
/// including when dense-mode queries (which bypass the epoch) are
/// interleaved right across the wrap.
#[test]
fn epoch_wrap_of_the_reused_scratch_is_transparent() {
    let objects: Vec<Object> = (0..60)
        .map(|i| Object::new(vec![i % 13, 13 + i % 5, 20]))
        .collect();
    let index = index_of(&objects, None);
    let stats = KernelStats::default();
    let sparse_config = KernelConfig::default();
    let dense_config = KernelConfig {
        dense_postings_per_object: 0.0,
        ..Default::default()
    };

    let mut scratch = CountScratch::default();
    // a first query allocates and stamps the table, then the test hook
    // parks the epoch two steps short of the wrap
    let warm = Query::from_keywords(&[1, 20]);
    let _ = kernel::search_one(&index, &warm, 5, &mut scratch, &sparse_config, &stats);
    scratch.force_epoch(u32::MAX - 2);

    // each sparse `begin` advances the epoch: MAX - 1, MAX, then the
    // wrap (full re-zero, epoch 1) — with dense queries in between so
    // both counting modes cross the boundary in one scratch
    for round in 0u32..6 {
        for (cfg, name) in [(&sparse_config, "sparse"), (&dense_config, "dense")] {
            let q = Query::new(vec![
                QueryItem::range(round % 13, (round % 13) + 2),
                QueryItem::range(20, 20),
            ]);
            for k in [1, 7, 100] {
                let expected = kernel::reference_search_one(&index, &q, k);
                let got = kernel::search_one(&index, &q, k, &mut scratch, cfg, &stats);
                assert_eq!(expected, got, "round {round}, {name} config, k = {k}");
            }
        }
    }
}

#[test]
fn empty_matches_and_k_beyond_the_match_set() {
    let objects: Vec<Object> = (0..30).map(|i| Object::new(vec![i])).collect();
    let index = index_of(&objects, None);
    let stats = KernelStats::default();
    let mut scratch = CountScratch::default();
    let config = KernelConfig::default();

    // nothing matches: empty hits, AT stays at its initial 1
    let miss = Query::new(vec![QueryItem::range(100, 200)]);
    let (hits, at) = kernel::search_one(&index, &miss, 5, &mut scratch, &config, &stats);
    assert!(hits.is_empty());
    assert_eq!(at, 1);
    assert_eq!(kernel::reference_search_one(&index, &miss, 5), (hits, at));

    // k far beyond the match set: all matches returned, AT stays 1
    let q = Query::from_keywords(&[3, 4]);
    let expected = kernel::reference_search_one(&index, &q, 25);
    let got = kernel::search_one(&index, &q, 25, &mut scratch, &config, &stats);
    assert_eq!(expected, got);
    assert_eq!(got.0.len(), 2, "two singleton matches");
    assert_eq!(got.1, 1, "fewer than k matched: AT never advances");
}
