//! Top-k finalisation and the CPU reference used throughout the tests.

use crate::model::ObjectId;

/// One top-k hit: an object and its match count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopHit {
    pub id: ObjectId,
    pub count: u32,
}

/// Reduce raw `(id, count)` candidates to the final top-k list.
///
/// Duplicate ids (the lock-free hash table can emit several entries for
/// one key) are merged by maximum count; entries below `threshold`
/// (`AT - 1`, per Theorem 3.1) are dropped; the survivors are sorted by
/// count descending. The paper breaks ties randomly — we break them by
/// ascending id so results are reproducible.
pub fn finalize_candidates<I>(candidates: I, threshold: u32, k: usize) -> Vec<TopHit>
where
    I: IntoIterator<Item = (ObjectId, u32)>,
{
    let mut best: std::collections::HashMap<ObjectId, u32> = std::collections::HashMap::new();
    for (id, count) in candidates {
        if count >= threshold {
            let e = best.entry(id).or_insert(0);
            *e = (*e).max(count);
        }
    }
    let mut hits: Vec<TopHit> = best
        .into_iter()
        .map(|(id, count)| TopHit { id, count })
        .collect();
    hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
    hits.truncate(k);
    hits
}

/// Brute-force reference: the top-k of a dense count array, zero counts
/// excluded (an object no query item touches is not a candidate), ties
/// by ascending id.
pub fn reference_top_k(counts: &[u32], k: usize) -> Vec<TopHit> {
    let mut hits: Vec<TopHit> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(id, &count)| TopHit {
            id: id as ObjectId,
            count,
        })
        .collect();
    hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_merges_duplicates_by_max() {
        let hits = finalize_candidates(vec![(1, 2), (1, 5), (2, 3)], 0, 10);
        assert_eq!(
            hits,
            vec![TopHit { id: 1, count: 5 }, TopHit { id: 2, count: 3 }]
        );
    }

    #[test]
    fn finalize_applies_threshold_and_k() {
        let hits = finalize_candidates(vec![(1, 1), (2, 5), (3, 4), (4, 9)], 4, 2);
        assert_eq!(
            hits,
            vec![TopHit { id: 4, count: 9 }, TopHit { id: 2, count: 5 }]
        );
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let hits = finalize_candidates(vec![(9, 3), (2, 3), (5, 3)], 0, 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 5);
    }

    #[test]
    fn reference_ignores_zero_counts() {
        let hits = reference_top_k(&[0, 3, 0, 1], 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], TopHit { id: 1, count: 3 });
    }

    #[test]
    fn reference_and_finalize_agree() {
        let counts = [5u32, 0, 3, 3, 8, 1];
        let pairs: Vec<(u32, u32)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        assert_eq!(
            reference_top_k(&counts, 3),
            finalize_candidates(pairs, 1, 3)
        );
    }
}
