//! Top-k finalisation and the CPU reference used throughout the tests.

use crate::model::ObjectId;

/// One top-k hit: an object and its match count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopHit {
    pub id: ObjectId,
    pub count: u32,
}

/// Reduce raw `(id, count)` candidates to the final top-k list.
///
/// Duplicate ids (the lock-free hash table can emit several entries for
/// one key) are merged by maximum count; entries below `threshold`
/// (`AT - 1`, per Theorem 3.1) are dropped; the survivors are sorted by
/// count descending. The paper breaks ties randomly — we break them by
/// ascending id so results are reproducible.
///
/// The merge map is pre-sized from the candidate iterator's size hint,
/// so the device-engine path (whose candidate download knows its exact
/// length) never rehashes mid-merge. Callers whose candidate stream is
/// already duplicate-free should use [`finalize_unique_candidates`],
/// which skips the map entirely.
pub fn finalize_candidates<I>(candidates: I, threshold: u32, k: usize) -> Vec<TopHit>
where
    I: IntoIterator<Item = (ObjectId, u32)>,
{
    let candidates = candidates.into_iter();
    let (lower, upper) = candidates.size_hint();
    let mut best: std::collections::HashMap<ObjectId, u32> =
        std::collections::HashMap::with_capacity(upper.unwrap_or(lower));
    for (id, count) in candidates {
        if count >= threshold {
            let e = best.entry(id).or_insert(0);
            *e = (*e).max(count);
        }
    }
    let hits: Vec<TopHit> = best
        .into_iter()
        .map(|(id, count)| TopHit { id, count })
        .collect();
    partial_top_k(hits, k)
}

/// [`finalize_candidates`] for candidate streams that are already
/// duplicate-free — one entry per object, as the CPU kernel's sparse
/// harvest and dense sweep both guarantee. No merge map is built: the
/// survivors go straight into the shared quickselect, so finalisation
/// costs `O(candidates + k log k)` with no hashing at all.
///
/// Feeding duplicates in violates the contract and double-lists the
/// object (checked by `debug_assert` in test builds); use
/// [`finalize_candidates`] for streams that can repeat ids.
pub fn finalize_unique_candidates<I>(candidates: I, threshold: u32, k: usize) -> Vec<TopHit>
where
    I: IntoIterator<Item = (ObjectId, u32)>,
{
    let hits: Vec<TopHit> = candidates
        .into_iter()
        .filter(|&(_, count)| count >= threshold)
        .map(|(id, count)| TopHit { id, count })
        .collect();
    debug_assert!(
        {
            let mut ids: Vec<ObjectId> = hits.iter().map(|h| h.id).collect();
            ids.sort_unstable();
            ids.windows(2).all(|w| w[0] != w[1])
        },
        "finalize_unique_candidates fed duplicate ids"
    );
    partial_top_k(hits, k)
}

/// Exact top-k of pre-scored hits: quickselect the k-th boundary by
/// (count descending, id ascending), truncate, and order the survivors
/// the same way. This is the one definition of the result-ordering
/// contract shared by the CPU backend, the multi-device merge and the
/// CPU-Idx baseline.
pub fn partial_top_k(mut hits: Vec<TopHit>, k: usize) -> Vec<TopHit> {
    if k == 0 {
        hits.clear();
        return hits;
    }
    let by_count_then_id = |a: &TopHit, b: &TopHit| b.count.cmp(&a.count).then(a.id.cmp(&b.id));
    if hits.len() > k {
        hits.select_nth_unstable_by(k - 1, by_count_then_id);
        hits.truncate(k);
    }
    hits.sort_unstable_by(by_count_then_id);
    hits
}

/// The final AuditThreshold Theorem 3.1 assigns to a finished top-k
/// list: `MC_k + 1` when `k` objects matched, else the initial 1 (the
/// gate never advances when fewer than `k` objects reach any count).
pub fn audit_threshold(hits: &[TopHit], k: usize) -> u32 {
    if hits.len() == k && k > 0 {
        hits[k - 1].count + 1
    } else {
        1
    }
}

/// Brute-force reference: the top-k of a dense count array, zero counts
/// excluded (an object no query item touches is not a candidate), ties
/// by ascending id.
pub fn reference_top_k(counts: &[u32], k: usize) -> Vec<TopHit> {
    let mut hits: Vec<TopHit> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(id, &count)| TopHit {
            id: id as ObjectId,
            count,
        })
        .collect();
    hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_merges_duplicates_by_max() {
        let hits = finalize_candidates(vec![(1, 2), (1, 5), (2, 3)], 0, 10);
        assert_eq!(
            hits,
            vec![TopHit { id: 1, count: 5 }, TopHit { id: 2, count: 3 }]
        );
    }

    #[test]
    fn engine_path_still_merges_duplicates_after_presizing() {
        // regression for the pre-sized merge map: the lock-free hash
        // table can emit one object several times (chain displacement),
        // and the engine path must still keep the maximum count even
        // when duplicates push past the size hint's unique-id count
        let raw: Vec<(u32, u32)> = (0..64)
            .flat_map(|id| (1..=3).map(move |c| (id % 8, c)))
            .collect();
        let hits = finalize_candidates(raw, 1, 8);
        assert_eq!(hits.len(), 8);
        assert!(hits.iter().all(|h| h.count == 3), "max count per id wins");
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn unique_variant_matches_general_on_duplicate_free_input() {
        let pairs: Vec<(u32, u32)> = vec![(4, 9), (1, 1), (2, 5), (3, 4), (9, 5)];
        for threshold in 0..6 {
            for k in 1..6 {
                assert_eq!(
                    finalize_unique_candidates(pairs.clone(), threshold, k),
                    finalize_candidates(pairs.clone(), threshold, k),
                    "threshold {threshold}, k {k}"
                );
            }
        }
    }

    #[test]
    fn finalize_applies_threshold_and_k() {
        let hits = finalize_candidates(vec![(1, 1), (2, 5), (3, 4), (4, 9)], 4, 2);
        assert_eq!(
            hits,
            vec![TopHit { id: 4, count: 9 }, TopHit { id: 2, count: 5 }]
        );
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let hits = finalize_candidates(vec![(9, 3), (2, 3), (5, 3)], 0, 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 5);
    }

    #[test]
    fn partial_top_k_matches_reference() {
        let counts = [0u32, 4, 2, 4, 0, 1, 4];
        let hits: Vec<TopHit> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(id, &count)| TopHit {
                id: id as u32,
                count,
            })
            .collect();
        for k in 1..=counts.len() {
            assert_eq!(partial_top_k(hits.clone(), k), reference_top_k(&counts, k));
        }
    }

    #[test]
    fn audit_threshold_follows_theorem_3_1() {
        let hits = vec![
            TopHit { id: 1, count: 4 },
            TopHit { id: 3, count: 4 },
            TopHit { id: 2, count: 2 },
        ];
        assert_eq!(audit_threshold(&hits, 3), 3, "MC_3 = 2 -> AT = 3");
        assert_eq!(audit_threshold(&hits[..2], 2), 5, "MC_2 = 4 -> AT = 5");
        assert_eq!(audit_threshold(&hits, 5), 1, "fewer than k matched");
        assert_eq!(audit_threshold(&[], 1), 1, "nothing matched");
    }

    #[test]
    fn reference_ignores_zero_counts() {
        let hits = reference_top_k(&[0, 3, 0, 1], 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], TopHit { id: 1, count: 3 });
    }

    #[test]
    fn reference_and_finalize_agree() {
        let counts = [5u32, 0, 3, 3, 8, 1];
        let pairs: Vec<(u32, u32)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        assert_eq!(
            reference_top_k(&counts, 3),
            finalize_candidates(pairs, 1, 3)
        );
    }
}
