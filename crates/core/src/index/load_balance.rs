//! Load balancing (paper §III-B1, Figure 4).
//!
//! Some keywords own extremely long postings lists (low-cardinality
//! relational attributes are the paper's example — the Adult dataset's
//! `sex` column puts half the table in one list). A single block scanning
//! such a list becomes the straggler of the whole launch when only a few
//! queries are in flight. The fix is to cap sublist length at build time:
//! each long list is split into sublists and the Position Map records all
//! of them, so each sublist gets its own block.
//!
//! The paper caps sublists at 4K entries; the same default is used here.
//! As the paper observes, the benefit fades once the batch has enough
//! queries to saturate the device — the Fig. 12 experiment reproduces
//! exactly that.

use serde::{Deserialize, Serialize};

/// Build-time load-balance settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadBalanceConfig {
    /// Maximum entries in one (sub)postings list. Paper default: 4096.
    pub max_list_len: usize,
}

impl Default for LoadBalanceConfig {
    fn default() -> Self {
        Self { max_list_len: 4096 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::Object;

    #[test]
    fn default_matches_paper() {
        assert_eq!(LoadBalanceConfig::default().max_list_len, 4096);
    }

    #[test]
    fn split_lists_cover_exactly_the_original_postings() {
        let mut b = IndexBuilder::new();
        for i in 0..100u32 {
            b.add_object(&Object::new(vec![i % 2])); // two keywords, 50 each
        }
        let idx = b.build(Some(LoadBalanceConfig { max_list_len: 16 }));
        for kw in 0..2u32 {
            let postings = idx.postings_of(kw);
            assert_eq!(postings.len(), 50);
            let segs: Vec<_> = idx.segments_for_range(kw, kw).collect();
            assert_eq!(segs.len(), 4); // 16+16+16+2
            assert!(segs.iter().all(|s| s.len <= 16));
        }
    }
}
