//! Host-side index construction ("Index build" row of Table I).

use std::collections::BTreeMap;

use crate::model::{KeywordId, Object, ObjectId};

use super::inverted::{InvertedIndex, PostingsEntry};
use super::load_balance::LoadBalanceConfig;

/// Accumulates postings on the host before freezing them into the flat
/// [`InvertedIndex`] layout.
///
/// Postings are gathered per keyword in a `BTreeMap` so the frozen List
/// Array is ordered by keyword — which is what lets a range query item be
/// answered with a binary search plus a contiguous scan.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    postings: BTreeMap<KeywordId, Vec<ObjectId>>,
    num_objects: ObjectId,
    max_object_len: usize,
}

impl IndexBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the next object; objects receive consecutive ids starting at 0.
    /// Returns the id assigned to it.
    pub fn add_object(&mut self, object: &Object) -> ObjectId {
        let id = self.num_objects;
        for &kw in &object.keywords {
            self.postings.entry(kw).or_default().push(id);
        }
        self.max_object_len = self.max_object_len.max(object.keywords.len());
        self.num_objects += 1;
        id
    }

    /// Add every object of `objects` in order.
    pub fn add_objects<'a, I: IntoIterator<Item = &'a Object>>(&mut self, objects: I) {
        for o in objects {
            self.add_object(o);
        }
    }

    /// Number of distinct keywords seen so far.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }

    /// Freeze into the flat device layout. If `load_balance` is set, long
    /// postings lists are split into sublists of at most
    /// `max_list_len` entries (paper §III-B1, Figure 4) and the Position
    /// Map becomes one-to-many.
    pub fn build(self, load_balance: Option<LoadBalanceConfig>) -> InvertedIndex {
        let mut list_array = Vec::new();
        let mut entries = Vec::with_capacity(self.postings.len());
        let mut longest_list = 0usize;
        for (kw, ids) in self.postings {
            longest_list = longest_list.max(ids.len());
            match load_balance {
                Some(lb) => {
                    for chunk in ids.chunks(lb.max_list_len.max(1)) {
                        entries.push(PostingsEntry {
                            keyword: kw,
                            start: list_array.len() as u32,
                            len: chunk.len() as u32,
                        });
                        list_array.extend_from_slice(chunk);
                    }
                }
                None => {
                    entries.push(PostingsEntry {
                        keyword: kw,
                        start: list_array.len() as u32,
                        len: ids.len() as u32,
                    });
                    list_array.extend_from_slice(&ids);
                }
            }
        }
        InvertedIndex {
            entries,
            list_array,
            num_objects: self.num_objects,
            max_object_len: self.max_object_len,
            longest_list,
            load_balance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Object;

    #[test]
    fn assigns_consecutive_ids() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_object(&Object::new(vec![1])), 0);
        assert_eq!(b.add_object(&Object::new(vec![1, 2])), 1);
        assert_eq!(b.num_keywords(), 2);
        let idx = b.build(None);
        assert_eq!(idx.num_objects(), 2);
        assert_eq!(idx.max_object_len(), 2);
    }

    #[test]
    fn postings_are_grouped_and_ordered() {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![7, 3]));
        b.add_object(&Object::new(vec![3]));
        b.add_object(&Object::new(vec![7]));
        let idx = b.build(None);
        // keyword 3 -> [0, 1], keyword 7 -> [0, 2], ordered by keyword
        let segs: Vec<_> = idx.segments_for_range(0, u32::MAX).collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(idx.postings_of(3), vec![0, 1]);
        assert_eq!(idx.postings_of(7), vec![0, 2]);
    }

    #[test]
    fn duplicate_keywords_in_one_object_create_duplicate_postings() {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![4, 4]));
        let idx = b.build(None);
        assert_eq!(idx.postings_of(4), vec![0, 0]);
    }

    #[test]
    fn load_balance_splits_long_lists() {
        let mut b = IndexBuilder::new();
        for _ in 0..10 {
            b.add_object(&Object::new(vec![1]));
        }
        let idx = b.build(Some(LoadBalanceConfig { max_list_len: 4 }));
        let segs: Vec<_> = idx.segments_for_range(1, 1).collect();
        assert_eq!(segs.len(), 3); // 4 + 4 + 2
        assert_eq!(segs.iter().map(|s| s.len).sum::<u32>(), 10);
        assert!(segs.iter().all(|s| s.len <= 4));
        // the union of sublists is still the full postings list
        assert_eq!(idx.postings_of(1).len(), 10);
    }
}
