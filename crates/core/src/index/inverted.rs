//! Frozen inverted index: flat List Array + sorted Position Map.

use serde::{Deserialize, Serialize};

use super::load_balance::LoadBalanceConfig;
use crate::model::{KeywordId, ObjectId};

/// One Position-Map record: keyword plus the address of one of its
/// (sub)postings lists in the List Array. With load balancing enabled a
/// keyword owns several consecutive entries (the one-to-many map of
/// Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingsEntry {
    pub keyword: KeywordId,
    pub start: u32,
    pub len: u32,
}

/// A contiguous slice of the List Array that a kernel block scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingsSegment {
    pub start: u32,
    pub len: u32,
}

/// The frozen index (paper Figure 3).
///
/// * `list_array` lives in device global memory at query time (uploaded
///   by the engine, which records the H2D transfer).
/// * `entries` — the Position Map — stays in *host* memory, exactly as in
///   the paper: the host looks up postings addresses once per query item
///   and ships only `(start, len)` descriptors to the device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) entries: Vec<PostingsEntry>,
    pub(crate) list_array: Vec<ObjectId>,
    pub(crate) num_objects: ObjectId,
    pub(crate) max_object_len: usize,
    pub(crate) longest_list: usize,
    pub(crate) load_balance: Option<LoadBalanceConfig>,
}

impl InvertedIndex {
    /// Number of indexed objects.
    pub fn num_objects(&self) -> ObjectId {
        self.num_objects
    }

    /// Length of the longest keyword element list seen at build time.
    pub fn max_object_len(&self) -> usize {
        self.max_object_len
    }

    /// Length of the longest (pre-split) postings list.
    pub fn longest_list(&self) -> usize {
        self.longest_list
    }

    /// The load-balance configuration the index was built with, if any.
    pub fn load_balance(&self) -> Option<LoadBalanceConfig> {
        self.load_balance
    }

    /// The flat List Array (what gets uploaded to the device).
    pub fn list_array(&self) -> &[ObjectId] {
        &self.list_array
    }

    /// Number of Position-Map entries (sublists count individually).
    pub fn num_lists(&self) -> usize {
        self.entries.len()
    }

    /// Size of the device-resident part (the List Array) in bytes.
    pub fn device_bytes(&self) -> u64 {
        (self.list_array.len() * std::mem::size_of::<ObjectId>()) as u64
    }

    /// Size of the host-resident Position Map in bytes.
    pub fn host_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<PostingsEntry>()) as u64
    }

    /// All postings segments whose keyword lies in `[lo, hi]` (inclusive).
    /// This is the host-side Position-Map lookup done once per query item.
    pub fn segments_for_range(
        &self,
        lo: KeywordId,
        hi: KeywordId,
    ) -> impl Iterator<Item = PostingsSegment> + '_ {
        let from = self.entries.partition_point(|e| e.keyword < lo);
        self.entries[from..]
            .iter()
            .take_while(move |e| e.keyword <= hi)
            .map(|e| PostingsSegment {
                start: e.start,
                len: e.len,
            })
    }

    /// Like [`segments_for_range`](Self::segments_for_range), but with
    /// segments that are *adjacent in the List Array* merged into one
    /// [`PostingsSegment`].
    ///
    /// The builder lays consecutive keywords' postings lists (and a
    /// load-balanced keyword's sublists) out back-to-back, so a range
    /// item usually resolves to one long contiguous run instead of many
    /// short segments. Host scan loops want exactly that: one bounds
    /// check and one hot loop per run, long enough for the chunked
    /// counting kernel to amortise its setup. Load-balanced sublists are
    /// deliberately merged back together here — the split exists to
    /// balance *device blocks*, which host kernels do not have.
    ///
    /// Yields no zero-length segments; the postings visited (and their
    /// order) are identical to the uncoalesced iteration.
    pub fn coalesced_segments_for_range(
        &self,
        lo: KeywordId,
        hi: KeywordId,
    ) -> CoalescedSegments<'_> {
        let from = self.entries.partition_point(|e| e.keyword < lo);
        CoalescedSegments {
            entries: &self.entries[from..],
            pos: 0,
            hi,
            pending: None,
        }
    }

    /// Total postings whose keyword lies in `[lo, hi]` (inclusive) —
    /// the size of the List Array slice a counting scan of that range
    /// visits. Computed on the fly from the Position Map
    /// (`O(log lists + lists in range)`), so it needs no extra
    /// serialized state and stays correct for any index the
    /// persistence codec can produce.
    pub fn postings_in_range(&self, lo: KeywordId, hi: KeywordId) -> u64 {
        let from = self.entries.partition_point(|e| e.keyword < lo);
        self.entries[from..]
            .iter()
            .take_while(|e| e.keyword <= hi)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Postings a full counting scan of `query` visits: the sum of
    /// [`postings_in_range`](Self::postings_in_range) over its items.
    /// This is the per-query scan-cost statistic the service's
    /// cost-aware wave packing consumes — match counting is one
    /// increment per posting, so predicted scan time is linear in this
    /// number.
    pub fn predicted_postings(&self, query: &crate::model::Query) -> u64 {
        query
            .items
            .iter()
            .map(|it| self.postings_in_range(it.lo, it.hi))
            .sum()
    }

    /// Raw Position-Map entries (persistence codec).
    pub fn entries_raw(&self) -> &[PostingsEntry] {
        &self.entries
    }

    /// Reassemble an index from its raw parts (persistence codec). The
    /// caller is responsible for structural validity; `crate::io`
    /// validates before calling this.
    pub fn from_parts(
        entries: Vec<PostingsEntry>,
        list_array: Vec<ObjectId>,
        num_objects: ObjectId,
        max_object_len: usize,
        longest_list: usize,
        load_balance: Option<LoadBalanceConfig>,
    ) -> Self {
        Self {
            entries,
            list_array,
            num_objects,
            max_object_len,
            longest_list,
            load_balance,
        }
    }

    /// Invert the index back into per-object keyword multisets.
    ///
    /// Every posting contributes one keyword occurrence to its object,
    /// so the reconstructed objects have exactly the original keyword
    /// multisets (in keyword order rather than insertion order — the
    /// match-count model is order-insensitive). Backends that need to
    /// re-partition a data set they only hold as an index (e.g. the
    /// multi-device backend splitting into device-sized parts) use this.
    pub fn reconstruct_objects(&self) -> Vec<crate::model::Object> {
        let mut objects = vec![crate::model::Object::default(); self.num_objects as usize];
        for e in &self.entries {
            let slice = &self.list_array[e.start as usize..(e.start + e.len) as usize];
            for &obj in slice {
                objects[obj as usize].keywords.push(e.keyword);
            }
        }
        objects
    }

    /// Materialised postings list of one keyword (test/debug helper).
    pub fn postings_of(&self, kw: KeywordId) -> Vec<ObjectId> {
        self.segments_for_range(kw, kw)
            .flat_map(|s| self.list_array[s.start as usize..(s.start + s.len) as usize].to_vec())
            .collect()
    }
}

/// Iterator of [`InvertedIndex::coalesced_segments_for_range`]: walks the
/// in-range Position-Map entries, folding each segment that starts where
/// the previous one ended into a single growing run.
pub struct CoalescedSegments<'a> {
    entries: &'a [PostingsEntry],
    pos: usize,
    hi: KeywordId,
    pending: Option<PostingsSegment>,
}

impl Iterator for CoalescedSegments<'_> {
    type Item = PostingsSegment;

    fn next(&mut self) -> Option<PostingsSegment> {
        while self.pos < self.entries.len() && self.entries[self.pos].keyword <= self.hi {
            let e = self.entries[self.pos];
            self.pos += 1;
            if e.len == 0 {
                continue;
            }
            match self.pending {
                Some(ref mut p) if p.start + p.len == e.start => p.len += e.len,
                Some(p) => {
                    self.pending = Some(PostingsSegment {
                        start: e.start,
                        len: e.len,
                    });
                    return Some(p);
                }
                None => {
                    self.pending = Some(PostingsSegment {
                        start: e.start,
                        len: e.len,
                    });
                }
            }
        }
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::Object;

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![10, 20])); // O0
        b.add_object(&Object::new(vec![20, 30])); // O1
        b.add_object(&Object::new(vec![10, 30])); // O2
        b.build(None)
    }

    #[test]
    fn range_lookup_returns_matching_segments() {
        let idx = sample_index();
        let segs: Vec<_> = idx.segments_for_range(10, 20).collect();
        assert_eq!(segs.len(), 2);
        let all: Vec<_> = idx.segments_for_range(0, 100).collect();
        assert_eq!(all.len(), 3);
        let none: Vec<_> = idx.segments_for_range(11, 19).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn segments_address_the_list_array() {
        let idx = sample_index();
        let seg = idx.segments_for_range(30, 30).next().unwrap();
        let slice = &idx.list_array()[seg.start as usize..(seg.start + seg.len) as usize];
        assert_eq!(slice, &[1, 2]);
    }

    #[test]
    fn reconstruction_inverts_the_build() {
        let idx = sample_index();
        let objects = idx.reconstruct_objects();
        assert_eq!(objects.len(), 3);
        assert_eq!(objects[0].keywords, vec![10, 20]);
        assert_eq!(objects[1].keywords, vec![20, 30]);
        assert_eq!(objects[2].keywords, vec![10, 30]);
    }

    #[test]
    fn reconstruction_keeps_duplicate_keywords() {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![5, 5, 9]));
        let idx = b.build(None);
        let objects = idx.reconstruct_objects();
        assert_eq!(objects[0].keywords, vec![5, 5, 9]);
    }

    #[test]
    fn coalescing_merges_adjacent_segments() {
        let idx = sample_index();
        // keywords 10, 20, 30 occupy the List Array back-to-back, so a
        // full-range lookup collapses to one segment covering it all
        let all: Vec<_> = idx.coalesced_segments_for_range(0, 100).collect();
        assert_eq!(
            all,
            vec![PostingsSegment {
                start: 0,
                len: idx.list_array().len() as u32
            }]
        );
        // a sub-range coalesces only its own entries
        let lohi: Vec<_> = idx.coalesced_segments_for_range(10, 20).collect();
        assert_eq!(lohi, vec![PostingsSegment { start: 0, len: 4 }]);
        // and an empty range yields nothing
        assert!(idx.coalesced_segments_for_range(11, 19).next().is_none());
    }

    #[test]
    fn coalescing_visits_the_same_postings_in_the_same_order() {
        let idx = sample_index();
        for (lo, hi) in [(0, 100), (10, 20), (20, 30), (30, 30), (11, 19)] {
            let plain: Vec<u32> = idx
                .segments_for_range(lo, hi)
                .flat_map(|s| {
                    idx.list_array()[s.start as usize..(s.start + s.len) as usize].to_vec()
                })
                .collect();
            let coalesced: Vec<u32> = idx
                .coalesced_segments_for_range(lo, hi)
                .flat_map(|s| {
                    idx.list_array()[s.start as usize..(s.start + s.len) as usize].to_vec()
                })
                .collect();
            assert_eq!(plain, coalesced, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn coalescing_merges_load_balanced_sublists() {
        use crate::index::LoadBalanceConfig;
        let mut b = IndexBuilder::new();
        for _ in 0..20 {
            b.add_object(&Object::new(vec![7]));
        }
        let idx = b.build(Some(LoadBalanceConfig { max_list_len: 8 }));
        // the balanced index splits keyword 7 into three sublists...
        assert_eq!(idx.segments_for_range(7, 7).count(), 3);
        // ...which the host view folds back into one contiguous run
        let merged: Vec<_> = idx.coalesced_segments_for_range(7, 7).collect();
        assert_eq!(merged, vec![PostingsSegment { start: 0, len: 20 }]);
    }

    #[test]
    fn postings_in_range_sums_the_scanned_lists() {
        let idx = sample_index();
        // keywords 10, 20, 30 hold 2 postings each
        assert_eq!(idx.postings_in_range(10, 10), 2);
        assert_eq!(idx.postings_in_range(10, 20), 4);
        assert_eq!(idx.postings_in_range(0, 100), 6);
        assert_eq!(idx.postings_in_range(11, 19), 0);
        // the statistic is exactly the postings the scan visits
        for (lo, hi) in [(0, 100), (10, 20), (20, 30), (30, 30), (11, 19)] {
            let visited: u64 = idx.segments_for_range(lo, hi).map(|s| s.len as u64).sum();
            assert_eq!(idx.postings_in_range(lo, hi), visited);
        }
    }

    #[test]
    fn predicted_postings_sums_over_query_items() {
        use crate::model::{Query, QueryItem};
        let idx = sample_index();
        let q = Query::new(vec![
            QueryItem { lo: 10, hi: 20 },
            QueryItem { lo: 30, hi: 30 },
            QueryItem { lo: 99, hi: 99 },
        ]);
        assert_eq!(idx.predicted_postings(&q), 4 + 2);
        assert_eq!(idx.predicted_postings(&Query::default()), 0);
        // a load-balanced keyword's sublists all count
        use crate::index::LoadBalanceConfig;
        let mut b = IndexBuilder::new();
        for _ in 0..20 {
            b.add_object(&Object::new(vec![7]));
        }
        let balanced = b.build(Some(LoadBalanceConfig { max_list_len: 8 }));
        assert_eq!(balanced.postings_in_range(7, 7), 20);
    }

    #[test]
    fn sizes_are_accounted() {
        let idx = sample_index();
        assert_eq!(idx.device_bytes(), 6 * 4);
        assert!(idx.host_bytes() > 0);
        assert_eq!(idx.num_lists(), 3);
        assert_eq!(idx.longest_list(), 2);
    }
}
