//! The inverted index (paper §III-B): a flat *List Array* of postings in
//! device global memory plus a host-resident *Position Map* from keyword
//! to postings-list address(es).

mod builder;
mod inverted;
mod load_balance;

pub use builder::IndexBuilder;
pub use inverted::{InvertedIndex, PostingsEntry, PostingsSegment};
pub use load_balance::LoadBalanceConfig;
