//! Multiple loading (paper §III-D, Figure 6; Tables II & III).
//!
//! When the index exceeds device memory, the data set is split into
//! parts, each part indexed separately on the host. A query batch is run
//! against every part in turn — swap the part's List Array in, run the
//! match/select pipeline, collect per-part top-k — and the host merges
//! the per-part top-k lists into the global answer (correct because each
//! object's match count is computed entirely within its own part).

use std::sync::Arc;
use std::time::Instant;

use crate::exec::{elapsed_us, Engine, StageProfile};
use crate::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
use crate::model::{Object, Query};
use crate::topk::TopHit;

/// Split `objects` into parts of at most `part_size`, each with its own
/// inverted index. Object ids are global: part `p` re-labels its local
/// ids by the cumulative offset, recorded in the returned parts.
pub fn build_parts(
    objects: &[Object],
    part_size: usize,
    load_balance: Option<LoadBalanceConfig>,
) -> Vec<IndexPart> {
    assert!(part_size > 0, "part size must be positive");
    let mut parts = Vec::new();
    let mut offset = 0u32;
    for chunk in objects.chunks(part_size) {
        let mut b = IndexBuilder::new();
        b.add_objects(chunk.iter());
        parts.push(IndexPart {
            index: Arc::new(b.build(load_balance)),
            id_offset: offset,
        });
        offset += chunk.len() as u32;
    }
    parts
}

/// One part of a multi-load data set.
#[derive(Clone)]
pub struct IndexPart {
    pub index: Arc<InvertedIndex>,
    /// Global id of this part's local object 0.
    pub id_offset: u32,
}

/// Timing breakdown of a multi-load search (Tables II/III): the extra
/// steps — per-part index swapping and final result merging — are
/// reported separately from the search pipeline itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiLoadReport {
    /// Simulated time spent swapping part indexes into device memory.
    pub index_transfer_us: f64,
    /// Accumulated search-stage profile over all parts.
    pub stages: StageProfile,
    /// Host wall-clock of the final merge, microseconds.
    pub merge_host_us: f64,
    pub parts: usize,
}

impl MultiLoadReport {
    /// Total simulated time (transfers + kernels).
    pub fn sim_total_us(&self) -> f64 {
        self.index_transfer_us + self.stages.sim_total_us()
    }
}

/// Search `queries` over all `parts`, merging per-part top-k into the
/// global top-k per query.
pub fn multi_load_search(
    engine: &Engine,
    parts: &[IndexPart],
    queries: &[Query],
    k: usize,
) -> (Vec<Vec<TopHit>>, MultiLoadReport) {
    let mut report = MultiLoadReport {
        parts: parts.len(),
        ..Default::default()
    };
    let mut merged: Vec<Vec<TopHit>> = vec![Vec::new(); queries.len()];

    for part in parts {
        // swap this part's List Array into device memory
        let dindex = engine
            .upload(Arc::clone(&part.index))
            .expect("a single part must fit in device memory");
        report.index_transfer_us += dindex.upload_sim_us;

        let out = engine.search(&dindex, queries, k);
        report.stages.accumulate(&out.profile);
        for (qi, hits) in out.results.into_iter().enumerate() {
            merged[qi].extend(hits.into_iter().map(|h| TopHit {
                id: h.id + part.id_offset,
                count: h.count,
            }));
        }
    }

    let merge_started = Instant::now();
    for hits in &mut merged {
        hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        hits.truncate(k);
    }
    report.merge_host_us = elapsed_us(merge_started);
    (merged, report)
}

/// Multi-device variant: parts are distributed round-robin over several
/// engines (the paper notes most PCs take two to four GPUs, §I) and
/// processed concurrently, one host thread per device; the host merge is
/// unchanged. Returns per-query top-k plus each device's report.
pub fn multi_device_search(
    engines: &[Engine],
    parts: &[IndexPart],
    queries: &[Query],
    k: usize,
) -> (Vec<Vec<TopHit>>, Vec<MultiLoadReport>) {
    assert!(!engines.is_empty(), "need at least one device");
    let assignments: Vec<Vec<IndexPart>> = {
        let mut per_device: Vec<Vec<IndexPart>> = vec![Vec::new(); engines.len()];
        for (i, part) in parts.iter().enumerate() {
            per_device[i % engines.len()].push(part.clone());
        }
        per_device
    };

    let mut merged: Vec<Vec<TopHit>> = vec![Vec::new(); queries.len()];
    let mut reports = Vec::with_capacity(engines.len());
    let results: Vec<(Vec<Vec<TopHit>>, MultiLoadReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = engines
            .iter()
            .zip(&assignments)
            .map(|(engine, my_parts)| {
                scope.spawn(move || multi_load_search(engine, my_parts, queries, k))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("device driver thread panicked"))
            .collect()
    });

    let merge_started = Instant::now();
    for (partial, report) in results {
        reports.push(report);
        for (qi, hits) in partial.into_iter().enumerate() {
            merged[qi].extend(hits);
        }
    }
    for hits in &mut merged {
        hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        hits.truncate(k);
    }
    if let Some(r) = reports.last_mut() {
        r.merge_host_us += elapsed_us(merge_started);
    }
    (merged, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    use crate::model::QueryItem;

    fn objects(n: u32) -> Vec<Object> {
        // object i holds keywords {i % 7, 100 + i % 3}
        (0..n)
            .map(|i| Object::new(vec![i % 7, 100 + i % 3]))
            .collect()
    }

    #[test]
    fn parts_cover_all_objects_with_offsets() {
        let objs = objects(25);
        let parts = build_parts(&objs, 10, None);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].id_offset, 0);
        assert_eq!(parts[1].id_offset, 10);
        assert_eq!(parts[2].id_offset, 20);
        assert_eq!(parts[2].index.num_objects(), 5);
    }

    #[test]
    fn multi_load_equals_single_load() {
        let objs = objects(64);
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let queries = vec![
            Query::new(vec![QueryItem::exact(3), QueryItem::exact(101)]),
            Query::new(vec![QueryItem::range(0, 2)]),
        ];
        let k = 12;

        // single load
        let single_parts = build_parts(&objs, objs.len(), None);
        let (single, _) = multi_load_search(&engine, &single_parts, &queries, k);
        // four parts
        let parts = build_parts(&objs, 17, None);
        let (multi, report) = multi_load_search(&engine, &parts, &queries, k);

        assert_eq!(report.parts, 4);
        for q in 0..queries.len() {
            let s: Vec<u32> = single[q].iter().map(|h| h.count).collect();
            let m: Vec<u32> = multi[q].iter().map(|h| h.count).collect();
            assert_eq!(s, m, "query {q} count profile differs");
        }
        assert!(report.index_transfer_us > 0.0);
        assert!(report.sim_total_us() > report.index_transfer_us);
    }

    #[test]
    fn multi_device_equals_single_device() {
        let objs = objects(80);
        let queries = vec![
            Query::new(vec![QueryItem::exact(2), QueryItem::exact(100)]),
            Query::new(vec![QueryItem::range(3, 6)]),
        ];
        let k = 9;
        let parts = build_parts(&objs, 13, None);

        let one = Engine::new(Arc::new(Device::with_defaults()));
        let (single, _) = multi_load_search(&one, &parts, &queries, k);

        let engines: Vec<Engine> = (0..3)
            .map(|_| Engine::new(Arc::new(Device::with_defaults())))
            .collect();
        let (multi, reports) = multi_device_search(&engines, &parts, &queries, k);
        assert_eq!(reports.len(), 3);
        for q in 0..queries.len() {
            let s: Vec<u32> = single[q].iter().map(|h| h.count).collect();
            let m: Vec<u32> = multi[q].iter().map(|h| h.count).collect();
            assert_eq!(s, m, "query {q}");
        }
        // parts were spread: no single device saw them all
        assert!(reports.iter().all(|r| r.parts < parts.len()));
        assert_eq!(reports.iter().map(|r| r.parts).sum::<usize>(), parts.len());
    }

    #[test]
    fn merge_respects_global_ids() {
        let objs = objects(30);
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let parts = build_parts(&objs, 7, None);
        let (results, _) = multi_load_search(&engine, &parts, &[Query::from_keywords(&[5])], 30);
        // objects with keyword 5 are ids 5, 12, 19, 26
        let mut ids: Vec<u32> = results[0].iter().map(|h| h.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 12, 19, 26]);
    }
}
