//! The Gate: ZipperArray + AuditThreshold (paper §III-C1).
//!
//! `ZA[i]` tracks `min(zc_i, k)` where `zc_i` is the number of objects
//! whose count has reached `i`; `AT` is the smallest index with
//! `ZA[AT] < k`. The gate's job: once k objects have reached count `i`,
//! no object still below `i` can be a top-k candidate, so the threshold
//! for entering the upper-level hash table rises. Lemma 3.1 guarantees
//! `ZA[AT] < k` and `ZA[AT-1] >= k` after all updates; Theorem 3.1 then
//! gives `MC_k = AT - 1`.

use gpu_sim::{GlobalU32, ThreadCtx};

/// Per-query ZipperArray + AuditThreshold in device memory.
pub struct Gate {
    /// Concatenated per-query ZipperArrays, `za_len` words each.
    /// 1-based indexing: index 0 is unused padding.
    za: GlobalU32,
    /// One AuditThreshold word per query, initialised to 1.
    at: GlobalU32,
    za_len: usize,
    k: u32,
}

impl Gate {
    pub fn new(num_queries: usize, za_len: usize, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(za_len >= 3, "ZA needs indices 0..=bound+1");
        let at = GlobalU32::zeroed(num_queries);
        at.fill(1);
        Self {
            za: GlobalU32::zeroed(num_queries * za_len),
            at,
            za_len,
            k,
        }
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    /// Device bytes of ZA + AT.
    pub fn size_bytes(&self) -> u64 {
        self.za.size_bytes() + self.at.size_bytes()
    }

    /// Current AuditThreshold of `query` (device-side).
    #[inline]
    pub fn audit_threshold(&self, ctx: &ThreadCtx, query: usize) -> u32 {
        self.at.load(ctx, query)
    }

    /// Algorithm 1 lines 5-7: record that some object's count reached
    /// `val`, then advance `AT` while `ZA[AT] >= k`.
    ///
    /// `val` must be within the count bound the gate was sized for; a
    /// violation indicates an undersized [`crate::model::count_bound`]
    /// and is clamped (debug builds assert) so device memory is never
    /// corrupted and the advance loop always terminates.
    #[inline]
    pub fn bump(&self, ctx: &ThreadCtx, query: usize, val: u32) {
        let base = query * self.za_len;
        debug_assert!((val as usize) < self.za_len, "count exceeded the bound");
        let val = (val as usize).min(self.za_len - 1);
        self.za.atomic_add(ctx, base + val, 1);
        // advance AT; the CAS loop tolerates races between lanes. AT is
        // capped at bound + 1 (= za_len - 1): ZA there is only non-zero
        // if the bound was violated, and advancing past it would never
        // terminate.
        loop {
            let at = self.at.load(ctx, query);
            if at as usize >= self.za_len - 1 {
                break;
            }
            if self.za.load(ctx, base + at as usize) >= self.k {
                // whether our CAS wins or another lane's does, progress
                // was made; re-check from the new AT
                let _ = self.at.atomic_cas(ctx, query, at, at + 1);
            } else {
                break;
            }
        }
    }

    /// Host-side read of the final AuditThreshold.
    pub fn read_at_host(&self, query: usize) -> u32 {
        self.at.read_host(query)
    }

    /// Host-side read of `ZA[idx]` for `query` (white-box tests).
    pub fn read_za_host(&self, query: usize, idx: usize) -> u32 {
        self.za.read_host(query * self.za_len + idx)
    }

    /// The raw AT buffer (the hash table reads it for expiry checks).
    pub fn at_buffer(&self) -> &GlobalU32 {
        &self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, LaunchConfig};

    fn run_bumps(gate: &Gate, bumps: &[(usize, u32)]) {
        let device = Device::with_defaults();
        device.launch("bumps", LaunchConfig::new(1, 1), move |ctx| {
            for &(q, v) in bumps {
                gate.bump(ctx, q, v);
            }
        });
    }

    #[test]
    fn at_starts_at_one() {
        let gate = Gate::new(3, 10, 5);
        for q in 0..3 {
            assert_eq!(gate.read_at_host(q), 1);
        }
    }

    #[test]
    fn at_advances_when_k_objects_reach_it() {
        let gate = Gate::new(1, 6, 2); // k = 2, bound 4
        run_bumps(&gate, &[(0, 1)]);
        assert_eq!(gate.read_at_host(0), 1, "one object at 1 < k");
        run_bumps(&gate, &[(0, 1)]);
        assert_eq!(gate.read_at_host(0), 2, "k objects reached 1");
    }

    #[test]
    fn at_skips_multiple_levels_at_once() {
        let gate = Gate::new(1, 6, 1); // k = 1
                                       // counts reach 1, 2, 3 before AT is consulted again
        run_bumps(&gate, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(gate.read_at_host(0), 4);
    }

    /// Lemma 3.1: after all updates, ZA[AT] < k and ZA[AT-1] >= k
    /// (whenever AT > 1).
    #[test]
    fn lemma_3_1_invariant_holds() {
        let gate = Gate::new(1, 12, 3);
        let bumps: Vec<(usize, u32)> = (0..30).map(|i| (0usize, (i % 10) + 1)).collect();
        run_bumps(&gate, &bumps);
        let at = gate.read_at_host(0) as usize;
        assert!(gate.read_za_host(0, at.min(11)) < 3);
        if at > 1 {
            assert!(gate.read_za_host(0, at - 1) >= 3);
        }
    }

    #[test]
    fn queries_are_independent() {
        let gate = Gate::new(2, 6, 1);
        run_bumps(&gate, &[(0, 1), (0, 2)]);
        assert_eq!(gate.read_at_host(0), 3);
        assert_eq!(gate.read_at_host(1), 1);
    }

    #[test]
    fn concurrent_bumps_respect_lemma() {
        let gate = Gate::new(1, 18, 4);
        let device = Device::with_defaults();
        let g = &gate;
        // 512 lanes each bump values 1..=16 for distinct "objects"
        device.launch("conc", LaunchConfig::new(16, 32), move |ctx| {
            let v = (ctx.global_id() % 16) as u32 + 1;
            g.bump(ctx, 0, v);
        });
        let at = gate.read_at_host(0) as usize;
        // 32 objects per value level, k = 4 -> AT should reach 17
        assert_eq!(at, 17);
        assert!(gate.read_za_host(0, 17) < 4);
        assert!(gate.read_za_host(0, 16) >= 4);
    }
}
