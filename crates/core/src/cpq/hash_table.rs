//! The c-PQ upper level: a lock-free hash table with the *modified Robin
//! Hood scheme* (paper §III-C2).
//!
//! Classic Robin Hood hashing tracks each entry's *age* (probe distance)
//! and lets an inserting entry evict a resident with a smaller age. The
//! paper's modification exploits Theorem 3.1: any entry whose count is
//! below `AT - 1` can never be a top-k candidate, so it is *expired* and
//! may be overwritten in place regardless of ages — as `AT` rises, most
//! of the table becomes overwritable and probe sequences stay short.
//!
//! Slots are single u64 words (`key << 32 | count`) manipulated with CAS,
//! following the lock-free design the paper cites; duplicate keys can
//! transiently exist under concurrency, so readers aggregate by key
//! taking the maximum count (tolerated by the selection rule).

use gpu_sim::{GlobalU32, GlobalU64, ThreadCtx};

use crate::model::ObjectId;

/// Marker for a never-written slot.
pub const EMPTY_SLOT: u64 = u64::MAX;

#[inline]
fn pack(key: ObjectId, val: u32) -> u64 {
    ((key as u64) << 32) | val as u64
}

#[inline]
fn unpack(slot: u64) -> (ObjectId, u32) {
    ((slot >> 32) as u32, slot as u32)
}

/// Multiplicative hash — cheap, well-mixing for dense object ids.
#[inline]
fn slot_hash(key: u32, size: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B1);
    (h ^ (h >> 16)) as usize & (size - 1)
}

/// Concatenated per-query Robin Hood tables in device memory.
/// `slots_per_query` must be a power of two.
pub struct RobinHoodTable {
    slots: GlobalU64,
    slots_per_query: usize,
}

impl RobinHoodTable {
    pub fn new(num_queries: usize, slots_per_query: usize) -> Self {
        assert!(
            slots_per_query.is_power_of_two(),
            "table size must be a power of two"
        );
        let slots = GlobalU64::zeroed(num_queries * slots_per_query);
        slots.fill(EMPTY_SLOT);
        Self {
            slots,
            slots_per_query,
        }
    }

    pub fn slots_per_query(&self) -> usize {
        self.slots_per_query
    }

    pub fn size_bytes(&self) -> u64 {
        self.slots.size_bytes()
    }

    /// Probe distance of a resident `key` found at `pos`.
    #[inline]
    fn age_of(&self, key: u32, pos: usize) -> usize {
        let ideal = slot_hash(key, self.slots_per_query);
        (pos + self.slots_per_query - ideal) & (self.slots_per_query - 1)
    }

    /// Insert or raise `(key, val)` in `query`'s table. `at`/`at_idx`
    /// locate the query's AuditThreshold for the expired-overwrite rule.
    ///
    /// Progress guarantee: each iteration either CASes (bounded retries
    /// under contention) or advances the probe cursor; the cursor wraps
    /// at most twice before the entry is dropped, which by Theorem 3.1
    /// sizing can only happen to an entry that is itself expired.
    pub fn insert(
        &self,
        ctx: &ThreadCtx,
        query: usize,
        key: ObjectId,
        val: u32,
        at: &GlobalU32,
        at_idx: usize,
    ) {
        let size = self.slots_per_query;
        let base = query * size;
        let mut key = key;
        let mut val = val;
        let mut pos = slot_hash(key, size);
        let mut age = 0usize;
        let mut probes = 0usize;
        let max_probes = size * 2;

        while probes < max_probes {
            let slot = self.slots.load(ctx, base + pos);
            if slot == EMPTY_SLOT {
                if self
                    .slots
                    .atomic_cas(ctx, base + pos, EMPTY_SLOT, pack(key, val))
                    .is_ok()
                {
                    return;
                }
                continue; // lost the race; re-read the same slot
            }
            let (skey, sval) = unpack(slot);
            if skey == key {
                if sval >= val {
                    return; // a newer update already recorded more
                }
                if self
                    .slots
                    .atomic_cas(ctx, base + pos, slot, pack(key, val))
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // modified Robin Hood: expired residents are free real estate
            let threshold = at.load(ctx, at_idx);
            if sval + 1 < threshold {
                if self
                    .slots
                    .atomic_cas(ctx, base + pos, slot, pack(key, val))
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // classic Robin Hood: steal from the rich (smaller age)
            let resident_age = self.age_of(skey, pos);
            if resident_age < age {
                if self
                    .slots
                    .atomic_cas(ctx, base + pos, slot, pack(key, val))
                    .is_ok()
                {
                    // carry the evicted entry onwards
                    key = skey;
                    val = sval;
                    age = resident_age;
                }
                continue;
            }
            pos = (pos + 1) & (size - 1);
            age += 1;
            probes += 1;
        }
        // Table saturated with live entries: with Theorem 3.1 sizing this
        // entry must itself be below the final threshold; drop it.
    }

    /// Device-side slot read (selection kernel).
    #[inline]
    pub fn load_slot(&self, ctx: &ThreadCtx, query: usize, slot: usize) -> u64 {
        self.slots.load(ctx, query * self.slots_per_query + slot)
    }

    /// Unpack helper exposed for kernels.
    #[inline]
    pub fn decode(slot: u64) -> (ObjectId, u32) {
        unpack(slot)
    }

    /// Host-side dump of `query`'s occupied slots (tests / host select).
    pub fn host_entries(&self, query: usize) -> Vec<(ObjectId, u32)> {
        let base = query * self.slots_per_query;
        (0..self.slots_per_query)
            .filter_map(|i| {
                let slot = self.slots.read_host(base + i);
                (slot != EMPTY_SLOT).then(|| unpack(slot))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, LaunchConfig};

    fn at_stuck_at(v: u32) -> GlobalU32 {
        let at = GlobalU32::zeroed(1);
        at.fill(v);
        at
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (k, v) = unpack(pack(0xDEAD_BEEF, 42));
        assert_eq!(k, 0xDEAD_BEEF);
        assert_eq!(v, 42);
    }

    #[test]
    fn insert_then_read_back() {
        let ht = RobinHoodTable::new(1, 64);
        let at = at_stuck_at(1);
        let device = Device::with_defaults();
        let h = &ht;
        let a = &at;
        device.launch("ins", LaunchConfig::new(1, 1), move |ctx| {
            h.insert(ctx, 0, 7, 3, a, 0);
            h.insert(ctx, 0, 9, 1, a, 0);
        });
        let mut entries = ht.host_entries(0);
        entries.sort_unstable();
        assert_eq!(entries, vec![(7, 3), (9, 1)]);
    }

    #[test]
    fn same_key_keeps_maximum_count() {
        let ht = RobinHoodTable::new(1, 64);
        let at = at_stuck_at(1);
        let device = Device::with_defaults();
        let (h, a) = (&ht, &at);
        device.launch("max", LaunchConfig::new(1, 1), move |ctx| {
            h.insert(ctx, 0, 5, 2, a, 0);
            h.insert(ctx, 0, 5, 6, a, 0);
            h.insert(ctx, 0, 5, 4, a, 0); // stale lower value must not win
        });
        assert_eq!(ht.host_entries(0), vec![(5, 6)]);
    }

    #[test]
    fn expired_entries_are_overwritten() {
        // force both keys to the same bucket of a tiny 2-slot table? use
        // a 4-slot table and fill it with low-count entries, then raise AT
        let ht = RobinHoodTable::new(1, 4);
        let at = GlobalU32::zeroed(1);
        at.fill(1);
        let device = Device::with_defaults();
        let (h, a) = (&ht, &at);
        device.launch("expire", LaunchConfig::new(1, 1), move |ctx| {
            for key in 0..4u32 {
                h.insert(ctx, 0, key, 1, a, 0);
            }
            // everything with count < AT-1 = 9 is now expired
            a.store(ctx, 0, 10);
            h.insert(ctx, 0, 100, 9, a, 0);
        });
        let entries = ht.host_entries(0);
        assert!(
            entries.contains(&(100, 9)),
            "live entry must displace an expired one: {entries:?}"
        );
    }

    #[test]
    fn queries_do_not_share_slots() {
        let ht = RobinHoodTable::new(2, 64);
        let at = at_stuck_at(1);
        let device = Device::with_defaults();
        let (h, a) = (&ht, &at);
        device.launch("iso", LaunchConfig::new(1, 1), move |ctx| {
            h.insert(ctx, 0, 1, 1, a, 0);
            h.insert(ctx, 1, 2, 2, a, 0);
        });
        assert_eq!(ht.host_entries(0), vec![(1, 1)]);
        assert_eq!(ht.host_entries(1), vec![(2, 2)]);
    }

    #[test]
    fn concurrent_inserts_keep_every_live_maximum() {
        let n = 200u32;
        let ht = RobinHoodTable::new(1, 1024);
        let at = at_stuck_at(1);
        let device = Device::with_defaults();
        let (h, a) = (&ht, &at);
        // each key inserted by several lanes with different counts; the
        // max per key must survive
        device.launch("conc", LaunchConfig::new(8, 128), move |ctx| {
            let gid = ctx.global_id() as u32;
            let key = gid % n;
            let val = gid / n + 1;
            h.insert(ctx, 0, key, val, a, 0);
        });
        let mut best = std::collections::HashMap::new();
        for (k, v) in ht.host_entries(0) {
            let e = best.entry(k).or_insert(0u32);
            *e = (*e).max(v);
        }
        // 1024 lanes over 200 keys: keys 0..(1024-5*200)=24 get value 6,
        // wait: gid in 0..1024, val = gid/200+1 in 1..=6
        for key in 0..n {
            let expected = if key < 1024 % n {
                1024 / n + 1
            } else {
                1024 / n
            };
            assert_eq!(best.get(&key), Some(&{ expected }), "key {key}");
        }
    }

    #[test]
    fn robin_hood_handles_collision_chains() {
        // a small power-of-two table forces long probe chains
        let ht = RobinHoodTable::new(1, 8);
        let at = at_stuck_at(1);
        let device = Device::with_defaults();
        let (h, a) = (&ht, &at);
        device.launch("chain", LaunchConfig::new(1, 1), move |ctx| {
            for key in 0..8u32 {
                h.insert(ctx, 0, key, key + 1, a, 0);
            }
        });
        let mut entries = ht.host_entries(0);
        entries.sort_unstable();
        assert_eq!(entries.len(), 8, "all 8 entries must fit in 8 slots");
        for (i, &(k, v)) in entries.iter().enumerate() {
            assert_eq!((k, v), (i as u32, i as u32 + 1));
        }
    }
}
