//! The Bitmap Counter — c-PQ's lower level (paper §III-C).
//!
//! One packed b-bit saturating counter per (query, object). The paper's
//! observation: the count bound is known up front (e.g. the number of
//! dimensions), so a handful of bits suffice instead of a 32-bit word —
//! a 4-10x space saving that directly increases the number of queries a
//! batch can hold (Table IV).
//!
//! Field widths are restricted to powers of two (1, 2, 4, 8, 16, 32 bits)
//! so no counter ever straddles a word boundary and each increment is a
//! single-word CAS loop.

use gpu_sim::{GlobalU32, ThreadCtx};

/// Smallest power-of-two field width whose max value (`2^b - 1`) can hold
/// `bound`.
pub fn bits_for_bound(bound: u32) -> u32 {
    for bits in [1u32, 2, 4, 8, 16] {
        let max = (1u64 << bits) - 1;
        if bound as u64 <= max {
            return bits;
        }
    }
    32
}

/// A dense array of packed b-bit saturating counters in device memory.
pub struct BitmapCounter {
    words: GlobalU32,
    bits: u32,
    num_counters: usize,
}

impl BitmapCounter {
    /// Allocate `num_counters` zeroed counters of `bits` width each.
    /// `bits` must be one of 1, 2, 4, 8, 16, 32.
    pub fn new(num_counters: usize, bits: u32) -> Self {
        assert!(
            matches!(bits, 1 | 2 | 4 | 8 | 16 | 32),
            "field width must be a power of two <= 32, got {bits}"
        );
        let per_word = 32 / bits as usize;
        let words = num_counters.div_ceil(per_word);
        Self {
            words: GlobalU32::zeroed(words),
            bits,
            num_counters,
        }
    }

    pub fn bits(&self) -> u32 {
        self.bits
    }

    pub fn num_counters(&self) -> usize {
        self.num_counters
    }

    /// Device bytes occupied by the packed words.
    pub fn size_bytes(&self) -> u64 {
        self.words.size_bytes()
    }

    #[inline]
    fn field(&self, idx: usize) -> (usize, u32, u32) {
        let per_word = (32 / self.bits) as usize;
        let word = idx / per_word;
        let shift = ((idx % per_word) as u32) * self.bits;
        let mask = if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        (word, shift, mask)
    }

    /// Atomically increment counter `idx`, saturating at the field
    /// maximum. Returns the value *after* the increment (the `val` of
    /// Algorithm 1 line 1).
    #[inline]
    pub fn increment(&self, ctx: &ThreadCtx, idx: usize) -> u32 {
        debug_assert!(idx < self.num_counters);
        let (word, shift, mask) = self.field(idx);
        loop {
            let w = self.words.load(ctx, word);
            let cur = (w >> shift) & mask;
            if cur == mask {
                return mask; // saturated — counts are bounded, so this
                             // only happens if the bound was mis-sized
            }
            let nw = (w & !(mask << shift)) | ((cur + 1) << shift);
            if self.words.atomic_cas(ctx, word, w, nw).is_ok() {
                return cur + 1;
            }
        }
    }

    /// Device-side read of counter `idx`.
    #[inline]
    pub fn get(&self, ctx: &ThreadCtx, idx: usize) -> u32 {
        let (word, shift, mask) = self.field(idx);
        (self.words.load(ctx, word) >> shift) & mask
    }

    /// Host-side read of counter `idx` (tests, result checking).
    pub fn read_host(&self, idx: usize) -> u32 {
        let (word, shift, mask) = self.field(idx);
        (self.words.read_host(word) >> shift) & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, LaunchConfig};

    #[test]
    fn bits_for_bound_picks_smallest_field() {
        assert_eq!(bits_for_bound(1), 1);
        assert_eq!(bits_for_bound(2), 2);
        assert_eq!(bits_for_bound(3), 2);
        assert_eq!(bits_for_bound(4), 4);
        assert_eq!(bits_for_bound(15), 4);
        assert_eq!(bits_for_bound(16), 8);
        assert_eq!(bits_for_bound(255), 8);
        assert_eq!(bits_for_bound(256), 16);
        assert_eq!(bits_for_bound(70_000), 32);
    }

    #[test]
    fn packing_is_dense() {
        let bc = BitmapCounter::new(1000, 4);
        // 8 counters per word -> 125 words -> 500 bytes
        assert_eq!(bc.size_bytes(), 500);
    }

    #[test]
    fn increments_are_isolated_between_fields() {
        let bc = BitmapCounter::new(16, 4);
        let device = Device::with_defaults();
        let bcr = &bc;
        device.launch("inc", LaunchConfig::new(1, 1), move |ctx| {
            for _ in 0..3 {
                bcr.increment(ctx, 5);
            }
            bcr.increment(ctx, 6);
        });
        assert_eq!(bc.read_host(4), 0);
        assert_eq!(bc.read_host(5), 3);
        assert_eq!(bc.read_host(6), 1);
        assert_eq!(bc.read_host(7), 0);
    }

    #[test]
    fn increment_saturates_at_field_max() {
        let bc = BitmapCounter::new(4, 2);
        let device = Device::with_defaults();
        let bcr = &bc;
        device.launch("sat", LaunchConfig::new(1, 1), move |ctx| {
            for _ in 0..10 {
                bcr.increment(ctx, 0);
            }
        });
        assert_eq!(bc.read_host(0), 3);
    }

    #[test]
    fn concurrent_increments_do_not_interfere() {
        // 256 lanes, each incrementing its own 8-bit field 7 times, with
        // 4 fields per word — heavy same-word CAS contention.
        let n = 256usize;
        let bc = BitmapCounter::new(n, 8);
        let device = Device::with_defaults();
        let bcr = &bc;
        device.launch("contend", LaunchConfig::new(8, 32), move |ctx| {
            let gid = ctx.global_id();
            for _ in 0..7 {
                bcr.increment(ctx, gid);
            }
        });
        for i in 0..n {
            assert_eq!(bc.read_host(i), 7, "counter {i}");
        }
    }

    #[test]
    fn full_width_counters_work() {
        let bc = BitmapCounter::new(3, 32);
        let device = Device::with_defaults();
        let bcr = &bc;
        device.launch("wide", LaunchConfig::new(1, 1), move |ctx| {
            bcr.increment(ctx, 2);
            bcr.increment(ctx, 2);
        });
        assert_eq!(bc.read_host(2), 2);
        assert_eq!(bc.read_host(0), 0);
    }

    #[test]
    #[should_panic(expected = "field width")]
    fn rejects_non_power_of_two_width() {
        BitmapCounter::new(8, 3);
    }
}
