//! Count Priority Queue (c-PQ), paper §III-C.
//!
//! c-PQ replaces the naive per-query Count Table with a two-level
//! structure that (1) makes top-k extraction a single scan of a small
//! hash table instead of a k-selection over all `n` counts, and (2)
//! shrinks per-query memory from `4n` bytes to a packed bitmap plus a
//! small table — this is what lets GENIE run 1024 queries per batch when
//! the SPQ design caps out at ~256 (Table IV, Fig. 13).
//!
//! Components (Figure 5):
//! * [`BitmapCounter`] — lower level: packed b-bit counters, one per
//!   object, where `2^b - 1 >=` the count bound.
//! * the *Gate* ([`Gate`]) — a ZipperArray `ZA` plus AuditThreshold `AT`
//!   deciding which (id, count) pairs may enter the upper level.
//! * [`RobinHoodTable`] — upper level: a lock-free hash table with the
//!   modified Robin Hood scheme (entries whose count fell below `AT-1`
//!   are expired and may be overwritten in place).
//!
//! After the scan finishes, Theorem 3.1 gives `MC_k = AT - 1`: the top-k
//! result is read off the hash table by keeping entries with count
//! `>= AT - 1`.

mod bitmap_counter;
mod gate;
mod hash_table;

pub use bitmap_counter::{bits_for_bound, BitmapCounter};
pub use gate::Gate;
pub use hash_table::{RobinHoodTable, EMPTY_SLOT};

use gpu_sim::{GlobalU32, ThreadCtx};

use crate::model::ObjectId;

/// Geometry of a batch of per-query c-PQs living side by side in device
/// memory.
#[derive(Debug, Clone, Copy)]
pub struct CpqLayout {
    /// Queries in the batch.
    pub num_queries: usize,
    /// Objects in the (loaded part of the) data set.
    pub num_objects: usize,
    /// Count bound: no `MC(Q, O)` can exceed this (paper: e.g. the number
    /// of dimensions for high-dimensional points).
    pub bound: u32,
    /// Top-k requested.
    pub k: usize,
}

impl CpqLayout {
    /// Hash-table slots reserved per query. Theorem 3.1 bounds live
    /// entries by `O(k * AT) <= O(k * bound)`; a 2x cushion plus a
    /// 64-slot floor absorbs concurrent-insert overshoot.
    pub fn ht_slots_per_query(&self) -> usize {
        (2 * self.k * self.bound as usize)
            .next_power_of_two()
            .max(64)
    }

    /// ZipperArray length per query: 1-based indices `1..=bound`, plus
    /// index 0 (unused) and `bound + 1` (read by the AT advance loop).
    pub fn za_len_per_query(&self) -> usize {
        self.bound as usize + 2
    }

    /// Capacity of the compact selection-output buffer per query.
    /// Entries with count >= AT-1 number ~k per threshold level the gate
    /// passed through plus concurrency overshoot; 4k + 64 absorbs both
    /// (overflowing ties are dropped — the paper breaks ties randomly).
    pub fn select_out_per_query(&self) -> usize {
        (4 * self.k + 64).min(self.ht_slots_per_query())
    }

    /// Device bytes consumed per query — the Table IV metric.
    pub fn bytes_per_query(&self) -> u64 {
        let bits = bits_for_bound(self.bound) as u64;
        let bc_bytes = (self.num_objects as u64 * bits).div_ceil(8);
        let ht_bytes = self.ht_slots_per_query() as u64 * 8;
        let out_bytes = self.select_out_per_query() as u64 * 8;
        let za_bytes = self.za_len_per_query() as u64 * 4;
        bc_bytes + ht_bytes + out_bytes + za_bytes + 4 // + AT
    }

    /// Total device bytes for the whole batch.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_query() * self.num_queries as u64
    }
}

/// A batch of per-query c-PQs in device memory.
pub struct Cpq {
    layout: CpqLayout,
    bitmap: BitmapCounter,
    table: RobinHoodTable,
    gate: Gate,
}

impl Cpq {
    /// Allocate device state for `layout`. `AT` starts at 1 for every
    /// query, counters and tables zeroed/empty.
    pub fn new(layout: CpqLayout) -> Self {
        Self {
            bitmap: BitmapCounter::new(
                layout.num_queries * layout.num_objects,
                bits_for_bound(layout.bound),
            ),
            table: RobinHoodTable::new(layout.num_queries, layout.ht_slots_per_query()),
            gate: Gate::new(
                layout.num_queries,
                layout.za_len_per_query(),
                layout.k as u32,
            ),
            layout,
        }
    }

    pub fn layout(&self) -> &CpqLayout {
        &self.layout
    }

    /// Algorithm 1: one thread observed `object` in a postings list of
    /// `query`; update the c-PQ.
    #[inline]
    pub fn update(&self, ctx: &ThreadCtx, query: usize, object: ObjectId) {
        let counter_idx = query * self.layout.num_objects + object as usize;
        // lines 1-2: val = ++BC[O]
        let val = self.bitmap.increment(ctx, counter_idx);
        // line 3: gate check
        if val >= self.gate.audit_threshold(ctx, query) {
            // line 4: put (O, val) into the hash table
            self.table
                .insert(ctx, query, object, val, self.gate.at_buffer(), query);
            // lines 5-7: ZA[val] += 1; while ZA[AT] >= k { AT += 1 }
            self.gate.bump(ctx, query, val);
        }
    }

    /// Final AuditThreshold of `query` (host-side read). By Theorem 3.1
    /// the k-th match count equals this minus one.
    pub fn final_audit_threshold(&self, query: usize) -> u32 {
        self.gate.read_at_host(query)
    }

    /// The hash table (for the selection kernel).
    pub fn table(&self) -> &RobinHoodTable {
        &self.table
    }

    /// The bitmap counter (exposed for white-box tests).
    pub fn bitmap(&self) -> &BitmapCounter {
        &self.bitmap
    }

    /// The gate (exposed for white-box tests).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// Raw AT buffer, one word per query.
    pub fn at_buffer(&self) -> &GlobalU32 {
        self.gate.at_buffer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, LaunchConfig};

    /// Walks the worked Example 3.1 of the paper: data of Figure 1,
    /// query Q1, k = 1, count bound 3. Updates are applied in the order
    /// the example uses; the final state must be AT = 4 and the top-1
    /// object O2 with count 3.
    #[test]
    fn paper_example_3_1() {
        let layout = CpqLayout {
            num_queries: 1,
            num_objects: 3,
            bound: 3,
            k: 1,
        };
        let cpq = Cpq::new(layout);
        let device = Device::with_defaults();
        // postings scan order from the example:
        // (A,[1,2]) -> O1, O2, O3 ; (B,[1,1]) -> O2 ; (C,[2,3]) -> O2, O3
        let order: Vec<ObjectId> = vec![0, 1, 2, 1, 1, 2];
        let cpq_ref = &cpq;
        let ord = &order;
        device.launch("example31", LaunchConfig::new(1, 1), move |ctx| {
            for &obj in ord {
                cpq_ref.update(ctx, 0, obj);
            }
        });
        assert_eq!(cpq.final_audit_threshold(0), 4, "AT must end at 4");
        let entries = cpq.table().host_entries(0);
        // O2 present with its final count 3
        assert!(entries.iter().any(|&(id, c)| id == 1 && c == 3));
        // nothing in the HT can exceed the bound
        assert!(entries.iter().all(|&(_, c)| c <= 3));
    }

    #[test]
    fn layout_memory_accounting() {
        let layout = CpqLayout {
            num_queries: 4,
            num_objects: 1_000_000,
            bound: 14,
            k: 10,
        };
        // 14 -> 4 bits per counter: 1M counters = 500 KB
        let per_query = layout.bytes_per_query();
        assert!(per_query >= 500_000);
        assert_eq!(layout.total_bytes(), 4 * per_query);
        // c-PQ must be far smaller than a 32-bit count table would be
        // (the Table IV effect: ~1/5 to 1/10 of the SPQ footprint)
        assert!(per_query < 1_000_000 * 4 / 5);
    }

    #[test]
    fn ht_slots_have_a_floor() {
        let layout = CpqLayout {
            num_queries: 1,
            num_objects: 10,
            bound: 1,
            k: 1,
        };
        assert!(layout.ht_slots_per_query() >= 64);
    }

    /// Counts accumulated under full device concurrency must match a
    /// sequential reference: every object with final count >= AT-1 is in
    /// the hash table with that count.
    #[test]
    fn concurrent_updates_preserve_topk_invariant() {
        let n = 64usize;
        let k = 5usize;
        let bound = 16u32;
        let layout = CpqLayout {
            num_queries: 1,
            num_objects: n,
            bound,
            k,
        };
        let cpq = Cpq::new(layout);
        // object i receives (i % 16) + 1 updates
        let mut updates = Vec::new();
        for i in 0..n {
            for _ in 0..(i % 16) + 1 {
                updates.push(i as ObjectId);
            }
        }
        let device = Device::with_defaults();
        let cpq_ref = &cpq;
        let ups = &updates;
        let total = updates.len();
        device.launch("concurrent", LaunchConfig::cover(total, 64), move |ctx| {
            let gid = ctx.global_id();
            if gid < total {
                cpq_ref.update(ctx, 0, ups[gid]);
            }
        });
        let at = cpq.final_audit_threshold(0);
        // expected counts: i -> (i % 16) + 1; the k-th largest count is 16
        // (objects 15,31,47,63 have 16; 14,30,46,62 have 15 ...). With
        // k=5 the 5th largest is 15, so AT-1 must be 15.
        assert_eq!(at - 1, 15, "Theorem 3.1: MC_k = AT - 1");
        let mut entries = cpq.table().host_entries(0);
        entries.retain(|&(_, c)| c >= at - 1);
        // aggregate duplicates by max
        let mut best = std::collections::HashMap::new();
        for (id, c) in entries {
            let e = best.entry(id).or_insert(0u32);
            *e = (*e).max(c);
        }
        let mut counts: Vec<u32> = best.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts.len() >= k, "at least k candidates survive");
        assert_eq!(counts[..k], [16, 16, 16, 16, 15]);
    }
}
