//! Compact binary persistence for [`InvertedIndex`].
//!
//! Multiple loading (paper §III-D) keeps one prebuilt index per data
//! part in host memory and swaps them through the device. For data sets
//! whose parts are built offline, the parts need a storage format; this
//! module provides a versioned little-endian codec over [`bytes`]
//! buffers (far denser than generic serde encodings: the List Array is
//! the payload and is written verbatim).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "GNIE" | version u16 | flags u16 (bit0: load-balanced)
//! num_objects u32 | max_object_len u32 | longest_list u64
//! [max_list_len u64]                 -- iff load-balanced
//! num_entries u32 | entries: (keyword, start, len) u32 triples
//! list_len u32 | list_array: u32 words
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::index::{InvertedIndex, LoadBalanceConfig};

const MAGIC: &[u8; 4] = b"GNIE";
const VERSION: u16 = 1;

/// Errors produced by [`decode_index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer does not start with the `GNIE` magic.
    BadMagic,
    /// Encoded with an unsupported format version.
    UnsupportedVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// Internal lengths are inconsistent (e.g. an entry points past the
    /// List Array).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a GENIE index (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            DecodeError::Truncated => write!(f, "index buffer truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialise an index into a fresh buffer.
pub fn encode_index(index: &InvertedIndex) -> Bytes {
    let entries = index.entries_raw();
    let list = index.list_array();
    let mut buf = BytesMut::with_capacity(32 + entries.len() * 12 + list.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    let lb = index.load_balance();
    buf.put_u16_le(u16::from(lb.is_some()));
    buf.put_u32_le(index.num_objects());
    buf.put_u32_le(index.max_object_len() as u32);
    buf.put_u64_le(index.longest_list() as u64);
    if let Some(cfg) = lb {
        buf.put_u64_le(cfg.max_list_len as u64);
    }
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_u32_le(e.keyword);
        buf.put_u32_le(e.start);
        buf.put_u32_le(e.len);
    }
    buf.put_u32_le(list.len() as u32);
    for &w in list {
        buf.put_u32_le(w);
    }
    buf.freeze()
}

/// A u64 size field that must index host memory. Rejecting values that
/// don't fit `usize` (32-bit hosts) keeps a corrupt snapshot from
/// silently truncating a size through an `as` cast.
fn size_field(raw: u64) -> Result<usize, DecodeError> {
    usize::try_from(raw).map_err(|_| DecodeError::Corrupt("size field exceeds usize"))
}

/// Deserialise an index previously produced by [`encode_index`].
///
/// Every length prefix is validated against the bytes actually present
/// **before** any allocation is sized from it, and all derived byte
/// counts use checked arithmetic — a corrupt or adversarial buffer can
/// produce only a typed [`DecodeError`], never a huge allocation, an
/// overflow or a panic (the discipline of `genie_net::wire`'s
/// `ByteReader`, applied to the snapshot codec).
pub fn decode_index(mut buf: impl Buf) -> Result<InvertedIndex, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let flags = buf.get_u16_le();
    if flags & !1 != 0 {
        return Err(DecodeError::Corrupt("unknown flag bits set"));
    }
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let num_objects = buf.get_u32_le();
    let max_object_len = buf.get_u32_le() as usize;
    let longest_list = size_field(buf.get_u64_le())?;
    let load_balance = if flags & 1 != 0 {
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        Some(LoadBalanceConfig {
            max_list_len: size_field(buf.get_u64_le())?,
        })
    } else {
        None
    };
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let num_entries = buf.get_u32_le() as usize;
    let entry_bytes = num_entries
        .checked_mul(12)
        .ok_or(DecodeError::Corrupt("entry count overflows byte length"))?;
    if buf.remaining() < entry_bytes {
        // declared length validated against the buffer *before* the
        // Vec below is sized from it
        return Err(DecodeError::Truncated);
    }
    let mut entries = Vec::with_capacity(num_entries);
    for _ in 0..num_entries {
        entries.push(crate::index::PostingsEntry {
            keyword: buf.get_u32_le(),
            start: buf.get_u32_le(),
            len: buf.get_u32_le(),
        });
    }
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let list_len = buf.get_u32_le() as usize;
    let list_bytes = list_len
        .checked_mul(4)
        .ok_or(DecodeError::Corrupt("list length overflows byte length"))?;
    if buf.remaining() < list_bytes {
        return Err(DecodeError::Truncated);
    }
    let mut list_array = Vec::with_capacity(list_len);
    for _ in 0..list_len {
        list_array.push(buf.get_u32_le());
    }
    // structural validation
    let mut last_kw = None;
    for e in &entries {
        // u64 arithmetic: u32 start + u32 len cannot overflow it
        if (e.start as u64 + e.len as u64) > list_array.len() as u64 {
            return Err(DecodeError::Corrupt("entry points past the List Array"));
        }
        if e.len as usize > longest_list {
            return Err(DecodeError::Corrupt("entry longer than longest_list"));
        }
        if let Some(prev) = last_kw {
            if e.keyword < prev {
                return Err(DecodeError::Corrupt("entries not sorted by keyword"));
            }
        }
        last_kw = Some(e.keyword);
    }
    if list_array.iter().any(|&o| o >= num_objects) && num_objects > 0 {
        return Err(DecodeError::Corrupt("posting references unknown object"));
    }
    Ok(InvertedIndex::from_parts(
        entries,
        list_array,
        num_objects,
        max_object_len,
        longest_list,
        load_balance,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::Object;

    fn sample(lb: Option<LoadBalanceConfig>) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for i in 0..50u32 {
            b.add_object(&Object::new(vec![i % 7, 100 + i % 3]));
        }
        b.build(lb)
    }

    #[test]
    fn round_trip_plain() {
        let idx = sample(None);
        let bytes = encode_index(&idx);
        let back = decode_index(bytes).unwrap();
        assert_eq!(back.num_objects(), idx.num_objects());
        assert_eq!(back.list_array(), idx.list_array());
        assert_eq!(back.postings_of(3), idx.postings_of(3));
        assert_eq!(back.load_balance(), None);
    }

    #[test]
    fn round_trip_load_balanced() {
        let lb = LoadBalanceConfig { max_list_len: 4 };
        let idx = sample(Some(lb));
        let back = decode_index(encode_index(&idx)).unwrap();
        assert_eq!(back.load_balance(), Some(lb));
        assert_eq!(back.postings_of(0), idx.postings_of(0));
        assert_eq!(back.num_lists(), idx.num_lists());
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            decode_index(&b"NOPE........"[..]).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode_index(&sample(None));
        // every strict prefix must fail cleanly, never panic
        for cut in 0..bytes.len() {
            let res = decode_index(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    /// A corrupt length prefix declaring ~4 billion entries on a tiny
    /// buffer must fail via the remaining-bytes validation *before* any
    /// allocation is sized from it (a huge `with_capacity` would abort
    /// the process — worse than a panic).
    #[test]
    fn absurd_length_prefixes_fail_without_allocating() {
        let mut raw = encode_index(&sample(None)).to_vec();
        let entry_count_at = 24; // header (no LB) ends here
        raw[entry_count_at..entry_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_index(&raw[..]).unwrap_err(), DecodeError::Truncated);

        // same for the List Array length prefix
        let mut raw = encode_index(&sample(None)).to_vec();
        let n = raw.len();
        raw[n - 4 * 100 - 4..n - 4 * 100].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_index(&raw[..]).is_err());
    }

    #[test]
    fn rejects_unknown_flag_bits() {
        let mut raw = encode_index(&sample(None)).to_vec();
        raw[6] |= 0x02;
        assert!(matches!(
            decode_index(&raw[..]),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_longest_list() {
        let mut raw = encode_index(&sample(None)).to_vec();
        // longest_list lives at offset 16..24; zero it while entries
        // still carry non-empty lists
        raw[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_index(&raw[..]),
            Err(DecodeError::Corrupt(_))
        ));
    }

    /// Bit-flip torture at the codec layer: flipping any single bit
    /// must never panic; a successful decode must still uphold the
    /// structural invariants (checksums live a layer up, in
    /// genie-store's record frames).
    #[test]
    fn bit_flips_never_panic() {
        let bytes = encode_index(&sample(Some(LoadBalanceConfig { max_list_len: 4 })));
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut raw = bytes.to_vec();
                raw[pos] ^= 1 << bit;
                if let Ok(idx) = decode_index(&raw[..]) {
                    // decoded fine — invariants must hold
                    let n = idx.num_objects();
                    assert!(idx.list_array().iter().all(|&o| n == 0 || o < n));
                }
            }
        }
    }

    #[test]
    fn rejects_future_version() {
        let mut raw = encode_index(&sample(None)).to_vec();
        raw[4] = 0xFF; // bump version field
        assert!(matches!(
            decode_index(&raw[..]),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn detects_corrupt_entry_bounds() {
        let idx = sample(None);
        let mut raw = encode_index(&idx).to_vec();
        // entry table starts at offset 24 (no LB); corrupt first entry's
        // start to point far past the list array
        let entry_start = 24 + 4;
        raw[entry_start..entry_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_index(&raw[..]),
            Err(DecodeError::Corrupt(_)) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn decoded_index_searches_identically() {
        use crate::exec::Engine;
        use crate::model::Query;
        use std::sync::Arc;

        let idx = sample(None);
        let back = decode_index(encode_index(&idx)).unwrap();
        let engine = Engine::new(Arc::new(gpu_sim::Device::with_defaults()));
        let d1 = engine.upload(Arc::new(idx)).unwrap();
        let d2 = engine.upload(Arc::new(back)).unwrap();
        let q = vec![Query::from_keywords(&[2, 101])];
        let r1 = engine.search(&d1, &q, 5);
        let r2 = engine.search(&d2, &q, 5);
        assert_eq!(r1.results, r2.results);
    }
}
