//! The match-count model (paper §II-A).
//!
//! A data *object* is a multiset of elements of a universe `U`; after
//! encoding, every element is a [`KeywordId`]. A *query* is a set of
//! *items*, each item a contiguous (inclusive) range of keyword ids —
//! ranges are how every instantiation in the paper maps to the model:
//!
//! * relational attribute range `(d, [v_lo, v_hi])` → keyword range over
//!   the encoded `(attribute, value)` pairs,
//! * an LSH bucket `(i, r_i(h_i(q)))` → a single-keyword range,
//! * an n-gram / word → a single-keyword range.
//!
//! `MC(Q, O)` — the match count — is the number of elements of `O`
//! contained by at least one item of `Q`, summed per item (Definition
//! 2.1). [`match_count`] is the brute-force reference implementation used
//! by tests and CPU baselines; the device engine must agree with it
//! exactly.

use serde::{Deserialize, Serialize};

/// Identifier of an encoded universe element (a "keyword" of the
/// inverted index).
pub type KeywordId = u32;

/// Identifier of a data object (position in the data set).
pub type ObjectId = u32;

/// A data object: the multiset of keywords obtained by encoding its
/// elements. Duplicate keywords are allowed (ordered n-grams make them
/// unnecessary for sequences, but the model itself is multiset-based).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Object {
    pub keywords: Vec<KeywordId>,
}

impl Object {
    pub fn new(keywords: Vec<KeywordId>) -> Self {
        Self { keywords }
    }

    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

impl From<Vec<KeywordId>> for Object {
    fn from(keywords: Vec<KeywordId>) -> Self {
        Self { keywords }
    }
}

/// Why a query could not be encoded. Returned by the validated
/// constructors ([`QueryItem::try_range`], [`Query::try_new`]) and by
/// every `Domain::encode` implementation, so malformed specs surface as
/// a typed error at *encode* time instead of tripping `debug_assert`s
/// (or producing silently-wrong counts) deep inside the match kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBuildError {
    /// The query spec has no dimensions/items at all.
    EmptyQuery,
    /// An item's keyword range is empty (`lo > hi`).
    EmptyRange { lo: KeywordId, hi: KeywordId },
    /// A keyword id lies outside the universe the index was built over.
    KeywordOutOfRange {
        keyword: KeywordId,
        universe: KeywordId,
    },
    /// A numeric input that must be finite is NaN or infinite.
    NonFinite { what: &'static str },
    /// A weight/value that must be non-negative is negative.
    Negative { what: &'static str },
    /// An item's numeric range is empty (`lo > hi`), in attribute
    /// units.
    EmptyNumericRange { attr: usize, lo: f64, hi: f64 },
    /// A condition names an attribute the schema does not have.
    UnknownAttribute { attr: usize, num_attributes: usize },
    /// A condition's kind does not match its attribute's kind (e.g. a
    /// numeric range over a categorical attribute).
    TypeMismatch { attr: usize, expected: &'static str },
    /// A categorical value beyond its attribute's cardinality.
    ValueOutOfRange {
        attr: usize,
        value: u32,
        cardinality: u32,
    },
    /// An inserted row has a different number of cells than the schema
    /// has attributes (live-mutation item validation).
    RowArity { got: usize, expected: usize },
}

impl std::fmt::Display for QueryBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "query spec has no items"),
            Self::EmptyRange { lo, hi } => {
                write!(f, "empty keyword range [{lo}, {hi}] (lo > hi)")
            }
            Self::KeywordOutOfRange { keyword, universe } => {
                write!(f, "keyword {keyword} outside the universe 0..{universe}")
            }
            Self::NonFinite { what } => write!(f, "{what} must be finite (got NaN or infinity)"),
            Self::Negative { what } => write!(f, "{what} must be non-negative"),
            Self::EmptyNumericRange { attr, lo, hi } => {
                write!(f, "empty numeric range [{lo}, {hi}] on attribute {attr}")
            }
            Self::TypeMismatch { attr, expected } => {
                write!(f, "attribute {attr} is not {expected}")
            }
            Self::UnknownAttribute {
                attr,
                num_attributes,
            } => write!(
                f,
                "attribute {attr} out of range (schema has {num_attributes})"
            ),
            Self::ValueOutOfRange {
                attr,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} out of range for attribute {attr} (cardinality {cardinality})"
            ),
            Self::RowArity { got, expected } => write!(
                f,
                "row has {got} cells but the schema has {expected} attributes"
            ),
        }
    }
}

impl std::error::Error for QueryBuildError {}

/// One query item: an inclusive range `[lo, hi]` of keyword ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryItem {
    pub lo: KeywordId,
    pub hi: KeywordId,
}

impl QueryItem {
    /// Item matching exactly one keyword (LSH buckets, n-grams, words).
    pub fn exact(kw: KeywordId) -> Self {
        Self { lo: kw, hi: kw }
    }

    /// Item matching an inclusive keyword range (relational selections).
    pub fn range(lo: KeywordId, hi: KeywordId) -> Self {
        debug_assert!(lo <= hi, "query item range must be non-empty");
        Self { lo, hi }
    }

    /// Validated [`range`](Self::range): an empty range (`lo > hi`) is a
    /// typed error instead of a `debug_assert`.
    pub fn try_range(lo: KeywordId, hi: KeywordId) -> Result<Self, QueryBuildError> {
        if lo > hi {
            return Err(QueryBuildError::EmptyRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Whether `kw` falls inside this item.
    #[inline]
    pub fn contains(&self, kw: KeywordId) -> bool {
        self.lo <= kw && kw <= self.hi
    }
}

/// A query: a set of items. `MC(Q, O)` sums, over the items, the number
/// of object elements each item contains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    pub items: Vec<QueryItem>,
}

impl Query {
    pub fn new(items: Vec<QueryItem>) -> Self {
        Self { items }
    }

    /// Validated construction: rejects a query with no items
    /// ([`QueryBuildError::EmptyQuery`]) and any item whose range is
    /// empty ([`QueryBuildError::EmptyRange`]). The unvalidated
    /// [`new`](Self::new) stays available for internal paths that
    /// construct items they already know are well-formed.
    pub fn try_new(items: Vec<QueryItem>) -> Result<Self, QueryBuildError> {
        if items.is_empty() {
            return Err(QueryBuildError::EmptyQuery);
        }
        for item in &items {
            if item.lo > item.hi {
                return Err(QueryBuildError::EmptyRange {
                    lo: item.lo,
                    hi: item.hi,
                });
            }
        }
        Ok(Self { items })
    }

    /// Query whose items each match exactly one of `keywords`.
    pub fn from_keywords(keywords: &[KeywordId]) -> Self {
        Self {
            items: keywords.iter().map(|&k| QueryItem::exact(k)).collect(),
        }
    }

    /// [`from_keywords`](Self::from_keywords) validated against a
    /// keyword universe of size `universe`: a keyword at or beyond the
    /// universe is a typed error, and an empty keyword list is
    /// [`QueryBuildError::EmptyQuery`].
    pub fn try_from_keywords(
        keywords: &[KeywordId],
        universe: KeywordId,
    ) -> Result<Self, QueryBuildError> {
        if keywords.is_empty() {
            return Err(QueryBuildError::EmptyQuery);
        }
        if let Some(&bad) = keywords.iter().find(|&&k| k >= universe) {
            return Err(QueryBuildError::KeywordOutOfRange {
                keyword: bad,
                universe,
            });
        }
        Ok(Self::from_keywords(keywords))
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// `C(r, O)`: the number of elements of `O` contained by item `r`
/// (Definition 2.1).
pub fn item_count(item: &QueryItem, object: &Object) -> u32 {
    object
        .keywords
        .iter()
        .filter(|&&k| item.contains(k))
        .count() as u32
}

/// Brute-force `MC(Q, O)` — the reference the whole system is tested
/// against.
pub fn match_count(query: &Query, object: &Object) -> u32 {
    query.items.iter().map(|r| item_count(r, object)).sum()
}

/// An upper bound on `MC(Q, ·)` over `queries`, used to size the c-PQ's
/// ZipperArray and bitmap fields (paper §III-C: "we usually can infer a
/// much smaller count bound than the number of postings lists" — e.g.
/// the number of dimensions for high-dimensional points).
///
/// When a query's items are pairwise disjoint, every object element is
/// contained by at most one item, so `MC <= max_object_len`. Overlapping
/// items can count an element once per covering item, giving the
/// conservative `items * max_object_len`. The bound must never be
/// undersized: the bitmap counter would saturate and the gate's
/// ZipperArray would be indexed past its end.
pub fn count_bound(queries: &[Query], max_object_len: usize) -> u32 {
    let mut worst = 1u64;
    for q in queries {
        if q.items.is_empty() {
            continue;
        }
        let mut spans: Vec<(KeywordId, KeywordId)> = q.items.iter().map(|i| (i.lo, i.hi)).collect();
        spans.sort_unstable();
        let disjoint = spans.windows(2).all(|w| w[0].1 < w[1].0);
        let bound = if disjoint {
            max_object_len as u64
        } else {
            q.items.len() as u64 * max_object_len as u64
        };
        worst = worst.max(bound);
    }
    worst.min(u32::MAX as u64 / 2).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Figure 1: a 3-attribute relational table.
    /// Attribute d in {A=0,B=1,C=2} with values 0..=3 encoded as d*4+v.
    fn fig1_objects() -> Vec<Object> {
        let enc = |d: u32, v: u32| d * 4 + v;
        vec![
            Object::new(vec![enc(0, 1), enc(1, 2), enc(2, 1)]), // O1 = (A1,B2,C1)
            Object::new(vec![enc(0, 2), enc(1, 1), enc(2, 3)]), // O2 = (A2,B1,C3)
            Object::new(vec![enc(0, 1), enc(1, 3), enc(2, 2)]), // O3 = (A1,B3,C2)
        ]
    }

    fn fig1_query() -> Query {
        let enc = |d: u32, v: u32| d * 4 + v;
        // Q1 = {(A,[1,2]), (B,[1,1]), (C,[2,3])}
        Query::new(vec![
            QueryItem::range(enc(0, 1), enc(0, 2)),
            QueryItem::range(enc(1, 1), enc(1, 1)),
            QueryItem::range(enc(2, 2), enc(2, 3)),
        ])
    }

    #[test]
    fn paper_example_2_1_match_counts() {
        let objs = fig1_objects();
        let q1 = fig1_query();
        // the paper works through MC(Q1,O1) = 1; O2 matches all three
        // items; O3 matches A and C
        assert_eq!(match_count(&q1, &objs[0]), 1);
        assert_eq!(match_count(&q1, &objs[1]), 3);
        assert_eq!(match_count(&q1, &objs[2]), 2);
    }

    #[test]
    fn item_count_handles_duplicates() {
        let obj = Object::new(vec![5, 5, 7]);
        assert_eq!(item_count(&QueryItem::range(5, 6), &obj), 2);
        assert_eq!(item_count(&QueryItem::exact(7), &obj), 1);
        assert_eq!(item_count(&QueryItem::exact(9), &obj), 0);
    }

    #[test]
    fn empty_query_and_object() {
        assert_eq!(match_count(&Query::default(), &Object::new(vec![1])), 0);
        assert_eq!(
            match_count(&Query::from_keywords(&[1, 2]), &Object::default()),
            0
        );
    }

    #[test]
    fn from_keywords_builds_exact_items() {
        let q = Query::from_keywords(&[3, 9]);
        assert_eq!(q.items, vec![QueryItem::exact(3), QueryItem::exact(9)]);
    }

    #[test]
    fn try_range_rejects_empty_ranges() {
        assert_eq!(QueryItem::try_range(4, 4), Ok(QueryItem::exact(4)));
        assert_eq!(QueryItem::try_range(2, 9), Ok(QueryItem::range(2, 9)));
        assert_eq!(
            QueryItem::try_range(5, 3),
            Err(QueryBuildError::EmptyRange { lo: 5, hi: 3 })
        );
    }

    #[test]
    fn try_new_validates_items_and_emptiness() {
        assert_eq!(Query::try_new(vec![]), Err(QueryBuildError::EmptyQuery));
        let bad = QueryItem { lo: 7, hi: 2 };
        assert_eq!(
            Query::try_new(vec![QueryItem::exact(1), bad]),
            Err(QueryBuildError::EmptyRange { lo: 7, hi: 2 })
        );
        let ok = Query::try_new(vec![QueryItem::range(1, 3)]).unwrap();
        assert_eq!(ok, Query::new(vec![QueryItem::range(1, 3)]));
    }

    #[test]
    fn try_from_keywords_checks_the_universe() {
        assert_eq!(
            Query::try_from_keywords(&[], 10),
            Err(QueryBuildError::EmptyQuery)
        );
        assert_eq!(
            Query::try_from_keywords(&[3, 10], 10),
            Err(QueryBuildError::KeywordOutOfRange {
                keyword: 10,
                universe: 10
            })
        );
        assert_eq!(
            Query::try_from_keywords(&[3, 9], 10).unwrap(),
            Query::from_keywords(&[3, 9])
        );
    }

    #[test]
    fn query_build_errors_display_their_cause() {
        let shown = format!("{}", QueryBuildError::EmptyQuery);
        assert!(shown.contains("no items"), "{shown}");
        let shown = format!(
            "{}",
            QueryBuildError::ValueOutOfRange {
                attr: 1,
                value: 9,
                cardinality: 4
            }
        );
        assert!(
            shown.contains("attribute 1") && shown.contains('9'),
            "{shown}"
        );
    }

    #[test]
    fn count_bound_for_disjoint_items_is_object_len() {
        let q = Query::from_keywords(&[1, 2, 3, 4, 5]);
        assert_eq!(count_bound(std::slice::from_ref(&q), 3), 3);
        assert_eq!(count_bound(&[q], 10), 10);
        assert_eq!(count_bound(&[], 10), 1);
    }

    #[test]
    fn count_bound_inflates_for_overlapping_items() {
        // two overlapping ranges: an element at keyword 5 counts twice
        let q = Query::new(vec![QueryItem::range(0, 10), QueryItem::range(5, 15)]);
        assert_eq!(count_bound(std::slice::from_ref(&q), 4), 8);
        let obj = Object::new(vec![5, 5, 6, 7]);
        assert!(match_count(&q, &obj) <= 8);
        assert_eq!(match_count(&q, &obj), 8, "all four elements hit both items");
    }

    #[test]
    fn count_bound_is_never_undersized_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let objects: Vec<Object> = (0..20)
                .map(|_| {
                    Object::new(
                        (0..rng.random_range(1..6))
                            .map(|_| rng.random_range(0..20u32))
                            .collect(),
                    )
                })
                .collect();
            let queries: Vec<Query> = (0..4)
                .map(|_| {
                    Query::new(
                        (0..rng.random_range(1..5))
                            .map(|_| {
                                let lo = rng.random_range(0..20u32);
                                QueryItem::range(lo, (lo + rng.random_range(0..6)).min(19))
                            })
                            .collect(),
                    )
                })
                .collect();
            let max_len = objects.iter().map(|o| o.len()).max().unwrap();
            let bound = count_bound(&queries, max_len);
            for q in &queries {
                for o in &objects {
                    assert!(match_count(q, o) <= bound, "bound {bound} violated");
                }
            }
        }
    }
}
