//! The pure-CPU backend: the match-count pipeline on host cores.
//!
//! No device simulation runs here — queries are scanned against the
//! host-resident index with a dense count array each, in parallel over
//! the batch via rayon. This is the latency-honest serving path: where
//! the [`Engine`](crate::exec::Engine) reports cost-model *simulated*
//! time, this backend's profile carries real host wall-clock only.
//!
//! Results are exact: every object's count comes from a full postings
//! scan, the top-k is ordered count-descending with ascending-id ties,
//! and the reported AuditThreshold reproduces Theorem 3.1
//! (`AT = MC_k + 1`, or 1 when fewer than `k` objects matched). The
//! device engine agrees on the count profile and on every returned
//! count, but may return *different ids among objects tied at the k-th
//! count*: its gate only admits ties that reach `MC_k` before the
//! AuditThreshold advances past it (scan-order dependent — the paper
//! breaks such ties randomly), whereas this backend deterministically
//! keeps the lowest ids.

use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use crate::exec::{elapsed_us, SearchOutput, StageProfile};
use crate::index::InvertedIndex;
use crate::model::Query;
use crate::topk::{audit_threshold, partial_top_k, TopHit};

use super::{BackendCaps, BackendIndex, BackendKind, SearchBackend};

/// Host-side execution backend.
#[derive(Debug, Clone, Default)]
pub struct CpuBackend {}

impl CpuBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// One query's exact top-k plus its final AuditThreshold.
    fn search_one(index: &InvertedIndex, query: &Query, k: usize) -> (Vec<TopHit>, u32) {
        let n = index.num_objects() as usize;
        let list = index.list_array();
        let mut counts = vec![0u32; n];
        for item in &query.items {
            for seg in index.segments_for_range(item.lo, item.hi) {
                for &obj in &list[seg.start as usize..(seg.start + seg.len) as usize] {
                    counts[obj as usize] += 1;
                }
            }
        }
        let candidates: Vec<TopHit> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(id, &count)| TopHit {
                id: id as u32,
                count,
            })
            .collect();
        let hits = partial_top_k(candidates, k);
        let at = audit_threshold(&hits, k);
        (hits, at)
    }
}

impl SearchBackend for CpuBackend {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            name: "cpu",
            kind: BackendKind::Host,
            devices: rayon::current_num_threads(),
            memory_bytes: None,
            reports_sim_time: false,
        }
    }

    fn upload(&self, index: Arc<InvertedIndex>) -> Result<BackendIndex, String> {
        // the index is already host-resident; nothing to transfer
        Ok(BackendIndex::new(index, 0.0, ()))
    }

    fn search_batch(&self, index: &BackendIndex, queries: &[Query], k: usize) -> SearchOutput {
        assert!(k >= 1, "k must be at least 1");
        let started = Instant::now();
        let idx = index.index();
        let per_query: Vec<(Vec<TopHit>, u32)> = queries
            .par_iter()
            .map(|q| Self::search_one(idx, q, k))
            .collect();
        let mut results = Vec::with_capacity(per_query.len());
        let mut audit_thresholds = Vec::with_capacity(per_query.len());
        for (hits, at) in per_query {
            results.push(hits);
            audit_thresholds.push(at);
        }
        let profile = StageProfile {
            host_us: elapsed_us(started),
            ..Default::default()
        };
        SearchOutput {
            results,
            profile,
            // dense count table per query — the host analogue of the
            // Table IV memory metric
            cpq_bytes_per_query: idx.num_objects() as u64 * 4,
            audit_thresholds,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Engine;
    use crate::index::IndexBuilder;
    use crate::model::{Object, QueryItem};
    use gpu_sim::Device;

    fn index_of(objects: &[Object]) -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        Arc::new(b.build(None))
    }

    #[test]
    fn figure_1_example_on_the_cpu() {
        let enc = |d: u32, v: u32| d * 4 + v;
        let objects = vec![
            Object::new(vec![enc(0, 1), enc(1, 2), enc(2, 1)]),
            Object::new(vec![enc(0, 2), enc(1, 1), enc(2, 3)]),
            Object::new(vec![enc(0, 1), enc(1, 3), enc(2, 2)]),
        ];
        let q1 = Query::new(vec![
            QueryItem::range(enc(0, 1), enc(0, 2)),
            QueryItem::range(enc(1, 1), enc(1, 1)),
            QueryItem::range(enc(2, 2), enc(2, 3)),
        ]);
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&objects)).unwrap();
        let out = cpu.search_batch(&bindex, &[q1], 1);
        assert_eq!(out.results[0][0].id, 1, "O2 is the top-1");
        assert_eq!(out.results[0][0].count, 3);
        assert_eq!(out.audit_thresholds[0], 4, "Example 3.1: AT ends at 4");
        assert!(!out.profile.sim_total_us().is_nan());
        assert_eq!(out.profile.sim_total_us(), 0.0, "host backend: no sim time");
    }

    #[test]
    fn cpu_and_engine_agree_on_counts_and_audit_thresholds() {
        use crate::model::match_count;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let objects: Vec<Object> = (0..60)
            .map(|_| {
                let len = rng.random_range(1..6usize);
                Object::new((0..len).map(|_| rng.random_range(0..25u32)).collect())
            })
            .collect();
        let queries: Vec<Query> = (0..12)
            .map(|_| {
                let len = rng.random_range(1..5usize);
                Query::new(
                    (0..len)
                        .map(|_| {
                            let lo = rng.random_range(0..25u32);
                            QueryItem::range(lo, (lo + rng.random_range(0..3)).min(24))
                        })
                        .collect(),
                )
            })
            .collect();
        let index = index_of(&objects);

        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let dindex = Engine::upload(&engine, Arc::clone(&index)).unwrap();
        let device_out = engine.search(&dindex, &queries, 7);

        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index).unwrap();
        let cpu_out = cpu.search_batch(&bindex, &queries, 7);

        // ids may differ among objects tied at the k-th count (the
        // device gate admits ties in scan order); the count profile,
        // per-id counts and ATs must be identical
        assert_eq!(device_out.audit_thresholds, cpu_out.audit_thresholds);
        for (qi, q) in queries.iter().enumerate() {
            let dev_counts: Vec<u32> = device_out.results[qi].iter().map(|h| h.count).collect();
            let cpu_counts: Vec<u32> = cpu_out.results[qi].iter().map(|h| h.count).collect();
            assert_eq!(dev_counts, cpu_counts, "query {qi} count profile");
            for hit in &cpu_out.results[qi] {
                assert_eq!(
                    match_count(q, &objects[hit.id as usize]),
                    hit.count,
                    "query {qi} object {}",
                    hit.id
                );
            }
        }
    }

    #[test]
    fn tiny_profile_keeps_fractional_microseconds() {
        // regression: with `as_micros() as f64` a sub-µs search
        // truncated to exactly 0 and latency accounting went dark
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&[Object::new(vec![1])])).unwrap();
        let out = cpu.search_batch(&bindex, &[Query::from_keywords(&[1])], 1);
        assert!(
            out.profile.host_us > 0.0,
            "a timed profile must be strictly positive, got {}",
            out.profile.host_us
        );
    }

    #[test]
    fn empty_batch_and_empty_matches() {
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&[Object::new(vec![1])])).unwrap();
        let out = cpu.search_batch(&bindex, &[], 3);
        assert!(out.results.is_empty());
        let out = cpu.search_batch(&bindex, &[Query::from_keywords(&[99])], 3);
        assert!(out.results[0].is_empty());
        assert_eq!(out.audit_thresholds[0], 1);
    }
}
