//! The pure-CPU backend: the match-count pipeline on host cores.
//!
//! No device simulation runs here — queries run through the sparse-aware
//! host counting kernel of [`kernel`](super::kernel): epoch-stamped
//! scratch tables reused from a per-index pool (no per-query allocation
//! or zeroing), coalesced postings runs counted in fixed-width chunks,
//! candidate harvesting that keeps cost at `O(postings + matched)` with
//! an adaptive dense fallback, and — for waves smaller than the host
//! fleet — intra-query segment parallelism so a single low-latency
//! request still saturates every core. This is the latency-honest
//! serving path: where the [`Engine`](crate::exec::Engine) reports
//! cost-model *simulated* time, this backend's profile carries real host
//! wall-clock only.
//!
//! Results are exact: every object's count comes from a full postings
//! scan, the top-k is ordered count-descending with ascending-id ties,
//! and the reported AuditThreshold reproduces Theorem 3.1
//! (`AT = MC_k + 1`, or 1 when fewer than `k` objects matched). The
//! kernel is property-tested bit-identical to the seed dense path
//! ([`kernel::reference_search_one`]). The device engine agrees on the
//! count profile and on every returned count, but may return *different
//! ids among objects tied at the k-th count*: its gate only admits ties
//! that reach `MC_k` before the AuditThreshold advances past it
//! (scan-order dependent — the paper breaks such ties randomly), whereas
//! this backend deterministically keeps the lowest ids.
//!
//! [`SearchOutput::cpq_bytes_per_query`] reports the *actual* scratch
//! footprint: the per-index pool's resident bytes amortised over the
//! batch — the honest host analogue of the paper's Table IV memory
//! column under scratch reuse, not a pretend fresh dense table per
//! query.

use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use crate::exec::{elapsed_us, SearchOutput, StageProfile};
use crate::index::InvertedIndex;
use crate::model::Query;
use crate::topk::TopHit;

use super::kernel::{self, KernelConfig, KernelStats, KernelStatsSnapshot, ScratchPool};
use super::{BackendCaps, BackendIndex, BackendKind, SearchBackend};

/// Host-side execution backend on the sparse-aware counting kernel.
#[derive(Debug, Clone, Default)]
pub struct CpuBackend {
    config: KernelConfig,
    stats: Arc<KernelStats>,
}

impl CpuBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend with explicit kernel tuning (thresholds of the
    /// adaptive dense/sparse and intra-query-parallel decisions).
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            config,
            stats: Arc::default(),
        }
    }

    /// Lifetime kernel-decision counters (sparse vs dense finalisation,
    /// intra-query parallel runs, postings scanned). Clones of this
    /// backend share the counters.
    pub fn kernel_stats(&self) -> KernelStatsSnapshot {
        self.stats.snapshot()
    }
}

impl SearchBackend for CpuBackend {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            name: "cpu",
            kind: BackendKind::Host,
            devices: rayon::current_num_threads(),
            memory_bytes: None,
            reports_sim_time: false,
        }
    }

    fn upload(&self, index: Arc<InvertedIndex>) -> Result<BackendIndex, String> {
        // the index is already host-resident; nothing to transfer. The
        // payload is this index's scratch pool: counting state is tied
        // to one object-id space and reused across every batch.
        Ok(BackendIndex::new(index, 0.0, ScratchPool::new()))
    }

    fn search_batch(&self, index: &BackendIndex, queries: &[Query], k: usize) -> SearchOutput {
        assert!(k >= 1, "k must be at least 1");
        let started = Instant::now();
        let idx = index.index();
        let pool = index
            .payload::<ScratchPool>()
            .expect("index was uploaded to a different backend than this CpuBackend");

        let threads = rayon::current_num_threads();
        // Parallelism policy: the batch is ALWAYS the outer parallel
        // dimension (waves of any size keep at least the seed's
        // one-core-per-query occupancy). When the wave is smaller than
        // the fleet, the spare threads/Q workers additionally fan out
        // INSIDE each query ([`kernel::search_one_parallel`]) — sparse
        // spans merging by epoch, dense spans element-wise over their
        // lane arrays; queries that decline the fan-out (too small, or
        // dense with too few postings per object to amortise the
        // per-span zero + merge) degrade to the plain per-query kernel
        // on their own batch worker, never to a single-core wave.
        let workers_per_query = if queries.is_empty() {
            1
        } else {
            (threads / queries.len()).max(1)
        };
        let per_query: Vec<(Vec<TopHit>, u32)> = queries
            .par_iter()
            .map(|q| {
                if workers_per_query > 1 {
                    kernel::search_one_parallel(
                        idx,
                        q,
                        k,
                        pool,
                        workers_per_query,
                        &self.config,
                        &self.stats,
                    )
                } else {
                    let mut scratch = pool.acquire();
                    let out =
                        kernel::search_one(idx, q, k, &mut scratch, &self.config, &self.stats);
                    pool.release(scratch);
                    out
                }
            })
            .collect();

        let mut results = Vec::with_capacity(per_query.len());
        let mut audit_thresholds = Vec::with_capacity(per_query.len());
        for (hits, at) in per_query {
            results.push(hits);
            audit_thresholds.push(at);
        }
        let profile = StageProfile {
            host_us: elapsed_us(started),
            ..Default::default()
        };
        SearchOutput {
            results,
            profile,
            // the honest Table IV host analogue: the bytes of every
            // scratch the pool owns (loaned ones included, so the
            // number stays stable under concurrent dispatchers),
            // amortised over the queries that just shared them
            cpq_bytes_per_query: pool.resident_bytes() / queries.len().max(1) as u64,
            audit_thresholds,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Engine;
    use crate::index::IndexBuilder;
    use crate::model::{Object, QueryItem};
    use gpu_sim::Device;

    fn index_of(objects: &[Object]) -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        Arc::new(b.build(None))
    }

    #[test]
    fn figure_1_example_on_the_cpu() {
        let enc = |d: u32, v: u32| d * 4 + v;
        let objects = vec![
            Object::new(vec![enc(0, 1), enc(1, 2), enc(2, 1)]),
            Object::new(vec![enc(0, 2), enc(1, 1), enc(2, 3)]),
            Object::new(vec![enc(0, 1), enc(1, 3), enc(2, 2)]),
        ];
        let q1 = Query::new(vec![
            QueryItem::range(enc(0, 1), enc(0, 2)),
            QueryItem::range(enc(1, 1), enc(1, 1)),
            QueryItem::range(enc(2, 2), enc(2, 3)),
        ]);
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&objects)).unwrap();
        let out = cpu.search_batch(&bindex, &[q1], 1);
        assert_eq!(out.results[0][0].id, 1, "O2 is the top-1");
        assert_eq!(out.results[0][0].count, 3);
        assert_eq!(out.audit_thresholds[0], 4, "Example 3.1: AT ends at 4");
        assert!(!out.profile.sim_total_us().is_nan());
        assert_eq!(out.profile.sim_total_us(), 0.0, "host backend: no sim time");
    }

    #[test]
    fn cpu_and_engine_agree_on_counts_and_audit_thresholds() {
        use crate::model::match_count;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let objects: Vec<Object> = (0..60)
            .map(|_| {
                let len = rng.random_range(1..6usize);
                Object::new((0..len).map(|_| rng.random_range(0..25u32)).collect())
            })
            .collect();
        let queries: Vec<Query> = (0..12)
            .map(|_| {
                let len = rng.random_range(1..5usize);
                Query::new(
                    (0..len)
                        .map(|_| {
                            let lo = rng.random_range(0..25u32);
                            QueryItem::range(lo, (lo + rng.random_range(0..3)).min(24))
                        })
                        .collect(),
                )
            })
            .collect();
        let index = index_of(&objects);

        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let dindex = Engine::upload(&engine, Arc::clone(&index)).unwrap();
        let device_out = engine.search(&dindex, &queries, 7);

        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index).unwrap();
        let cpu_out = cpu.search_batch(&bindex, &queries, 7);

        // ids may differ among objects tied at the k-th count (the
        // device gate admits ties in scan order); the count profile,
        // per-id counts and ATs must be identical
        assert_eq!(device_out.audit_thresholds, cpu_out.audit_thresholds);
        for (qi, q) in queries.iter().enumerate() {
            let dev_counts: Vec<u32> = device_out.results[qi].iter().map(|h| h.count).collect();
            let cpu_counts: Vec<u32> = cpu_out.results[qi].iter().map(|h| h.count).collect();
            assert_eq!(dev_counts, cpu_counts, "query {qi} count profile");
            for hit in &cpu_out.results[qi] {
                assert_eq!(
                    match_count(q, &objects[hit.id as usize]),
                    hit.count,
                    "query {qi} object {}",
                    hit.id
                );
            }
        }
    }

    #[test]
    fn tiny_profile_keeps_fractional_microseconds() {
        // regression: with `as_micros() as f64` a sub-µs search
        // truncated to exactly 0 and latency accounting went dark
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&[Object::new(vec![1])])).unwrap();
        let out = cpu.search_batch(&bindex, &[Query::from_keywords(&[1])], 1);
        assert!(
            out.profile.host_us > 0.0,
            "a timed profile must be strictly positive, got {}",
            out.profile.host_us
        );
    }

    #[test]
    fn empty_batch_and_empty_matches() {
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&[Object::new(vec![1])])).unwrap();
        let out = cpu.search_batch(&bindex, &[], 3);
        assert!(out.results.is_empty());
        let out = cpu.search_batch(&bindex, &[Query::from_keywords(&[99])], 3);
        assert!(out.results[0].is_empty());
        assert_eq!(out.audit_thresholds[0], 1);
    }

    #[test]
    fn memory_accounting_reports_reused_scratch_not_fresh_tables() {
        // the honest Table IV host analogue: a batch of B queries
        // served from one reused scratch must report the pool footprint
        // amortised over B — far below the seed's pretend fresh dense
        // `4 * n` bytes per query
        let n = 4_096u32;
        let objects: Vec<Object> = (0..n).map(|i| Object::new(vec![i % 97])).collect();
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&objects)).unwrap();
        let queries: Vec<Query> = (0..64).map(|i| Query::from_keywords(&[i % 97])).collect();

        let out = cpu.search_batch(&bindex, &queries, 5);
        let pool = bindex.payload::<ScratchPool>().unwrap();
        assert_eq!(
            out.cpq_bytes_per_query,
            pool.resident_bytes() / queries.len() as u64,
            "reported memory must be the real pool footprint, amortised"
        );
        // the undercut claim needs enough queries per scratch to
        // amortise (one scratch lives per worker, ~16n bytes worst
        // case); on a fleet wider than queries/4 the margin vanishes,
        // so only the honesty equality above is asserted there
        let threads = rayon::current_num_threads();
        if threads * 4 <= queries.len() {
            assert!(
                out.cpq_bytes_per_query < n as u64 * 4,
                "reuse must undercut the seed's fresh dense table claim \
                 ({} >= {})",
                out.cpq_bytes_per_query,
                n * 4
            );
        }
        // a second batch reuses the warmed pool: footprint stays flat
        let before = pool.resident_bytes();
        let scratches = pool.resident_scratches();
        cpu.search_batch(&bindex, &queries, 5);
        assert_eq!(pool.resident_bytes(), before, "no per-batch growth");
        assert_eq!(pool.resident_scratches(), scratches);
    }

    #[test]
    fn kernel_stats_expose_decisions() {
        let objects: Vec<Object> = (0..600).map(|i| Object::new(vec![i % 5, 50 + i])).collect();
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, index_of(&objects)).unwrap();
        // selective singleton lists -> sparse; the % 5 hot lists -> dense
        cpu.search_batch(&bindex, &[Query::from_keywords(&[70])], 3);
        cpu.search_batch(&bindex, &[Query::new(vec![QueryItem::range(0, 4)])], 3);
        let snap = cpu.kernel_stats();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.sparse_finalize, 1);
        assert_eq!(snap.dense_finalize, 1);
        assert!(snap.postings_scanned > 0);
        let clone = cpu.clone();
        assert_eq!(clone.kernel_stats(), snap, "clones share lifetime counters");
    }
}
