//! The host counting kernel behind [`CpuBackend`](super::CpuBackend).
//!
//! Match-count top-k is a *counting* problem: throughput is bounded by
//! how fast postings can be streamed into a per-query counter structure
//! and the touched counters reduced to a top-k list. The seed CPU path
//! paid three `O(n)` taxes per query that have nothing to do with the
//! postings actually scanned: allocating a fresh dense `vec![0u32; n]`,
//! zeroing it, and sweeping all `n` slots to collect candidates. This
//! module replaces that loop with a kernel whose cost tracks
//! `O(postings scanned + objects matched)`:
//!
//! * **Epoch-stamped scratch** ([`CountScratch`]) — every counter cell
//!   carries the epoch that last wrote it. A new query bumps the epoch
//!   (one integer increment); stale cells from earlier queries are
//!   *logically* zero because their stamp no longer matches, so nothing
//!   is ever re-zeroed and nothing is allocated after warm-up. Scratches
//!   live in a per-index [`ScratchPool`] and are reused across queries,
//!   batches and worker threads.
//! * **Sparse candidate harvesting** — the first posting that touches an
//!   object records its id in a touched list; finalisation walks that
//!   list instead of sweeping all `n` slots. When a query turns out to
//!   be dense after all (the touched fraction crosses
//!   [`KernelConfig::dense_touched_fraction`], checked once per counted
//!   chunk), harvesting switches off mid-scan: the harvested counts are
//!   replayed into the plain dense array and the rest of the scan
//!   continues on the lane-split dense path below — the adaptive regime
//!   keeps the worst case at dense-kernel cost while selective queries
//!   skip the `O(n)` work entirely. Queries whose postings volume alone
//!   predicts a dense outcome
//!   ([`KernelConfig::dense_postings_per_object`]) skip harvesting up
//!   front and count into the dense array directly: stamped bumps carry
//!   twice the memory traffic, which is the right trade only while the
//!   stamps are actually saving an `O(n)` reset.
//! * **Lane-split dense counting** — the dense scatter
//!   (`counts[obj] += 1`) cannot be vectorized (the increments conflict
//!   on arbitrary addresses), and on wide out-of-order cores it is not
//!   bandwidth-bound either: a single increment chain leaves the store
//!   pipeline idle waiting on counter-line latency. The dense path
//!   therefore splits every postings run into
//!   [`KernelConfig::dense_lanes`] equal contiguous sub-runs advanced in
//!   lockstep — `L` independent load-increment-store chains per
//!   iteration, far enough apart to never collide on a cache line —
//!   with the `run.len() % lanes` remainder counted scalar. Measured on
//!   the baseline host this takes the saturating-workload scatter from
//!   ~1.9 to ~1.0 cycles per posting (see `BENCH_cpu_kernel.json`).
//!   Finalisation no longer collects every nonzero counter into a
//!   `partial_top_k` quickselect: a 4-lane count histogram (lanes again
//!   break the store-forward stalls on hot buckets) finds the k-th
//!   boundary count, and a [`screen_chunk`]-vectorized scan collects
//!   only the few qualifying objects. Counts beyond the histogram range
//!   fall back to the full sweep — either way the result is
//!   bit-identical to [`partial_top_k`] (count descending, id
//!   ascending, same boundary ties).
//! * **Segment coalescing + chunked counting** — postings runs come from
//!   [`InvertedIndex::coalesced_segments_for_range`], which merges
//!   segments adjacent in the List Array (including load-balanced
//!   sublists, whose split only exists to balance *device* blocks) into
//!   single contiguous slices. Each run is counted in fixed-width chunks
//!   ([`CHUNK`] postings) so the inner loop is branch-light and
//!   unrollable; the adaptive harvest check runs per chunk, not per
//!   posting.
//! * **Intra-query segment parallelism** ([`search_one_parallel`]) — a
//!   wave smaller than the host fleet leaves cores idle if parallelism
//!   stops at the batch level (the `max_queue_delay = 0` low-latency
//!   serving mode cuts waves of size ~1). For queries with at least
//!   [`KernelConfig::parallel_min_postings`] postings, the coalesced
//!   runs are split into near-equal postings spans, each span is
//!   counted into its own pool scratch on its own worker, and the
//!   partial counts merged into a primary scratch before one final
//!   top-k reduction. Sparse-predicted spans merge by epoch (per
//!   harvested candidate); dense-predicted spans count into per-span
//!   lane arrays and merge element-wise through the vectorized
//!   [`merge_dense`], with the worker count capped at the query's
//!   `postings / n` ratio so each span's counting still outweighs its
//!   `O(n)` zero + merge. Counting is pure addition, so any split of
//!   the postings multiset yields bit-identical counts.
//!
//! ## Contract
//!
//! The kernel is result-identical to the seed dense path (kept
//! executable as [`reference_search_one`]): counts equal brute-force
//! [`match_count`](crate::model::match_count), hits are ordered (count
//! descending, id ascending), and the final AuditThreshold follows
//! Theorem 3.1 (`AT = MC_k + 1`, or 1 when fewer than `k` objects
//! matched). Property tests in `crates/core/tests/kernel_props.rs` prove
//! bit-identity (ids, counts, AT) across randomized workloads.
//!
//! ## Scratch-epoch invariants
//!
//! * A stamped cell's `count` is meaningful if and only if
//!   `stamp == epoch`.
//! * `CountScratch::begin` bumps the epoch for stamped (harvesting)
//!   queries; on wrap-around (once per `u32::MAX` queries) every cell
//!   is physically re-zeroed so stale stamps can never alias the
//!   restarted epoch. A dense-up-front query instead memsets the
//!   separate plain array and leaves the stamped table (and its epoch
//!   discipline) untouched.
//! * The touched list holds exactly the ids first-touched while
//!   harvesting was on; if harvesting was switched off at any point the
//!   list is incomplete and finalisation *must* use the dense sweep
//!   (tracked by the `harvesting` flag).
//! * Scratches may only be shared across queries of the *same* index
//!   (the pool lives in the per-upload
//!   [`BackendIndex`](super::BackendIndex) payload, which pins it to one
//!   index and one object-id space).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use crate::index::{InvertedIndex, PostingsSegment};
use crate::model::{ObjectId, Query};
use crate::topk::{audit_threshold, finalize_unique_candidates, partial_top_k, TopHit};

/// Width of the fixed-size counting chunks: long enough to amortise the
/// per-chunk adaptive check and give the compiler an unrollable body,
/// short enough that harvesting reacts to a dense query within a few
/// hundred postings.
pub const CHUNK: usize = 64;

/// Tuning knobs of the adaptive kernel. The defaults were measured with
/// `repro --cpu-kernel` on the baseline host (Xeon @ 2.1 GHz, AVX-512;
/// see `BENCH_cpu_kernel.json` for the recorded sweep); the measured
/// crossover points below are per-field.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Skip harvesting up front when the query's total postings volume
    /// reaches this many postings *per indexed object* (the scan will
    /// touch most objects anyway, so recording first-touches is wasted
    /// work on top of the unavoidable dense sweep).
    ///
    /// **Tuning.** The trade is stamped-bump traffic (two words per
    /// counter) plus a wasted touched list against one `O(n)` memset.
    /// On the baseline host the sparse workload (~16 postings/query,
    /// `n = 100k`) runs at ~11 µs/query harvested vs ~800 µs dense,
    /// while the saturating workload (~4.7 postings/object) regresses
    /// ~35% if forced to harvest. The regimes separate cleanly around
    /// one posting per object; values in `[0.5, 2.0]` measure within
    /// noise of each other, so the default sits at `1.0`.
    pub dense_postings_per_object: f64,
    /// Abort harvesting mid-scan once more than this fraction of the
    /// object universe has been touched; the harvested counts are
    /// replayed into the dense lane array and the scan continues on the
    /// vectorized dense path.
    ///
    /// **Tuning.** Only mispredicted queries (sparse postings volume,
    /// dense touch pattern) ever reach this limit, and the flip now
    /// *switches* regimes rather than merely degrading, so the knob is
    /// forgiving: it must only stop the touched list before its
    /// replay-into-dense cost (one store per touched id) rivals the
    /// counting itself. Half the universe keeps the replay under one
    /// memset-equivalent; measured end-to-end latency on mispredicted
    /// queries is flat within noise for fractions in `[0.25, 0.75]`.
    pub dense_touched_fraction: f64,
    /// Minimum postings a query must scan before intra-query
    /// parallelism is worth its merge step.
    ///
    /// **Tuning.** The fan-out costs one scratch `begin` per worker
    /// plus the merge of each span's candidates; at the default the
    /// smallest fanned-out span (~4k postings on 2 workers) still scans
    /// an order of magnitude more postings than the merge replays.
    /// Sparse queries below ~8k postings finish in single-digit
    /// microseconds sequentially — fan-out overhead (thread wake + two
    /// pool round-trips) measures larger than the whole query there.
    pub parallel_min_postings: u64,
    /// Number of independent increment chains the dense counting path
    /// drives per postings run (each run is split into this many equal
    /// contiguous sub-runs advanced in lockstep; the remainder is
    /// counted scalar). Values are clamped to the nearest of
    /// `{1, 2, 4, 8}`.
    ///
    /// **Tuning.** The dense scatter is latency-bound, not
    /// bandwidth-bound: one chain leaves the store pipeline idle on
    /// counter-line round-trips. Measured on the baseline host's
    /// saturating workload (~470k postings/query, `n = 100k`):
    /// 1 lane ≈ 1.9 cycles/posting, 2 lanes ≈ 1.25, 4 lanes ≈ 1.0,
    /// 8 lanes within noise of 4 (the four extra chains only add
    /// sub-run bookkeeping once the load/store ports saturate). The
    /// crossover to diminishing returns sits at 4 on every core wide
    /// enough to retire 2 loads + 1 store per cycle.
    pub dense_lanes: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            dense_postings_per_object: 1.0,
            dense_touched_fraction: 0.5,
            parallel_min_postings: 8_192,
            dense_lanes: 4,
        }
    }
}

impl KernelConfig {
    fn harvest_up_front(&self, total_postings: u64, num_objects: usize) -> bool {
        (total_postings as f64) < self.dense_postings_per_object * num_objects as f64
    }

    fn touched_limit(&self, num_objects: usize) -> usize {
        (self.dense_touched_fraction * num_objects as f64) as usize
    }

    /// `dense_lanes` clamped to the lane counts the counting loop is
    /// actually compiled for.
    fn effective_lanes(&self) -> usize {
        match self.dense_lanes {
            0 | 1 => 1,
            2 | 3 => 2,
            4..=7 => 4,
            _ => 8,
        }
    }
}

/// Lifetime counters of one [`CpuBackend`](super::CpuBackend)'s kernel
/// decisions, kept on atomics so worker threads record without
/// coordination. Snapshot with [`KernelStats::snapshot`].
#[derive(Debug, Default)]
pub struct KernelStats {
    queries: AtomicU64,
    sparse_finalize: AtomicU64,
    dense_finalize: AtomicU64,
    parallel_queries: AtomicU64,
    postings_scanned: AtomicU64,
    candidates: AtomicU64,
}

/// One consistent read of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStatsSnapshot {
    /// Queries the kernel served.
    pub queries: u64,
    /// Queries finalised from the harvested touched list.
    pub sparse_finalize: u64,
    /// Queries finalised with the dense epoch-filtered sweep (chosen up
    /// front or by the mid-scan fallback).
    pub dense_finalize: u64,
    /// Queries counted by more than one worker (intra-query
    /// parallelism).
    pub parallel_queries: u64,
    /// Postings streamed through the counting loops.
    pub postings_scanned: u64,
    /// Candidate objects that reached finalisation.
    pub candidates: u64,
}

impl KernelStats {
    fn record(&self, sparse: bool, parallel: bool, postings: u64, candidates: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if sparse {
            self.sparse_finalize.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dense_finalize.fetch_add(1, Ordering::Relaxed);
        }
        if parallel {
            self.parallel_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.postings_scanned.fetch_add(postings, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> KernelStatsSnapshot {
        KernelStatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            sparse_finalize: self.sparse_finalize.load(Ordering::Relaxed),
            dense_finalize: self.dense_finalize.load(Ordering::Relaxed),
            parallel_queries: self.parallel_queries.load(Ordering::Relaxed),
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
        }
    }
}

/// One counter cell: `count` is valid only while `stamp` equals the
/// scratch's current epoch.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    count: u32,
    stamp: u32,
}

/// Reusable per-query counting state: the epoch-stamped counter table,
/// the harvested touched list and the coalesced-run buffer. Acquire from
/// a [`ScratchPool`]; never share across different indexes.
#[derive(Debug, Default)]
pub struct CountScratch {
    cells: Vec<Cell>,
    epoch: u32,
    /// Objects the scratch's counters currently describe (the table may
    /// be longer after reuse, but never shorter).
    active: usize,
    touched: Vec<ObjectId>,
    harvesting: bool,
    /// Dense mode (up-front prediction or mid-scan flip): counting runs
    /// on the plain `u32` array `dense` through the lane-split scatter
    /// (half the memory traffic of a stamped bump), zeroed at `begin`
    /// but reused across queries instead of freshly allocated.
    zeroed: bool,
    /// The zeroed-mode counter array; allocated lazily, only if a
    /// dense query ever arrives at this scratch.
    dense: Vec<u32>,
    touched_limit: usize,
    /// Independent increment chains of the dense scatter
    /// ([`KernelConfig::dense_lanes`], normalized).
    lanes: usize,
    runs: Vec<PostingsSegment>,
    /// Bytes already folded into the owning pool's tracked footprint
    /// (maintained by [`ScratchPool::release`]).
    accounted_bytes: u64,
}

impl CountScratch {
    /// Start a new query over `num_objects` objects.
    ///
    /// With `harvesting` on, the epoch is bumped (a single increment
    /// logically zeroes every counter) and first-touches are recorded;
    /// cells are physically re-zeroed only on epoch wrap-around. With
    /// `harvesting` off the query was predicted dense up front: the
    /// counters are memset instead (a reused buffer, so still no
    /// allocation) and counting runs the cheaper unstamped loop.
    fn begin(&mut self, num_objects: usize, harvesting: bool, config: &KernelConfig) {
        if self.cells.len() < num_objects {
            self.cells.resize(num_objects, Cell::default());
        }
        self.active = num_objects;
        self.zeroed = !harvesting;
        if self.zeroed {
            // the stamped table is untouched (its epochs stay valid);
            // only the plain dense array is re-zeroed, one memset
            if self.dense.len() < num_objects {
                self.dense.resize(num_objects, 0);
            }
            self.dense[..num_objects].fill(0);
        } else if self.epoch == u32::MAX {
            self.cells.fill(Cell::default());
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.touched.clear();
        self.harvesting = harvesting;
        self.touched_limit = config.touched_limit(num_objects);
        self.lanes = config.effective_lanes();
    }

    /// The mid-scan sparse→dense flip: the touched list is complete up
    /// to this point, so the harvested counts are replayed into the
    /// dense array and the rest of the scan lands on the vectorized
    /// lane path (instead of limping on with stamped bumps and an
    /// `O(n)` epoch-filtered sweep at the end).
    fn switch_to_dense(&mut self) {
        self.harvesting = false;
        if self.dense.len() < self.active {
            self.dense.resize(self.active, 0);
        }
        self.dense[..self.active].fill(0);
        for &id in &self.touched {
            self.dense[id as usize] = self.cells[id as usize].count;
        }
        self.touched.clear();
        self.zeroed = true;
    }

    #[inline]
    fn bump_harvest(&mut self, obj: ObjectId) {
        let cell = &mut self.cells[obj as usize];
        if cell.stamp == self.epoch {
            cell.count += 1;
        } else {
            cell.stamp = self.epoch;
            cell.count = 1;
            self.touched.push(obj);
        }
    }

    /// Stream one contiguous postings run through the counters.
    /// Harvesting counts in [`CHUNK`]-wide pieces with the adaptive
    /// dense check between chunks; dense mode (up front or after the
    /// flip) runs the lane-split scatter.
    fn count_run(&mut self, run: &[ObjectId]) {
        let mut rest = run;
        if self.harvesting {
            let mut consumed = 0;
            for chunk in run.chunks(CHUNK) {
                for &obj in chunk {
                    self.bump_harvest(obj);
                }
                consumed += chunk.len();
                if self.touched.len() > self.touched_limit {
                    // too dense to stay sparse: replay the (complete)
                    // harvest into the dense array and continue there
                    self.switch_to_dense();
                    break;
                }
            }
            if self.harvesting {
                return;
            }
            rest = &run[consumed..];
        }
        debug_assert!(self.zeroed, "non-harvesting counting is always dense");
        match self.lanes {
            8 => count_lanes::<8>(&mut self.dense, rest),
            4 => count_lanes::<4>(&mut self.dense, rest),
            2 => count_lanes::<2>(&mut self.dense, rest),
            _ => count_lanes::<1>(&mut self.dense, rest),
        }
    }

    /// Add `delta` pre-counted matches for `obj` (merging another
    /// worker's partial counts), with the same first-touch bookkeeping
    /// as counting.
    #[inline]
    fn add(&mut self, obj: ObjectId, delta: u32) {
        if self.zeroed {
            self.dense[obj as usize] += delta;
            return;
        }
        let cell = &mut self.cells[obj as usize];
        if cell.stamp == self.epoch {
            cell.count += delta;
        } else {
            cell.stamp = self.epoch;
            cell.count = delta;
            self.touched.push(obj);
            if self.touched.len() > self.touched_limit {
                self.switch_to_dense();
            }
        }
    }

    /// Visit every `(object, count)` this query touched — from the
    /// harvested list when it is complete, else by the count-filtered
    /// dense sweep.
    fn for_each_candidate(&self, mut f: impl FnMut(ObjectId, u32)) {
        if self.harvesting {
            for &id in &self.touched {
                f(id, self.cells[id as usize].count);
            }
        } else {
            debug_assert!(self.zeroed, "non-harvesting scratches are dense");
            for (id, &count) in self.dense[..self.active].iter().enumerate() {
                if count > 0 {
                    f(id as ObjectId, count);
                }
            }
        }
    }

    /// Fold this scratch's counts into `main` (intra-query merge).
    /// Two dense scratches merge element-wise through the vectorized
    /// [`merge_dense`]; any other combination replays candidates
    /// through the epoch-stamped [`add`](Self::add).
    fn merge_into(&self, main: &mut CountScratch) {
        if self.zeroed && main.zeroed {
            debug_assert_eq!(self.active, main.active);
            merge_dense(&mut main.dense[..main.active], &self.dense[..self.active]);
            return;
        }
        self.for_each_candidate(|id, count| main.add(id, count));
    }

    /// Reduce the touched counters to the final `(top-k, AT)` answer.
    /// Returns the candidate count alongside for stats.
    fn finalize(&self, k: usize) -> (Vec<TopHit>, u32, u64) {
        let (hits, candidates) = if self.harvesting {
            let hits = finalize_unique_candidates(
                self.touched
                    .iter()
                    .map(|&id| (id, self.cells[id as usize].count)),
                1,
                k,
            );
            (hits, self.touched.len() as u64)
        } else if let Some(out) = self.finalize_dense_hist(k) {
            out
        } else {
            // a count overflowed the histogram range: fall back to the
            // full collect + quickselect (bit-identical, just slower)
            let mut dense: Vec<TopHit> = Vec::new();
            self.for_each_candidate(|id, count| dense.push(TopHit { id, count }));
            let candidates = dense.len() as u64;
            (partial_top_k(dense, k), candidates)
        };
        let at = audit_threshold(&hits, k);
        (hits, at, candidates)
    }

    /// Dense finalisation without the `O(candidates)` quickselect: a
    /// 4-lane count histogram locates the k-th boundary count, then a
    /// [`screen_chunk`]-vectorized scan collects only the qualifying
    /// objects (all counts above the boundary, plus the lowest-id ties
    /// exactly as [`partial_top_k`] would keep them). Returns `None`
    /// when some count reaches the histogram's clamp bucket — the
    /// caller then takes the sweeping fallback.
    fn finalize_dense_hist(&self, k: usize) -> Option<(Vec<TopHit>, u64)> {
        const HB: usize = HIST_BUCKETS;
        let counts = &self.dense[..self.active];
        // four interleaved histograms: saturating workloads hammer a
        // handful of buckets, and a single histogram serializes on
        // store-to-load forwarding of those hot counters
        let mut hist = [[0u32; HB]; 4];
        let quarter = counts.len() / 4;
        for i in 0..quarter {
            hist[0][(counts[i] as usize).min(HB - 1)] += 1;
            hist[1][(counts[quarter + i] as usize).min(HB - 1)] += 1;
            hist[2][(counts[2 * quarter + i] as usize).min(HB - 1)] += 1;
            hist[3][(counts[3 * quarter + i] as usize).min(HB - 1)] += 1;
        }
        for &c in &counts[4 * quarter..] {
            hist[0][(c as usize).min(HB - 1)] += 1;
        }
        let [h0, h1, h2, h3] = &mut hist;
        for b in 0..HB {
            h0[b] += h1[b] + h2[b] + h3[b];
        }
        if h0[HB - 1] > 0 {
            // the clamp bucket mixes counts >= HB-1: boundary order
            // inside it is unknown, so this path cannot stay exact
            return None;
        }
        let candidates = (counts.len() - h0[0] as usize) as u64;

        // walk down to the k-th boundary: after the loop, `thresh` is
        // the k-th largest count and `quota` how many boundary ties the
        // top-k has room for (0/0 when fewer than k objects matched)
        let mut need = k;
        let mut thresh = 0usize;
        let mut quota = 0usize;
        for c in (1..HB - 1).rev() {
            let at_c = h0[c] as usize;
            if at_c >= need {
                thresh = c;
                quota = need;
                break;
            }
            need -= at_c;
        }

        let screen = thresh.max(1) as u32;
        let mut hits: Vec<TopHit> = Vec::with_capacity(k.min(candidates as usize));
        let mut ties = 0usize;
        let mut base = 0usize;
        for chunk in counts.chunks(CHUNK) {
            if screen_chunk(chunk, screen) {
                for (off, &count) in chunk.iter().enumerate() {
                    let c = count as usize;
                    if c > thresh {
                        hits.push(TopHit {
                            id: (base + off) as ObjectId,
                            count,
                        });
                    } else if c == thresh && thresh > 0 && ties < quota {
                        // ascending scan order = lowest-id ties first,
                        // exactly the quickselect's boundary choice
                        hits.push(TopHit {
                            id: (base + off) as ObjectId,
                            count,
                        });
                        ties += 1;
                    }
                }
            }
            base += chunk.len();
        }
        hits.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        Some((hits, candidates))
    }

    /// Test-only hook: force the stamped table's epoch so integration
    /// tests can drive the wrap-around re-zero path without running
    /// `u32::MAX` queries first.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Resident bytes of this scratch (counter table + touched list +
    /// run buffer capacities).
    pub fn bytes(&self) -> u64 {
        (self.cells.capacity() * std::mem::size_of::<Cell>()
            + self.dense.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<ObjectId>()
            + self.runs.capacity() * std::mem::size_of::<PostingsSegment>()) as u64
    }
}

/// A pool of [`CountScratch`]es shared by every query run against one
/// uploaded index. The pool grows to the peak number of concurrently
/// counting workers and then stays flat — per-query allocation and
/// zeroing are gone after warm-up, which is the whole point. Its
/// resident footprint is what
/// [`SearchOutput::cpq_bytes_per_query`](crate::exec::SearchOutput)
/// reports (amortised over the batch), the honest host analogue of the
/// paper's Table IV memory column.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<CountScratch>>,
    /// Bytes of every scratch this pool owns — including scratches
    /// currently loaned to a worker (at their size as of last release).
    /// A pure free-list sum would nondeterministically undercount when
    /// concurrent batches (`dispatchers > 1`) hold scratches checked
    /// out while a sibling batch reads the footprint.
    tracked_bytes: AtomicU64,
}

impl ScratchPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a scratch (reusing a warmed one when available). The
    /// scratch stays accounted in [`resident_bytes`](Self::resident_bytes)
    /// while loaned out.
    pub fn acquire(&self) -> CountScratch {
        self.lock().pop().unwrap_or_default()
    }

    /// Return a scratch for reuse, folding any growth since it was last
    /// accounted into the pool's tracked footprint.
    pub fn release(&self, mut scratch: CountScratch) {
        let bytes = scratch.bytes();
        let grown = bytes.saturating_sub(scratch.accounted_bytes);
        scratch.accounted_bytes = bytes;
        if grown > 0 {
            self.tracked_bytes.fetch_add(grown, Ordering::Relaxed);
        }
        self.lock().push(scratch);
    }

    /// Total bytes of every scratch this pool owns (free or loaned, the
    /// latter at their last-released size): the kernel's whole resident
    /// scratch footprint, stable even while sibling batches are
    /// mid-flight on the same index.
    pub fn resident_bytes(&self) -> u64 {
        self.tracked_bytes.load(Ordering::Relaxed)
    }

    /// Number of scratches currently in the free list.
    pub fn resident_scratches(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<CountScratch>> {
        // a poisoned pool only means a worker panicked mid-count; the
        // scratches themselves are epoch-guarded, so reuse stays sound
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Buckets of the dense finalisation histogram: counts in
/// `[0, HIST_BUCKETS - 2]` resolve exactly; any count reaching the top
/// (clamp) bucket sends finalisation to the sweeping fallback.
const HIST_BUCKETS: usize = 256;

/// The lane-split dense scatter: `run` is divided into `L` equal
/// contiguous sub-runs advanced in lockstep, giving the core `L`
/// independent load-increment-store chains per iteration (the scatter
/// itself cannot be vectorized — increments conflict on arbitrary
/// addresses — but it is latency-bound, and contiguous sub-runs keep
/// the chains on distinct cache lines). The `run.len() % L` remainder
/// is counted scalar.
fn count_lanes<const L: usize>(dense: &mut [u32], run: &[ObjectId]) {
    let part = run.len() / L;
    for i in 0..part {
        for l in 0..L {
            dense[run[l * part + i] as usize] += 1;
        }
    }
    for &obj in &run[L * part..] {
        dense[obj as usize] += 1;
    }
}

/// Element-wise merge of a worker's dense lane array into the primary
/// (`dst[i] += src[i]`): the loop the autovectorizer must keep SIMD —
/// `repro --cpu-kernel` (full run) asserts its measured throughput
/// stays above any scalar plausibility. `#[inline(never)]` keeps it a
/// single inspectable symbol.
#[inline(never)]
pub fn merge_dense(dst: &mut [u32], src: &[u32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Branch-free "does any count in `chunk` reach `screen`?" test used to
/// skip whole chunks during dense candidate collection; written as a
/// reduction over the chunk so the autovectorizer turns it into wide
/// compares (asserted alongside [`merge_dense`] by the bench).
#[inline(never)]
pub fn screen_chunk(chunk: &[u32], screen: u32) -> bool {
    let mut any = false;
    for &c in chunk {
        any |= c >= screen;
    }
    any
}

/// Resolve `query` against the Position Map into coalesced contiguous
/// runs (stored in `runs`), returning the total postings volume.
fn gather_runs(index: &InvertedIndex, query: &Query, runs: &mut Vec<PostingsSegment>) -> u64 {
    runs.clear();
    let mut total = 0u64;
    for item in &query.items {
        for seg in index.coalesced_segments_for_range(item.lo, item.hi) {
            total += seg.len as u64;
            runs.push(seg);
        }
    }
    total
}

/// One query's exact top-k plus its final AuditThreshold, counted on a
/// single worker with `scratch`.
pub fn search_one(
    index: &InvertedIndex,
    query: &Query,
    k: usize,
    scratch: &mut CountScratch,
    config: &KernelConfig,
    stats: &KernelStats,
) -> (Vec<TopHit>, u32) {
    let mut runs = std::mem::take(&mut scratch.runs);
    let total = gather_runs(index, query, &mut runs);
    let out = search_gathered(index, &runs, total, k, scratch, config, stats);
    scratch.runs = runs;
    out
}

/// The sequential kernel body over pre-gathered coalesced runs: the
/// Position Map is consulted exactly once per query, whichever entry
/// point ([`search_one`] or the [`search_one_parallel`] fallback)
/// resolved it.
fn search_gathered(
    index: &InvertedIndex,
    runs: &[PostingsSegment],
    total: u64,
    k: usize,
    scratch: &mut CountScratch,
    config: &KernelConfig,
    stats: &KernelStats,
) -> (Vec<TopHit>, u32) {
    let n = index.num_objects() as usize;
    let list = index.list_array();
    scratch.begin(n, config.harvest_up_front(total, n), config);
    for seg in runs {
        scratch.count_run(&list[seg.start as usize..(seg.start + seg.len) as usize]);
    }
    let (hits, at, candidates) = scratch.finalize(k);
    stats.record(scratch.harvesting, false, total, candidates);
    (hits, at)
}

/// [`search_one`] with intra-query parallelism: the query's coalesced
/// runs are split into up to `workers` near-equal postings spans, each
/// counted into its own pool scratch concurrently, and the partial
/// counts merged before one final reduction — sparse spans by epoch
/// (per harvested candidate), dense spans element-wise through the
/// vectorized [`merge_dense`] over per-span lane arrays. Falls back to
/// the single-worker kernel when the query is too small
/// ([`KernelConfig::parallel_min_postings`]) or `workers <= 1`.
/// Dense-predicted queries participate with the worker count
/// additionally capped at `total_postings / n`: each dense span pays
/// an `O(n)` zero + merge, so the fan-out only holds as long as every
/// span still scans more postings than it zeroes and merges.
///
/// Counts are bit-identical to the sequential kernel for any split:
/// counting is addition over the postings multiset, and the merge
/// preserves the adaptive sparse/dense decision per scratch.
pub fn search_one_parallel(
    index: &InvertedIndex,
    query: &Query,
    k: usize,
    pool: &ScratchPool,
    workers: usize,
    config: &KernelConfig,
    stats: &KernelStats,
) -> (Vec<TopHit>, u32) {
    let mut main = pool.acquire();
    let n = index.num_objects() as usize;
    let mut runs = std::mem::take(&mut main.runs);
    let total = gather_runs(index, query, &mut runs);

    let harvest = config.harvest_up_front(total, n);
    let workers = if harvest {
        workers
    } else {
        workers.min((total / n.max(1) as u64).max(1) as usize)
    };
    if workers <= 1 || total < config.parallel_min_postings {
        let out = search_gathered(index, &runs, total, k, &mut main, config, stats);
        main.runs = runs;
        pool.release(main);
        return out;
    }

    let spans = split_runs(&runs, workers, total);
    let list = index.list_array();
    let parts: Vec<CountScratch> = spans
        .par_iter()
        .map(|span| {
            let mut scratch = pool.acquire();
            scratch.begin(n, harvest, config);
            for seg in span {
                scratch.count_run(&list[seg.start as usize..(seg.start + seg.len) as usize]);
            }
            scratch
        })
        .collect();

    main.begin(n, harvest, config);
    for part in &parts {
        part.merge_into(&mut main);
    }
    for part in parts {
        pool.release(part);
    }
    let (hits, at, candidates) = main.finalize(k);
    stats.record(main.harvesting, true, total, candidates);
    runs.clear();
    main.runs = runs;
    pool.release(main);
    (hits, at)
}

/// Split coalesced runs into at most `workers` spans of near-equal
/// postings volume, cutting *inside* runs where needed so one giant
/// coalesced run still spreads across the fleet.
fn split_runs(runs: &[PostingsSegment], workers: usize, total: u64) -> Vec<Vec<PostingsSegment>> {
    let target = total.div_ceil(workers.max(1) as u64).max(1);
    let mut spans: Vec<Vec<PostingsSegment>> = vec![Vec::new()];
    let mut in_span = 0u64;
    for seg in runs {
        let mut start = seg.start;
        let mut remaining = seg.len;
        while remaining > 0 {
            if in_span >= target {
                spans.push(Vec::new());
                in_span = 0;
            }
            let take = (remaining as u64).min(target - in_span) as u32;
            spans
                .last_mut()
                .expect("spans starts non-empty")
                .push(PostingsSegment { start, len: take });
            start += take;
            remaining -= take;
            in_span += take as u64;
        }
    }
    spans
}

/// The seed dense counting path, kept executable as the reference the
/// optimised kernel is property-tested bit-identical against (and the
/// baseline `repro --cpu-kernel` measures speedups over): fresh dense
/// `vec![0u32; n]` per query, full postings scan over uncoalesced
/// segments, `O(n)` candidate sweep, shared top-k finalisation.
pub fn reference_search_one(index: &InvertedIndex, query: &Query, k: usize) -> (Vec<TopHit>, u32) {
    let n = index.num_objects() as usize;
    let list = index.list_array();
    let mut counts = vec![0u32; n];
    for item in &query.items {
        for seg in index.segments_for_range(item.lo, item.hi) {
            for &obj in &list[seg.start as usize..(seg.start + seg.len) as usize] {
                counts[obj as usize] += 1;
            }
        }
    }
    let candidates: Vec<TopHit> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(id, &count)| TopHit {
            id: id as ObjectId,
            count,
        })
        .collect();
    let hits = partial_top_k(candidates, k);
    let at = audit_threshold(&hits, k);
    (hits, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::{Object, QueryItem};
    use std::sync::Arc;

    fn index_of(objects: &[Object]) -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        Arc::new(b.build(None))
    }

    fn clustered_objects(n: u32) -> Vec<Object> {
        (0..n)
            .map(|i| Object::new(vec![i % 7, 100 + i % 3, 200 + (i % 11)]))
            .collect()
    }

    #[test]
    fn kernel_matches_reference_in_both_modes() {
        let objects = clustered_objects(500);
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let queries = [
            Query::from_keywords(&[3, 101]),            // selective
            Query::new(vec![QueryItem::range(0, 300)]), // touches everything
            Query::new(vec![QueryItem::range(50, 90)]), // matches nothing
            Query::new(vec![QueryItem::range(0, 6), QueryItem::range(3, 6)]), // overlap
        ];
        for (qi, q) in queries.iter().enumerate() {
            for k in [1, 5, 1000] {
                let expected = reference_search_one(&index, q, k);
                let got = search_one(&index, q, k, &mut scratch, &config, &stats);
                assert_eq!(expected, got, "query {qi}, k {k}");
            }
        }
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 12);
        assert!(snap.sparse_finalize > 0 && snap.dense_finalize > 0);
    }

    #[test]
    fn epoch_reuse_never_leaks_previous_counts() {
        let objects = clustered_objects(100);
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        // a heavy query stamps nearly every cell...
        search_one(
            &index,
            &Query::new(vec![QueryItem::range(0, 300)]),
            10,
            &mut scratch,
            &config,
            &stats,
        );
        // ...then a disjoint selective query must see pristine counters
        let q = Query::from_keywords(&[205]);
        let got = search_one(&index, &q, 100, &mut scratch, &config, &stats);
        assert_eq!(got, reference_search_one(&index, &q, 100));
        assert!(got.0.iter().all(|h| h.count == 1));
    }

    #[test]
    fn epoch_wraparound_rezeroes_physically() {
        let objects = clustered_objects(50);
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let q = Query::from_keywords(&[3]);
        let expected = reference_search_one(&index, &q, 50);
        search_one(&index, &q, 50, &mut scratch, &config, &stats);
        // force the wrap: the next begin() must re-zero, not alias
        scratch.epoch = u32::MAX;
        let got = search_one(&index, &q, 50, &mut scratch, &config, &stats);
        assert_eq!(got, expected);
        assert_eq!(scratch.epoch, 1);
        let again = search_one(&index, &q, 50, &mut scratch, &config, &stats);
        assert_eq!(again, expected);
    }

    #[test]
    fn mid_scan_fallback_switches_to_dense_finalize() {
        let objects = clustered_objects(400);
        let index = index_of(&objects);
        // postings volume predicts sparse, but every object matches:
        // harvesting must abort mid-scan, replay onto the dense lane
        // path, and the dense finalisation must agree
        let config = KernelConfig {
            dense_postings_per_object: 100.0, // never dense up front
            dense_touched_fraction: 0.1,      // overflow almost at once
            ..Default::default()
        };
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let q = Query::new(vec![QueryItem::range(0, 300)]);
        let got = search_one(&index, &q, 25, &mut scratch, &config, &stats);
        assert_eq!(got, reference_search_one(&index, &q, 25));
        assert_eq!(stats.snapshot().dense_finalize, 1);
        assert!(scratch.zeroed, "the flip must land on the dense path");
        assert!(!scratch.harvesting);
    }

    #[test]
    fn every_lane_config_counts_identically() {
        let objects = clustered_objects(700);
        let index = index_of(&objects);
        let stats = KernelStats::default();
        // force the dense path so the lane scatter is what's under test
        for lanes in [0, 1, 2, 3, 4, 5, 7, 8, 9, 64] {
            let config = KernelConfig {
                dense_postings_per_object: 0.0,
                dense_lanes: lanes,
                ..Default::default()
            };
            let mut scratch = CountScratch::default();
            for q in [
                Query::new(vec![QueryItem::range(0, 300)]),
                Query::from_keywords(&[3, 101]),
                Query::new(vec![QueryItem::range(50, 90)]), // matches nothing
            ] {
                let expected = reference_search_one(&index, &q, 9);
                let got = search_one(&index, &q, 9, &mut scratch, &config, &stats);
                assert_eq!(expected, got, "lanes = {lanes}");
            }
        }
        assert_eq!(stats.snapshot().sparse_finalize, 0);
    }

    #[test]
    fn histogram_overflow_falls_back_to_the_sweep() {
        // one object matched more times than the histogram can bucket:
        // finalisation must take the clamp fallback and stay exact
        let mut objects = vec![Object::new(vec![5; 2 * HIST_BUCKETS])];
        objects.extend((0..6).map(|i| Object::new(vec![i])));
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let q = Query::new(vec![QueryItem::range(0, 10)]);
        let got = search_one(&index, &q, 3, &mut scratch, &config, &stats);
        assert_eq!(got, reference_search_one(&index, &q, 3));
        assert_eq!(got.0[0].count, 2 * HIST_BUCKETS as u32);
        assert_eq!(stats.snapshot().dense_finalize, 1, "dense up front");
    }

    #[test]
    fn boundary_ties_keep_the_lowest_ids() {
        // 40 objects all tied at count 2 in dense mode: the histogram
        // path must pick the same lowest-id boundary ties as the
        // quickselect it replaces
        let objects: Vec<Object> = (0..40).map(|_| Object::new(vec![1, 2])).collect();
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let q = Query::new(vec![QueryItem::range(1, 2)]);
        for k in [1, 7, 39, 40, 50] {
            let got = search_one(&index, &q, k, &mut scratch, &config, &stats);
            assert_eq!(got, reference_search_one(&index, &q, k), "k = {k}");
            let ids: Vec<u32> = got.0.iter().map(|h| h.id).collect();
            let want: Vec<u32> = (0..k.min(40) as u32).collect();
            assert_eq!(ids, want, "k = {k}");
        }
        assert!(stats.snapshot().dense_finalize > 0);
    }

    #[test]
    fn dense_queries_fan_out_and_merge_elementwise() {
        let objects = clustered_objects(2_000);
        let index = index_of(&objects);
        let config = KernelConfig {
            parallel_min_postings: 1,
            ..Default::default()
        };
        let stats = KernelStats::default();
        let pool = ScratchPool::new();
        // ~3 postings per object: dense up front, worker cap total/n = 3
        let q = Query::new(vec![QueryItem::range(0, 300)]);
        for workers in [2, 3, 8] {
            let expected = reference_search_one(&index, &q, 12);
            let got = search_one_parallel(&index, &q, 12, &pool, workers, &config, &stats);
            assert_eq!(expected, got, "workers {workers}");
        }
        let snap = stats.snapshot();
        assert!(snap.parallel_queries > 0, "dense queries must fan out");
        assert_eq!(snap.sparse_finalize, 0);
    }

    #[test]
    fn simd_helpers_compute_what_the_scalar_loops_would() {
        let mut dst: Vec<u32> = (0..1000).collect();
        let src: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        merge_dense(&mut dst, &src);
        assert!(dst.iter().enumerate().all(|(i, &v)| v as usize == i * 4));
        assert!(!screen_chunk(&[0, 1, 2, 3], 4));
        assert!(screen_chunk(&[0, 1, 2, 4], 4));
        assert!(!screen_chunk(&[], 1));
    }

    #[test]
    fn parallel_split_and_merge_is_bit_identical() {
        let objects = clustered_objects(3_000);
        let index = index_of(&objects);
        let config = KernelConfig {
            parallel_min_postings: 1, // force the parallel path
            ..Default::default()
        };
        let stats = KernelStats::default();
        let pool = ScratchPool::new();
        for workers in [2, 3, 8, 64] {
            for q in [
                Query::from_keywords(&[2, 101, 203]),
                Query::new(vec![QueryItem::range(0, 210)]),
                Query::new(vec![QueryItem::range(400, 500)]),
            ] {
                let expected = reference_search_one(&index, &q, 17);
                let got = search_one_parallel(&index, &q, 17, &pool, workers, &config, &stats);
                assert_eq!(expected, got, "workers {workers}");
            }
        }
        assert!(stats.snapshot().parallel_queries > 0);
        // every scratch went back to the pool
        assert!(pool.resident_scratches() >= 2);
        assert!(pool.resident_bytes() > 0);
    }

    #[test]
    fn parallel_path_falls_back_for_small_queries() {
        let objects = clustered_objects(60);
        let index = index_of(&objects);
        let config = KernelConfig::default(); // parallel_min_postings = 8192
        let stats = KernelStats::default();
        let pool = ScratchPool::new();
        let q = Query::from_keywords(&[5]);
        let got = search_one_parallel(&index, &q, 5, &pool, 8, &config, &stats);
        assert_eq!(got, reference_search_one(&index, &q, 5));
        assert_eq!(stats.snapshot().parallel_queries, 0);
        assert_eq!(pool.resident_scratches(), 1, "fallback uses one scratch");
    }

    #[test]
    fn split_runs_covers_every_posting_exactly_once() {
        let runs = vec![
            PostingsSegment { start: 0, len: 10 },
            PostingsSegment { start: 10, len: 1 },
            PostingsSegment {
                start: 50,
                len: 100,
            },
        ];
        for workers in 1..12 {
            let spans = split_runs(&runs, workers, 111);
            assert!(spans.len() <= workers.max(1));
            let mut covered: Vec<(u32, u32)> =
                spans.iter().flatten().map(|s| (s.start, s.len)).collect();
            assert!(covered.iter().all(|&(_, len)| len > 0));
            covered.sort_unstable();
            let total: u32 = covered.iter().map(|&(_, len)| len).sum();
            assert_eq!(total, 111, "workers {workers}");
            // spans tile the original runs without overlap
            let mut flat: Vec<u32> = Vec::new();
            for &(start, len) in &covered {
                flat.extend(start..start + len);
            }
            let mut expected: Vec<u32> = Vec::new();
            for r in &runs {
                expected.extend(r.start..r.start + r.len);
            }
            flat.sort_unstable();
            expected.sort_unstable();
            assert_eq!(flat, expected);
        }
    }

    #[test]
    fn pool_reuses_scratches_across_queries() {
        let objects = clustered_objects(200);
        let index = index_of(&objects);
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let pool = ScratchPool::new();
        for i in 0..20 {
            let mut scratch = pool.acquire();
            search_one(
                &index,
                &Query::from_keywords(&[i % 7]),
                3,
                &mut scratch,
                &config,
                &stats,
            );
            pool.release(scratch);
        }
        assert_eq!(
            pool.resident_scratches(),
            1,
            "sequential queries share one scratch"
        );
    }

    #[test]
    fn empty_query_and_empty_index() {
        let config = KernelConfig::default();
        let stats = KernelStats::default();
        let mut scratch = CountScratch::default();
        let empty_index = IndexBuilder::new().build(None);
        let (hits, at) = search_one(
            &empty_index,
            &Query::from_keywords(&[1]),
            3,
            &mut scratch,
            &config,
            &stats,
        );
        assert!(hits.is_empty());
        assert_eq!(at, 1);

        let index = index_of(&clustered_objects(10));
        let (hits, at) = search_one(
            &index,
            &Query::new(vec![]),
            3,
            &mut scratch,
            &config,
            &stats,
        );
        assert!(hits.is_empty());
        assert_eq!(at, 1);
    }
}
