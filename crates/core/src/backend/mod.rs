//! Pluggable search backends.
//!
//! The seed engine hard-wired every caller to the simulated-GPU
//! [`Engine`]. This module abstracts execution behind the
//! [`SearchBackend`] trait so the type-mapping layers (`genie-lsh`,
//! `genie-sa`), the bench harness, the CLI and the `genie-service`
//! scheduler can run the *same* match-count pipeline on any of:
//!
//! * [`Engine`] — the paper-faithful gpu-sim pipeline (c-PQ on the
//!   simulated device, per-stage cost-model timing);
//! * [`CpuBackend`] — a pure-host rayon implementation with no device
//!   simulation overhead, built on the sparse-aware counting kernel of
//!   [`kernel`] (epoch-stamped reusable scratch, coalesced chunked
//!   postings scans, adaptive sparse/dense finalisation, intra-query
//!   parallelism for small waves) plus the same deterministic top-k
//!   finalisation (the "as fast as the hardware allows" serving path);
//! * [`MultiDeviceBackend`] — multiple simulated devices, each paging
//!   device-sized index parts through memory (absorbing the multiple
//!   loading / multi-device fan-out of [`crate::multiload`] behind the
//!   common interface).
//!
//! All three return the engine's [`SearchOutput`] shape: per-query
//! [`TopHit`](crate::topk::TopHit) lists with deterministic
//! (count-descending, id-ascending) ordering, final AuditThresholds and
//! a per-stage [`StageProfile`](crate::exec::StageProfile).

mod cpu;
pub mod kernel;
mod multi;

pub use cpu::CpuBackend;
pub use multi::MultiDeviceBackend;

use std::any::Any;
use std::sync::Arc;

use crate::exec::{DeviceIndex, Engine, SearchOutput};
use crate::index::InvertedIndex;
use crate::model::Query;

/// What a backend is and how much it can hold — the scheduler uses this
/// to size micro-batches and pick dispatch targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Short stable identifier ("gpu-sim", "cpu", "multi-device").
    pub name: &'static str,
    pub kind: BackendKind,
    /// Underlying execution units (simulated devices or host threads).
    pub devices: usize,
    /// Memory available for index + c-PQ state, if the backend enforces
    /// a budget (`None` = host memory, effectively unbounded here).
    pub memory_bytes: Option<u64>,
    /// Whether [`StageProfile`](crate::exec::StageProfile) carries
    /// simulated device time (`false` = host wall-clock only).
    pub reports_sim_time: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// One simulated SIMT device.
    SimulatedDevice,
    /// Pure host execution.
    Host,
    /// Several simulated devices with part swapping.
    MultiDevice,
}

/// An inverted index prepared for one specific backend: the shared
/// host-resident index plus whatever backend-private state `upload`
/// produced (device-resident List Array, part assignments, nothing for
/// the CPU path).
pub struct BackendIndex {
    index: Arc<InvertedIndex>,
    /// Simulated microseconds the upload's H2D transfers took (0 for
    /// host backends and for backends that defer transfers to search
    /// time).
    pub upload_sim_us: f64,
    payload: Box<dyn Any + Send + Sync>,
}

impl BackendIndex {
    pub fn new(
        index: Arc<InvertedIndex>,
        upload_sim_us: f64,
        payload: impl Any + Send + Sync,
    ) -> Self {
        Self {
            index,
            upload_sim_us,
            payload: Box::new(payload),
        }
    }

    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    pub fn num_objects(&self) -> u32 {
        self.index.num_objects()
    }

    /// Backend-private state, if it is a `T`. A mismatch means the
    /// handle was produced by a different backend.
    pub fn payload<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Postings a counting scan of `query` visits on this prepared
    /// index — the per-query scan-cost statistic
    /// (see [`InvertedIndex::predicted_postings`]) that the service
    /// scheduler's cost-aware wave packing turns into predicted
    /// microseconds. Surfaced on the prepared handle so schedulers
    /// price queries against exactly the index a backend will scan.
    pub fn predicted_scan_postings(&self, query: &Query) -> u64 {
        self.index.predicted_postings(query)
    }
}

/// A search execution engine: upload an index once, run top-k
/// match-count batches against it many times.
///
/// Implementations must agree with the brute-force
/// [`match_count`](crate::model::match_count) model on counts, order
/// results count-descending with ascending-id tie-breaks, and report
/// final AuditThresholds with the Theorem 3.1 semantics
/// (`AT - 1 = MC_k`, `AT = 1` when fewer than `k` objects matched).
pub trait SearchBackend: Send + Sync {
    /// Capability and memory report.
    fn capabilities(&self) -> BackendCaps;

    /// Prepare `index` for searching on this backend. Fails (with a
    /// human-readable reason) if the index cannot fit.
    fn upload(&self, index: Arc<InvertedIndex>) -> Result<BackendIndex, String>;

    /// Run one batch of queries, returning each query's top `k`.
    fn search_batch(&self, index: &BackendIndex, queries: &[Query], k: usize) -> SearchOutput;

    /// Memory left for one batch's c-PQ state once `index` is resident,
    /// for batch-sizing by a scheduler. `None` = no bound. The default
    /// subtracts the whole index's device footprint from the reported
    /// memory; backends that never hold the full index at once (part
    /// swapping) override this.
    fn batch_memory_budget(&self, index: &BackendIndex) -> Option<u64> {
        self.capabilities()
            .memory_bytes
            .map(|m| m.saturating_sub(index.index().device_bytes()))
    }

    /// Escape hatch for callers that need a concrete backend (e.g. the
    /// GEN-SPQ baseline scanning the device-resident List Array).
    fn as_any(&self) -> &dyn Any;
}

impl SearchBackend for Engine {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            name: "gpu-sim",
            kind: BackendKind::SimulatedDevice,
            devices: 1,
            memory_bytes: Some(self.device().config().memory_bytes),
            reports_sim_time: true,
        }
    }

    fn upload(&self, index: Arc<InvertedIndex>) -> Result<BackendIndex, String> {
        let dindex = Engine::upload(self, index)?;
        Ok(BackendIndex::new(
            Arc::clone(&dindex.index),
            dindex.upload_sim_us,
            dindex,
        ))
    }

    fn search_batch(&self, index: &BackendIndex, queries: &[Query], k: usize) -> SearchOutput {
        let dindex = index
            .payload::<DeviceIndex>()
            .expect("index was uploaded to a different backend than this Engine");
        Engine::search(self, dindex, queries, k)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::Object;
    use gpu_sim::Device;

    fn small_index() -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(
            [
                Object::new(vec![1, 5]),
                Object::new(vec![1, 6]),
                Object::new(vec![2, 5]),
            ]
            .iter(),
        );
        Arc::new(b.build(None))
    }

    #[test]
    fn engine_works_through_the_trait_object() {
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let backend: &dyn SearchBackend = &engine;
        assert_eq!(backend.capabilities().name, "gpu-sim");
        assert!(backend.capabilities().reports_sim_time);
        let bindex = backend.upload(small_index()).unwrap();
        assert!(bindex.upload_sim_us > 0.0);
        let out = backend.search_batch(&bindex, &[Query::from_keywords(&[1, 5])], 2);
        assert_eq!(out.results[0][0].id, 0);
        assert_eq!(out.results[0][0].count, 2);
    }

    #[test]
    fn engine_trait_upload_respects_device_memory() {
        let cfg = gpu_sim::DeviceConfig {
            memory_bytes: 8,
            ..Default::default()
        };
        let engine = Engine::new(Arc::new(Device::new(cfg)));
        let backend: &dyn SearchBackend = &engine;
        assert!(backend.upload(small_index()).is_err());
        assert_eq!(backend.capabilities().memory_bytes, Some(8));
    }

    #[test]
    fn payload_mismatch_is_detectable() {
        let engine = Engine::new(Arc::new(Device::with_defaults()));
        let cpu = CpuBackend::new();
        let bindex = SearchBackend::upload(&cpu, small_index()).unwrap();
        // an Engine cannot search a CPU-prepared handle
        assert!(bindex.payload::<DeviceIndex>().is_none());
        let _ = engine; // the downcast above is what search_batch asserts
    }
}
