//! The multi-device backend: several simulated devices, each paging
//! device-sized index parts through memory.
//!
//! This wraps the multiple-loading machinery of [`crate::multiload`]
//! (paper §III-D) behind the [`SearchBackend`] interface: `upload`
//! re-partitions the data set into parts that fit the smallest device
//! and assigns them round-robin; `search_batch` fans the batch out to
//! one host thread per device, swaps each device's parts through its
//! memory, and merges the per-part top-k into the global answer. Part
//! H2D swap time is reported in
//! [`StageProfile::index_swap_us`](crate::exec::StageProfile).

use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

use crate::cpq::CpqLayout;
use crate::exec::{elapsed_us, Engine, SearchOutput, StageProfile};
use crate::index::InvertedIndex;
use crate::model::{count_bound, Query};
use crate::multiload::{build_parts, multi_device_search, IndexPart};

use super::{BackendCaps, BackendIndex, BackendKind, SearchBackend};

/// Several engines (one per simulated device) sharing one logical index.
pub struct MultiDeviceBackend {
    engines: Vec<Engine>,
    part_size: usize,
}

struct MultiPayload {
    parts: Vec<IndexPart>,
}

impl MultiDeviceBackend {
    /// Wrap `engines` (one per device), splitting uploaded data sets
    /// into parts of at most `part_size` objects.
    pub fn from_engines(engines: Vec<Engine>, part_size: usize) -> Self {
        assert!(!engines.is_empty(), "need at least one device");
        assert!(part_size > 0, "part size must be positive");
        Self { engines, part_size }
    }

    /// Convenience: `devices` default-configured engines.
    pub fn with_default_devices(devices: usize, part_size: usize) -> Self {
        let engines = (0..devices.max(1))
            .map(|_| Engine::new(Arc::new(gpu_sim::Device::with_defaults())))
            .collect();
        Self::from_engines(engines, part_size)
    }

    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    fn smallest_device_memory(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.device().config().memory_bytes)
            .min()
            .expect("at least one engine")
    }
}

impl SearchBackend for MultiDeviceBackend {
    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            name: "multi-device",
            kind: BackendKind::MultiDevice,
            devices: self.engines.len(),
            // parts are swapped through each device, so the budget that
            // matters for batch sizing is one device's memory
            memory_bytes: Some(self.smallest_device_memory()),
            reports_sim_time: true,
        }
    }

    /// Re-partition the indexed data set into device-sized parts. No
    /// transfers happen here — parts are swapped in at search time, and
    /// the swap cost lands in `StageProfile::index_swap_us`.
    fn upload(&self, index: Arc<InvertedIndex>) -> Result<BackendIndex, String> {
        let objects = index.reconstruct_objects();
        let parts = build_parts(&objects, self.part_size, index.load_balance());
        let budget = self.smallest_device_memory();
        for (i, part) in parts.iter().enumerate() {
            let bytes = part.index.device_bytes();
            if bytes > budget {
                return Err(format!(
                    "part {i} needs {bytes} B but the smallest device holds {budget} B; \
                     lower part_size ({})",
                    self.part_size
                ));
            }
        }
        Ok(BackendIndex::new(index, 0.0, MultiPayload { parts }))
    }

    fn search_batch(&self, index: &BackendIndex, queries: &[Query], k: usize) -> SearchOutput {
        let payload = index
            .payload::<MultiPayload>()
            .expect("index was uploaded to a different backend than this MultiDeviceBackend");
        let started = Instant::now();
        let (results, reports) = multi_device_search(&self.engines, &payload.parts, queries, k);

        let mut profile = StageProfile::default();
        for report in &reports {
            profile.accumulate(&report.stages);
            profile.index_swap_us += report.index_transfer_us;
        }
        // devices ran concurrently: latency is the wall clock of this
        // call, not the sum of per-device host times
        profile.host_us = elapsed_us(started);

        // Theorem 3.1 on the *merged* answer: AT = global MC_k + 1
        let audit_thresholds = results
            .iter()
            .map(|hits| crate::topk::audit_threshold(hits, k))
            .collect();

        // worst part's c-PQ footprint (no per-engine count_bound
        // override is assumed here)
        let cpq_bytes_per_query = payload
            .parts
            .iter()
            .map(|p| {
                CpqLayout {
                    num_queries: queries.len().max(1),
                    num_objects: p.index.num_objects() as usize,
                    bound: count_bound(queries, p.index.max_object_len()),
                    k,
                }
                .bytes_per_query()
            })
            .max()
            .unwrap_or(0);

        SearchOutput {
            results,
            profile,
            cpq_bytes_per_query,
            audit_thresholds,
        }
    }

    /// Only one part is resident per device at a time, so the c-PQ
    /// budget is the smallest device minus the *largest part* — not
    /// minus the whole index (which may well exceed a single device;
    /// that is what this backend is for).
    fn batch_memory_budget(&self, index: &BackendIndex) -> Option<u64> {
        let largest_part = index
            .payload::<MultiPayload>()
            .map(|p| {
                p.parts
                    .iter()
                    .map(|part| part.index.device_bytes())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or_else(|| index.index().device_bytes());
        Some(self.smallest_device_memory().saturating_sub(largest_part))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::Object;
    use gpu_sim::{Device, DeviceConfig};

    fn objects(n: u32) -> Vec<Object> {
        (0..n)
            .map(|i| Object::new(vec![i % 7, 100 + i % 3]))
            .collect()
    }

    fn index_of(objects: &[Object]) -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        Arc::new(b.build(None))
    }

    #[test]
    fn multi_device_matches_single_engine() {
        let objs = objects(60);
        let index = index_of(&objs);
        let queries = vec![
            Query::from_keywords(&[3, 101]),
            Query::new(vec![crate::model::QueryItem::range(0, 2)]),
        ];
        let k = 10;

        let single = Engine::new(Arc::new(Device::with_defaults()));
        let dindex = Engine::upload(&single, Arc::clone(&index)).unwrap();
        let expected = single.search(&dindex, &queries, k);

        let multi = MultiDeviceBackend::with_default_devices(3, 17);
        let bindex = SearchBackend::upload(&multi, index).unwrap();
        let got = multi.search_batch(&bindex, &queries, k);

        // per-part AT evolution can admit different ids among k-th-count
        // ties than the whole-set scan; counts and ATs must match
        for q in 0..queries.len() {
            let e: Vec<u32> = expected.results[q].iter().map(|h| h.count).collect();
            let g: Vec<u32> = got.results[q].iter().map(|h| h.count).collect();
            assert_eq!(e, g, "query {q} count profile");
        }
        assert_eq!(expected.audit_thresholds, got.audit_thresholds);
        assert!(got.profile.index_swap_us > 0.0, "part swaps must be timed");
        assert!(got.profile.sim_total_us() > got.profile.index_swap_us);
    }

    #[test]
    fn upload_rejects_parts_larger_than_a_device() {
        let tiny = DeviceConfig {
            memory_bytes: 64, // 16 words
            ..Default::default()
        };
        let engines = vec![Engine::new(Arc::new(Device::new(tiny)))];
        let multi = MultiDeviceBackend::from_engines(engines, 1000);
        assert!(SearchBackend::upload(&multi, index_of(&objects(200))).is_err());
    }

    #[test]
    fn small_parts_fit_small_devices() {
        // each part of <= 8 objects has <= 16 postings = 64 B
        let tiny = DeviceConfig {
            memory_bytes: 64,
            ..Default::default()
        };
        let engines = (0..2)
            .map(|_| Engine::new(Arc::new(Device::new(tiny.clone()))))
            .collect();
        let multi = MultiDeviceBackend::from_engines(engines, 8);
        let index = index_of(&objects(40));
        let bindex = SearchBackend::upload(&multi, Arc::clone(&index)).unwrap();
        let out = multi.search_batch(&bindex, &[Query::from_keywords(&[5])], 40);
        // keyword 5 appears on objects 5, 12, 19, 26, 33
        let ids: Vec<u32> = out.results[0].iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![5, 12, 19, 26, 33]);
        assert_eq!(multi.capabilities().devices, 2);
        assert_eq!(multi.capabilities().memory_bytes, Some(64));
    }
}
