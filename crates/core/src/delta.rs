//! Live mutations: a mutable **delta shard** plus a **tombstone set**
//! layered over immutable base shards, LSM-style, so a collection can
//! absorb inserts and deletes without the full reindex
//! [`crate::shard::ShardPlan`] alone would require.
//!
//! # Model
//!
//! A [`DeltaPlan`] owns three pieces of state:
//!
//! * **base shards** — immutable [`Shard`]s (the collection as of the
//!   last build or compaction), each carrying stable global ids;
//! * **delta** — an append-only log of `(stable id, object)` inserts
//!   since the last compaction, servable as one more shard
//!   ([`DeltaPlan::delta_shard`]);
//! * **tombstones** — stable ids deleted since the last compaction.
//!   A tombstoned object may still appear in base or delta postings;
//!   it is filtered out of every answer by
//!   [`crate::shard::merge_shard_topk_filtered`] *before* truncation
//!   to `k`.
//!
//! Stable ids are assigned in insertion order, are dense in
//! `0..next_id`, and are **never reused** — they survive compaction, so
//! ids handed to callers (and the id-indexed item stores of the
//! stateful domains) stay valid forever.
//!
//! # Rebuild equivalence
//!
//! The invariant every layer above relies on: searching base + delta
//! with tombstone filtering returns exactly the hits, counts and
//! AuditThreshold of a from-scratch rebuild over the live item set.
//! Per-object match counts are computed entirely within one shard
//! (postings never cross shards), so they equal the rebuilt counts;
//! filtering dead ids before truncation means the live top-k is the
//! rebuilt top-k, provided each shard contributed its top
//! `k + num_tombstones` hits (at most `num_tombstones` of any shard's
//! hits can be dead). Theorem 3.1's `AT = MC_k + 1` is then computed on
//! the filtered merged list.
//!
//! # Compaction protocol
//!
//! Compaction folds delta + tombstones back into re-sharded base shards
//! without blocking concurrent mutations. It is split into a cheap
//! [`snapshot`](DeltaPlan::snapshot) (clone shard handles + delta
//! prefix under the collection lock), an expensive *pure*
//! [`CompactionSnapshot::compact`] (rebuild indexes lock-free, off
//! thread), and a cheap [`apply`](DeltaPlan::apply_compaction) (swap
//! under the lock). Mutations racing the off-lock rebuild are safe
//! because the delta is append-only and tombstones only grow:
//!
//! * inserts during compaction land *after* the snapshotted prefix and
//!   are kept as the new (smaller) delta;
//! * deletes during compaction add tombstones that are **not** in the
//!   snapshot, so `apply` keeps them active — they correctly mask the
//!   new base even if the deleted object was just folded into it.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::index::{IndexBuilder, LoadBalanceConfig};
use crate::model::{Object, ObjectId};
use crate::shard::{Shard, ShardPlan};

/// Mutable serving state of one live collection: immutable base shards,
/// an append-only insert delta and a tombstone set. See the
/// [module docs](self) for the model and the compaction protocol.
#[derive(Clone)]
pub struct DeltaPlan {
    base: Vec<Shard>,
    /// Append-only since the last compaction; stable ids strictly
    /// increasing, so the delta shard's local→global map is too.
    delta: Vec<(ObjectId, Object)>,
    /// Ids deleted since the last compaction (may still appear in base
    /// or delta postings until then).
    tombstones: BTreeSet<ObjectId>,
    /// All currently-live ids — the authoritative membership set.
    live: BTreeSet<ObjectId>,
    next_id: ObjectId,
    load_balance: Option<LoadBalanceConfig>,
}

impl DeltaPlan {
    /// Start a live plan over existing base shards (e.g. the shards of
    /// a [`ShardPlan`], or a single [`Shard::identity`] wrapping an
    /// unsharded collection's index). All base objects start live; ids
    /// continue after the largest base id.
    pub fn from_base(base: Vec<Shard>, load_balance: Option<LoadBalanceConfig>) -> Self {
        let live: BTreeSet<ObjectId> = base
            .iter()
            .flat_map(|s| s.global_ids.iter().copied())
            .collect();
        let next_id = live.iter().next_back().map_or(0, |&m| m + 1);
        Self {
            base,
            delta: Vec::new(),
            tombstones: BTreeSet::new(),
            live,
            next_id,
            load_balance,
        }
    }

    /// Rebuild a plan from externally persisted state (a snapshot plus
    /// replayed journal suffix), validating the invariants
    /// [`from_base`](Self::from_base)-built plans enjoy by construction.
    ///
    /// Unlike `from_base`, the caller supplies `next_id` explicitly:
    /// deriving it from the largest *live* id would reuse an id whenever
    /// the newest object had been tombstoned, violating the never-reuse
    /// contract that keeps caller-held ids and the id-indexed item
    /// stores valid across restarts.
    pub fn restore(
        base: Vec<Shard>,
        delta: Vec<(ObjectId, Object)>,
        tombstones: Vec<ObjectId>,
        next_id: ObjectId,
        load_balance: Option<LoadBalanceConfig>,
    ) -> Result<Self, RestoreError> {
        let mut live = BTreeSet::new();
        let mut max_seen: Option<ObjectId> = None;
        for shard in &base {
            if !shard.global_ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(RestoreError::UnsortedShardIds);
            }
            for &id in shard.global_ids.iter() {
                if !live.insert(id) {
                    return Err(RestoreError::DuplicateId(id));
                }
                max_seen = Some(max_seen.map_or(id, |m: ObjectId| m.max(id)));
            }
        }
        let mut prev: Option<ObjectId> = None;
        for &(id, _) in &delta {
            if prev.is_some_and(|p| p >= id) {
                return Err(RestoreError::UnsortedDeltaIds);
            }
            prev = Some(id);
            if !live.insert(id) {
                return Err(RestoreError::DuplicateId(id));
            }
            max_seen = Some(max_seen.map_or(id, |m: ObjectId| m.max(id)));
        }
        let tombstones: BTreeSet<ObjectId> = tombstones.into_iter().collect();
        for &id in &tombstones {
            live.remove(&id);
            max_seen = Some(max_seen.map_or(id, |m: ObjectId| m.max(id)));
        }
        if max_seen.is_some_and(|m| next_id <= m) {
            return Err(RestoreError::NextIdTooSmall {
                next_id,
                max_seen: max_seen.unwrap_or(0),
            });
        }
        Ok(Self {
            base,
            delta,
            tombstones,
            live,
            next_id,
            load_balance,
        })
    }

    /// Insert an object, assigning the next stable id. O(1) amortized;
    /// the delta index itself is rebuilt by
    /// [`delta_shard`](Self::delta_shard) per mutation *batch*, not per
    /// insert.
    pub fn insert(&mut self, object: Object) -> ObjectId {
        let id = self.next_id;
        self.next_id += 1;
        self.delta.push((id, object));
        self.live.insert(id);
        id
    }

    /// Delete a live object by stable id. Returns `false` (and changes
    /// nothing) if `id` was never assigned or is already dead.
    pub fn delete(&mut self, id: ObjectId) -> bool {
        if self.live.remove(&id) {
            self.tombstones.insert(id);
            true
        } else {
            false
        }
    }

    /// Is `id` currently live?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.live.contains(&id)
    }

    /// Live objects (base + delta minus tombstones).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The next id [`insert`](Self::insert) would assign (== total ids
    /// ever assigned).
    pub fn next_id(&self) -> ObjectId {
        self.next_id
    }

    /// The immutable base shards.
    pub fn base(&self) -> &[Shard] {
        &self.base
    }

    /// Inserts pending in the delta (including since-tombstoned ones).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The pending `(stable id, object)` delta entries, in insertion
    /// order — what a durability layer must persist to replay the
    /// un-compacted suffix of the mutation history.
    pub fn delta_entries(&self) -> &[(ObjectId, Object)] {
        &self.delta
    }

    /// The load-balance config the delta shard (and any compaction) is
    /// built with.
    pub fn load_balance(&self) -> Option<LoadBalanceConfig> {
        self.load_balance
    }

    /// Ids deleted since the last compaction.
    pub fn num_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// The current tombstone set, for merge-time filtering.
    pub fn tombstones(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.tombstones.iter().copied()
    }

    /// All live stable ids, ascending.
    pub fn live_ids(&self) -> Vec<ObjectId> {
        self.live.iter().copied().collect()
    }

    /// Build the delta as one more servable [`Shard`] (local ids are
    /// delta positions, global ids the stable ids — strictly increasing
    /// like every shard's). `None` when the delta is empty. Tombstoned
    /// delta entries are included; the merge filter removes them.
    pub fn delta_shard(&self) -> Option<Shard> {
        if self.delta.is_empty() {
            return None;
        }
        let mut builder = IndexBuilder::new();
        let mut ids = Vec::with_capacity(self.delta.len());
        for (id, object) in &self.delta {
            builder.add_object(object);
            ids.push(*id);
        }
        Some(Shard {
            index: Arc::new(builder.build(self.load_balance)),
            global_ids: Arc::new(ids),
        })
    }

    /// Snapshot the state a compaction run needs: shard handles (Arc
    /// clones), the current delta prefix and the current tombstones.
    /// Cheap enough to run under the collection lock; the expensive
    /// [`CompactionSnapshot::compact`] then runs lock-free.
    pub fn snapshot(&self, num_shards: usize) -> CompactionSnapshot {
        CompactionSnapshot {
            base: self.base.clone(),
            delta: self.delta.clone(),
            tombstones: self.tombstones.clone(),
            num_shards: num_shards.max(1),
            load_balance: self.load_balance,
        }
    }

    /// Swap in a compacted base. Keeps the delta *suffix* past the
    /// snapshotted prefix and the tombstones added after the snapshot
    /// (see the [module docs](self) for why racing mutations are safe).
    pub fn apply_compaction(&mut self, compacted: CompactedBase) {
        self.delta.drain(..compacted.delta_len);
        for id in &compacted.tombstones {
            self.tombstones.remove(id);
        }
        self.base = compacted.shards;
    }
}

/// Why a persisted [`DeltaPlan`] state was rejected by
/// [`DeltaPlan::restore`] — each variant names the violated invariant,
/// so a recovery layer can surface *what* about the on-disk state was
/// inconsistent rather than panicking or serving wrong answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A base shard's local→global id map was not strictly increasing.
    UnsortedShardIds,
    /// Delta entry ids were not strictly increasing (they are assigned
    /// in insertion order and never reused, so any persisted delta must
    /// be too).
    UnsortedDeltaIds,
    /// The same stable id appeared twice across base shards + delta.
    DuplicateId(ObjectId),
    /// `next_id` was not past every persisted id — accepting it would
    /// eventually reuse an id.
    NextIdTooSmall {
        next_id: ObjectId,
        max_seen: ObjectId,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsortedShardIds => write!(f, "base shard ids not strictly increasing"),
            Self::UnsortedDeltaIds => write!(f, "delta ids not strictly increasing"),
            Self::DuplicateId(id) => write!(f, "stable id {id} appears twice"),
            Self::NextIdTooSmall { next_id, max_seen } => {
                write!(f, "next_id {next_id} <= max persisted id {max_seen}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl std::fmt::Debug for DeltaPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaPlan")
            .field("live", &self.live.len())
            .field(
                "base_sizes",
                &self.base.iter().map(Shard::len).collect::<Vec<_>>(),
            )
            .field("delta_len", &self.delta.len())
            .field("tombstones", &self.tombstones.len())
            .field("next_id", &self.next_id)
            .finish()
    }
}

/// Everything a compaction run needs, captured under the collection
/// lock by [`DeltaPlan::snapshot`]. Self-contained and `Send`, so the
/// expensive [`compact`](Self::compact) can run on a background thread.
pub struct CompactionSnapshot {
    base: Vec<Shard>,
    delta: Vec<(ObjectId, Object)>,
    tombstones: BTreeSet<ObjectId>,
    num_shards: usize,
    load_balance: Option<LoadBalanceConfig>,
}

impl CompactionSnapshot {
    /// Fold delta + tombstones into fresh near-even base shards. Pure
    /// and lock-free: reads only snapshotted state. The new shards'
    /// `global_ids` carry the *stable* ids (relabelled through the
    /// sorted live-id list), so ids survive compaction.
    pub fn compact(self) -> CompactedBase {
        let mut entries: Vec<(ObjectId, Object)> = self
            .base
            .iter()
            .flat_map(|s| s.entries())
            .chain(self.delta.iter().cloned())
            .filter(|(id, _)| !self.tombstones.contains(id))
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        let stable_ids: Vec<ObjectId> = entries.iter().map(|(id, _)| *id).collect();
        let objects: Vec<Object> = entries.into_iter().map(|(_, o)| o).collect();
        let plan = ShardPlan::build(&objects, self.num_shards, self.load_balance);
        let shards = plan
            .shards()
            .iter()
            .map(|s| Shard {
                index: Arc::clone(&s.index),
                // positions 0..live → stable ids (monotone, so the
                // local→global map stays strictly increasing)
                global_ids: Arc::new(
                    s.global_ids
                        .iter()
                        .map(|&pos| stable_ids[pos as usize])
                        .collect(),
                ),
            })
            .collect();
        CompactedBase {
            shards,
            delta_len: self.delta.len(),
            tombstones: self.tombstones,
        }
    }
}

/// The output of [`CompactionSnapshot::compact`], ready for
/// [`DeltaPlan::apply_compaction`].
pub struct CompactedBase {
    /// Fresh base shards over the snapshot's live objects, with stable
    /// global ids.
    pub shards: Vec<Shard>,
    /// How many delta entries were folded in (the prefix to drop).
    delta_len: usize,
    /// The tombstones that were folded in (to subtract on apply).
    tombstones: BTreeSet<ObjectId>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;
    use crate::model::{match_count, Query};
    use crate::shard::merge_shard_topk_filtered;
    use crate::topk::{partial_top_k, reference_top_k, TopHit};

    fn obj(words: &[u32]) -> Object {
        Object::new(words.to_vec())
    }

    fn base_plan(objects: &[Object], shards: usize) -> DeltaPlan {
        DeltaPlan::from_base(
            ShardPlan::build(objects, shards, None).shards().to_vec(),
            None,
        )
    }

    /// Brute-force search over the plan's live `(id, object)` pairs.
    fn rebuild_topk(plan: &DeltaPlan, query: &Query, k: usize) -> (Vec<TopHit>, u32) {
        let mut items: Vec<(ObjectId, Object)> = plan
            .base()
            .iter()
            .flat_map(|s| s.entries())
            .chain(plan.delta.iter().cloned())
            .filter(|(id, _)| plan.contains(*id))
            .collect();
        items.sort_unstable_by_key(|(id, _)| *id);
        let hits: Vec<TopHit> = items
            .iter()
            .map(|(id, o)| TopHit {
                id: *id,
                count: match_count(query, o),
            })
            .filter(|h| h.count > 0)
            .collect();
        let hits = partial_top_k(hits, k);
        let at = crate::topk::audit_threshold(&hits, k);
        (hits, at)
    }

    /// Search the live plan the way the serving layer does: fan out to
    /// base + delta with per-shard fetch k + |tombstones|, filter, merge.
    fn live_topk(plan: &DeltaPlan, query: &Query, k: usize) -> (Vec<TopHit>, u32) {
        let k_eff = k + plan.num_tombstones();
        let mut shards: Vec<Shard> = plan.base().to_vec();
        shards.extend(plan.delta_shard());
        let per_shard: Vec<Vec<TopHit>> = shards
            .iter()
            .map(|s| {
                let objs = s.index.reconstruct_objects();
                let counts: Vec<u32> = objs.iter().map(|o| match_count(query, o)).collect();
                s.to_global(&reference_top_k(&counts, k_eff))
            })
            .collect();
        let tombstones: HashSet<ObjectId> = plan.tombstones().collect();
        merge_shard_topk_filtered(per_shard, k, &tombstones)
    }

    fn assert_equivalent(plan: &DeltaPlan, query: &Query, label: &str) {
        for k in [1usize, 2, 5, 100] {
            let (live, live_at) = live_topk(plan, query, k);
            let (rebuilt, rebuilt_at) = rebuild_topk(plan, query, k);
            assert_eq!(live, rebuilt, "{label} k={k}");
            assert_eq!(live_at, rebuilt_at, "{label} AT k={k}");
        }
    }

    #[test]
    fn ids_are_stable_dense_and_never_reused() {
        let mut plan = base_plan(&[obj(&[1]), obj(&[2])], 1);
        assert_eq!(plan.next_id(), 2);
        let a = plan.insert(obj(&[3]));
        assert_eq!(a, 2);
        assert!(plan.delete(a));
        let b = plan.insert(obj(&[3]));
        assert_eq!(b, 3, "deleted ids are never reused");
        assert!(!plan.contains(a));
        assert!(plan.contains(b));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn delete_is_validated() {
        let mut plan = base_plan(&[obj(&[1])], 1);
        assert!(!plan.delete(7), "never-assigned id");
        assert!(plan.delete(0));
        assert!(!plan.delete(0), "double delete");
        assert_eq!(plan.num_tombstones(), 1, "one tombstone, not two");
        assert!(plan.is_empty());
    }

    #[test]
    fn live_search_equals_rebuild_through_mutations() {
        let objects: Vec<Object> = (0..30).map(|i| obj(&[i % 7, 100 + i % 3])).collect();
        let mut plan = base_plan(&objects, 3);
        let query = Query::from_keywords(&[3, 101]);
        assert_equivalent(&plan, &query, "pristine");
        for i in 0..12 {
            plan.insert(obj(&[i % 7, 100 + (i + 1) % 3]));
        }
        assert_equivalent(&plan, &query, "after inserts");
        for id in [0, 3, 10, 17, 24, 31, 38, 41] {
            assert!(plan.delete(id));
        }
        assert_equivalent(&plan, &query, "after deletes");
        // delete enough that fewer than k objects survive
        for id in plan.live_ids() {
            if id % 2 == 0 {
                plan.delete(id);
            }
        }
        assert_equivalent(&plan, &query, "sparse survivors");
    }

    #[test]
    fn compaction_folds_delta_and_tombstones_with_stable_ids() {
        let objects: Vec<Object> = (0..20).map(|i| obj(&[i % 5])).collect();
        let mut plan = base_plan(&objects, 2);
        for i in 0..8 {
            plan.insert(obj(&[i % 5]));
        }
        for id in [1, 5, 20, 26] {
            assert!(plan.delete(id));
        }
        let live_before = plan.live_ids();
        let query = Query::from_keywords(&[1, 3]);
        let (hits_before, at_before) = live_topk(&plan, &query, 5);

        plan.apply_compaction(plan.snapshot(3).compact());

        assert_eq!(plan.delta_len(), 0);
        assert_eq!(plan.num_tombstones(), 0);
        assert_eq!(plan.live_ids(), live_before, "stable ids survive");
        let base_ids: Vec<ObjectId> = plan
            .base()
            .iter()
            .flat_map(|s| s.global_ids.iter().copied())
            .collect();
        assert_eq!(base_ids, live_before, "base now holds exactly the live set");
        for shard in plan.base() {
            assert!(shard.global_ids.windows(2).all(|w| w[0] < w[1]));
        }
        let (hits_after, at_after) = live_topk(&plan, &query, 5);
        assert_eq!(hits_after, hits_before, "compaction is invisible to search");
        assert_eq!(at_after, at_before);
        assert_equivalent(&plan, &query, "compacted");
    }

    #[test]
    fn compaction_of_empty_delta_and_empty_collection() {
        let mut plan = base_plan(&[obj(&[1]), obj(&[2])], 1);
        plan.apply_compaction(plan.snapshot(2).compact());
        assert_eq!(plan.len(), 2, "empty delta: a no-op reshard");
        // now empty the collection entirely and compact again
        plan.delete(0);
        plan.delete(1);
        plan.apply_compaction(plan.snapshot(2).compact());
        assert!(plan.is_empty());
        assert_eq!(plan.base().len(), 1, "one empty shard stays registrable");
        assert!(plan.base()[0].is_empty());
        assert_eq!(plan.insert(obj(&[9])), 2, "ids still never reused");
    }

    #[test]
    fn restore_roundtrips_a_mutated_plan() {
        let objects: Vec<Object> = (0..12).map(|i| obj(&[i % 4, 50 + i % 3])).collect();
        let mut plan = base_plan(&objects, 2);
        for i in 0..5 {
            plan.insert(obj(&[i % 4, 50 + (i + 2) % 3]));
        }
        for id in [0, 4, 13, 16] {
            assert!(plan.delete(id));
        }
        let restored = DeltaPlan::restore(
            plan.base().to_vec(),
            plan.delta_entries().to_vec(),
            plan.tombstones().collect(),
            plan.next_id(),
            plan.load_balance(),
        )
        .expect("roundtrip restore");
        assert_eq!(restored.live_ids(), plan.live_ids());
        assert_eq!(restored.next_id(), plan.next_id());
        assert_eq!(restored.delta_len(), plan.delta_len());
        assert_eq!(restored.num_tombstones(), plan.num_tombstones());
        let query = Query::from_keywords(&[2, 51]);
        assert_equivalent(&restored, &query, "restored");
    }

    #[test]
    fn restore_preserves_next_id_past_tombstoned_tail() {
        // the newest id is dead: from_base would re-derive next_id = 2
        // and reuse id 2; restore must keep the explicit value
        let mut plan = base_plan(&[obj(&[1]), obj(&[2])], 1);
        let tail = plan.insert(obj(&[3]));
        assert!(plan.delete(tail));
        let mut restored = DeltaPlan::restore(
            plan.base().to_vec(),
            plan.delta_entries().to_vec(),
            plan.tombstones().collect(),
            plan.next_id(),
            None,
        )
        .unwrap();
        assert_eq!(restored.next_id(), 3);
        assert_eq!(restored.insert(obj(&[4])), 3, "no id reuse");
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let base = ShardPlan::build(&[obj(&[1]), obj(&[2])], 1, None)
            .shards()
            .to_vec();
        // duplicate id across base and delta
        let err = DeltaPlan::restore(base.clone(), vec![(1, obj(&[9]))], vec![], 3, None);
        assert_eq!(err.unwrap_err(), RestoreError::DuplicateId(1));
        // unsorted delta
        let err = DeltaPlan::restore(
            base.clone(),
            vec![(5, obj(&[9])), (3, obj(&[9]))],
            vec![],
            6,
            None,
        );
        assert_eq!(err.unwrap_err(), RestoreError::UnsortedDeltaIds);
        // next_id inside the persisted id range (incl. tombstones)
        let err = DeltaPlan::restore(base.clone(), vec![], vec![5], 4, None);
        assert!(matches!(
            err.unwrap_err(),
            RestoreError::NextIdTooSmall { next_id: 4, .. }
        ));
        // unsorted shard ids
        let bad = Shard {
            index: base[0].index.clone(),
            global_ids: Arc::new(vec![1, 0]),
        };
        let err = DeltaPlan::restore(vec![bad], vec![], vec![], 2, None);
        assert_eq!(err.unwrap_err(), RestoreError::UnsortedShardIds);
    }

    /// Mutations racing the lock-free compact(): inserts after the
    /// snapshot survive as the new delta; a delete *of a folded object*
    /// issued after the snapshot stays tombstoned against the new base.
    #[test]
    fn racing_mutations_survive_apply() {
        let objects: Vec<Object> = (0..10).map(|i| obj(&[i % 4])).collect();
        let mut plan = base_plan(&objects, 2);
        let snap = plan.snapshot(2);
        // race: one insert and two deletes land while compact() runs,
        // including a delete of object 3 which the snapshot folds in
        let new_id = plan.insert(obj(&[2, 3]));
        assert!(plan.delete(3));
        assert!(!plan.delete(new_id + 100));
        let compacted = snap.compact();
        plan.apply_compaction(compacted);
        assert_eq!(plan.delta_len(), 1, "post-snapshot insert kept");
        assert_eq!(plan.num_tombstones(), 1, "post-snapshot delete kept");
        assert!(!plan.contains(3));
        assert!(plan.contains(new_id));
        let query = Query::from_keywords(&[2, 3]);
        assert_equivalent(&plan, &query, "after racing apply");
        // the next compaction clears the carried-over tombstone
        plan.apply_compaction(plan.snapshot(2).compact());
        assert_eq!(plan.num_tombstones(), 0);
        assert_equivalent(&plan, &query, "second compaction");
    }
}
