//! Scan-task construction: the host-side half of query processing.
//!
//! For every query item the host consults the Position Map once (the
//! paper notes this lookup cost is negligible — our Table I reproduction
//! confirms it) and emits one *scan task* per matched (sub)postings list.
//! Each task becomes one block of the match kernel: the finest-grained
//! decomposition available, which is how GENIE keeps the device saturated
//! even for modest batch sizes.

use crate::index::InvertedIndex;
use crate::model::Query;

/// One block's worth of work: scan `len` postings starting at `start` in
/// the List Array, crediting matches to `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanTask {
    pub query: u32,
    pub start: u32,
    pub len: u32,
}

/// Number of u32 words a task occupies in the device task buffer.
pub(crate) const TASK_WORDS: usize = 3;

/// Resolve `queries` against the Position Map into the flat task list.
///
/// Adjacent segments of one item are merged — the same List-Array
/// contiguity the CPU kernel exploits via
/// [`coalesced_segments_for_range`](InvertedIndex::coalesced_segments_for_range)
/// — but *capped*: one task is one device block on one simulated SM, so
/// an unbounded merge would serialize a whole range item on a single SM
/// and inflate the match-stage makespan. The cap keeps every merged
/// block at most as long as the longest single postings list, which was
/// already the makespan contributor before merging; what remains is the
/// real win, folding runs of tiny adjacent lists (relational bucket
/// ranges, sparse vocabularies) into fewer blocks and fewer uploaded
/// task words. Load-balanced indexes skip merging entirely: their split
/// sublists exist precisely to spread one hot list across blocks
/// (Figure 4).
pub fn build_scan_tasks(index: &InvertedIndex, queries: &[Query]) -> Vec<ScanTask> {
    let cap = index.longest_list().max(1) as u32;
    let coalesce = index.load_balance().is_none();
    let mut tasks = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        let mut push = |start: u32, len: u32| {
            if len > 0 {
                tasks.push(ScanTask {
                    query: qi as u32,
                    start,
                    len,
                });
            }
        };
        for item in &query.items {
            if coalesce {
                // one shared merge implementation (the index's), then
                // re-split each contiguous run into cap-sized blocks
                for seg in index.coalesced_segments_for_range(item.lo, item.hi) {
                    let mut start = seg.start;
                    let mut remaining = seg.len;
                    while remaining > 0 {
                        let take = remaining.min(cap);
                        push(start, take);
                        start += take;
                        remaining -= take;
                    }
                }
            } else {
                for seg in index.segments_for_range(item.lo, item.hi) {
                    push(seg.start, seg.len);
                }
            }
        }
    }
    tasks
}

/// Flatten tasks into the u32 words uploaded to the device.
pub(crate) fn encode_tasks(tasks: &[ScanTask]) -> Vec<u32> {
    let mut words = Vec::with_capacity(tasks.len() * TASK_WORDS);
    for t in tasks {
        words.push(t.query);
        words.push(t.start);
        words.push(t.len);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexBuilder, LoadBalanceConfig};
    use crate::model::{Object, Query, QueryItem};

    fn sample_index(lb: Option<LoadBalanceConfig>) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![1, 5]));
        b.add_object(&Object::new(vec![1, 6]));
        b.add_object(&Object::new(vec![2, 5]));
        b.build(lb)
    }

    #[test]
    fn one_task_per_matched_list_when_merging_would_exceed_the_cap() {
        let idx = sample_index(None);
        let q = Query::new(vec![QueryItem::range(1, 2), QueryItem::exact(5)]);
        let tasks = build_scan_tasks(&idx, &[q]);
        // item [1,2] matches keywords 1 (len 2) and 2 (len 1): the
        // merged run (len 3) exceeds the longest single list (len 2),
        // so it is re-split at the cap into two blocks; item [5,5]
        // matches 5
        assert_eq!(tasks.len(), 3);
        assert!(tasks.iter().all(|t| t.query == 0));
        assert_eq!(tasks.iter().map(|t| t.len).sum::<u32>(), 2 + 1 + 2);
    }

    #[test]
    fn tiny_adjacent_lists_coalesce_up_to_the_longest_list() {
        // lists: 1 -> [0] (len 1), 2 -> [1] (len 1), 7 -> [2,3] (len 2),
        // 8 -> [2,3] (len 2); longest single list = 2 = the merge cap
        let mut b = IndexBuilder::new();
        b.add_object(&Object::new(vec![1]));
        b.add_object(&Object::new(vec![2]));
        b.add_object(&Object::new(vec![7, 8]));
        b.add_object(&Object::new(vec![7, 8]));
        let idx = b.build(None);
        // two singleton lists merge into one block of exactly cap size
        let merged = build_scan_tasks(&idx, &[Query::new(vec![QueryItem::range(1, 2)])]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len, 2);
        // two cap-sized lists stay two blocks: merging would build a
        // block longer than any the index had before coalescing
        let capped = build_scan_tasks(&idx, &[Query::new(vec![QueryItem::range(7, 8)])]);
        assert_eq!(capped.len(), 2);
        assert!(capped.iter().all(|t| t.len == 2));
    }

    #[test]
    fn tasks_carry_query_indices() {
        let idx = sample_index(None);
        let q0 = Query::from_keywords(&[1]);
        let q1 = Query::from_keywords(&[5, 6]);
        let tasks = build_scan_tasks(&idx, &[q0, q1]);
        assert_eq!(tasks.iter().filter(|t| t.query == 0).count(), 1);
        // two *items* stay two tasks — coalescing works within one
        // item's Position-Map run, never across items
        assert_eq!(tasks.iter().filter(|t| t.query == 1).count(), 2);
    }

    #[test]
    fn unmatched_items_produce_no_tasks() {
        let idx = sample_index(None);
        let q = Query::from_keywords(&[99]);
        assert!(build_scan_tasks(&idx, &[q]).is_empty());
    }

    #[test]
    fn load_balanced_index_yields_more_smaller_tasks() {
        let mut b = IndexBuilder::new();
        for _ in 0..20 {
            b.add_object(&Object::new(vec![7]));
        }
        let idx = b.build(Some(LoadBalanceConfig { max_list_len: 8 }));
        let tasks = build_scan_tasks(&idx, &[Query::from_keywords(&[7])]);
        assert_eq!(tasks.len(), 3);
        assert!(tasks.iter().all(|t| t.len <= 8));
        assert_eq!(tasks.iter().map(|t| t.len).sum::<u32>(), 20);
    }

    #[test]
    fn encoding_is_three_words_per_task() {
        let tasks = vec![
            ScanTask {
                query: 1,
                start: 10,
                len: 4,
            },
            ScanTask {
                query: 2,
                start: 14,
                len: 9,
            },
        ];
        let words = encode_tasks(&tasks);
        assert_eq!(words, vec![1, 10, 4, 2, 14, 9]);
    }
}
