//! Query execution on the device (paper §III-B, Figure 3).

mod engine;
mod match_kernel;

pub use engine::{DeviceIndex, Engine, EngineConfig, SearchOutput, StageProfile};
pub use match_kernel::{build_scan_tasks, ScanTask};

/// Microseconds elapsed since `started`, keeping fractional precision.
///
/// `Duration::as_micros()` truncates to whole microseconds, so stages
/// that finish in under 1 µs report exactly 0 and short profiles
/// under-count. Every host-side timing in the workspace goes through
/// this helper instead.
#[inline]
pub fn elapsed_us(started: std::time::Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e6
}

#[cfg(test)]
mod timing_tests {
    use super::elapsed_us;
    use std::time::Instant;

    #[test]
    fn elapsed_us_keeps_fractional_microseconds() {
        // even a trivially short span must not truncate to exactly 0:
        // do a little real work so the clock provably advances
        let started = Instant::now();
        let mut acc = 0u64;
        for i in 0..1000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let us = elapsed_us(started);
        assert!(us > 0.0, "sub-µs spans must keep their fractional part");
    }
}
