//! Query execution on the device (paper §III-B, Figure 3).

mod engine;
mod match_kernel;

pub use engine::{DeviceIndex, Engine, EngineConfig, SearchOutput, StageProfile};
pub use match_kernel::{build_scan_tasks, ScanTask};
