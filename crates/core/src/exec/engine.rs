//! The batched search engine: upload once, search many (Figure 3).

use std::sync::Arc;
use std::time::Instant;

use gpu_sim::{Device, GlobalU32, GlobalU64, LaunchConfig};

use crate::cpq::{Cpq, CpqLayout, RobinHoodTable, EMPTY_SLOT};
use crate::index::InvertedIndex;
use crate::model::{count_bound, Query};
use crate::topk::{finalize_candidates, TopHit};

use super::elapsed_us;
use super::match_kernel::{build_scan_tasks, encode_tasks, TASK_WORDS};

/// An inverted index whose List Array has been uploaded to the device.
/// The Position Map (inside [`InvertedIndex`]) stays host-resident.
pub struct DeviceIndex {
    /// The device-resident List Array (public so alternative pipelines —
    /// e.g. the GEN-SPQ baseline — can scan the same uploaded index).
    pub list: GlobalU32,
    pub index: Arc<InvertedIndex>,
    /// Simulated microseconds the H2D index copy took ("Index transfer"
    /// row of Table I).
    pub upload_sim_us: f64,
}

impl DeviceIndex {
    pub fn num_objects(&self) -> u32 {
        self.index.num_objects()
    }
}

/// Per-stage timing of one batch, both simulated (device cost model) and
/// host wall-clock. Mirrors the row structure of Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageProfile {
    /// H2D swapping of part indexes (only nonzero for backends that
    /// page parts through device memory, e.g. multi-load/multi-device).
    pub index_swap_us: f64,
    /// H2D copy of query descriptors (scan tasks).
    pub query_transfer_us: f64,
    /// The match kernel: scanning postings lists and updating c-PQ.
    pub match_us: f64,
    /// Selection kernel + D2H of candidates + host finalisation.
    pub select_us: f64,
    /// Host wall-clock of the whole search call, microseconds.
    pub host_us: f64,
}

impl StageProfile {
    /// Simulated total (excludes host-only bookkeeping).
    pub fn sim_total_us(&self) -> f64 {
        self.index_swap_us + self.query_transfer_us + self.match_us + self.select_us
    }

    /// Accumulate another profile (multiple loading sums parts).
    pub fn accumulate(&mut self, other: &StageProfile) {
        self.index_swap_us += other.index_swap_us;
        self.query_transfer_us += other.query_transfer_us;
        self.match_us += other.match_us;
        self.select_us += other.select_us;
        self.host_us += other.host_us;
    }
}

/// Result of one batched search.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Per query: up to k `(object, count)` hits, count-descending.
    pub results: Vec<Vec<TopHit>>,
    pub profile: StageProfile,
    /// Device bytes the c-PQ consumed per query (Table IV metric).
    pub cpq_bytes_per_query: u64,
    /// Final AuditThreshold per query; `AT - 1` is the k-th match count
    /// (Theorem 3.1), which the SA verification layer uses as a bound.
    pub audit_thresholds: Vec<u32>,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Lanes per block for the match kernel. Paper-style default: 256.
    pub block_dim: usize,
    /// Override the automatically derived count bound (needed when the
    /// caller knows a tighter bound, e.g. the number of LSH functions).
    pub count_bound: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            block_dim: 256,
            count_bound: None,
        }
    }
}

/// The GENIE engine: owns a device and runs batched top-k match-count
/// queries against uploaded inverted indexes.
pub struct Engine {
    device: Arc<Device>,
    config: EngineConfig,
}

impl Engine {
    pub fn new(device: Arc<Device>) -> Self {
        Self {
            device,
            config: EngineConfig::default(),
        }
    }

    pub fn with_config(device: Arc<Device>, config: EngineConfig) -> Self {
        Self { device, config }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Upload an index's List Array to the device, recording the H2D
    /// transfer. Fails if the array exceeds simulated device memory.
    pub fn upload(&self, index: Arc<InvertedIndex>) -> Result<DeviceIndex, String> {
        let bytes = index.device_bytes();
        self.device.check_fits(bytes)?;
        let list = GlobalU32::from_host(index.list_array());
        self.device.record_h2d(bytes);
        let upload_sim_us = self.device.cost_model().transfer_us(bytes);
        Ok(DeviceIndex {
            list,
            index,
            upload_sim_us,
        })
    }

    /// Run a batch of `queries` returning the top `k` objects of each by
    /// match count. This is the full pipeline: Position-Map lookup,
    /// task upload, match kernel (Algorithm 1 per posting), selection
    /// kernel (single hash-table scan), candidate download, host top-k.
    pub fn search(&self, dindex: &DeviceIndex, queries: &[Query], k: usize) -> SearchOutput {
        assert!(k >= 1, "k must be at least 1");
        let started = Instant::now();
        let num_queries = queries.len();
        let num_objects = dindex.index.num_objects() as usize;
        let mut profile = StageProfile::default();

        if num_queries == 0 || num_objects == 0 {
            return SearchOutput {
                results: vec![Vec::new(); num_queries],
                profile,
                cpq_bytes_per_query: 0,
                audit_thresholds: vec![1; num_queries],
            };
        }

        let bound = self
            .config
            .count_bound
            .unwrap_or_else(|| count_bound(queries, dindex.index.max_object_len()));
        let layout = CpqLayout {
            num_queries,
            num_objects,
            bound,
            k,
        };
        let cpq = Cpq::new(layout);

        // --- query transfer: ship scan tasks to the device -------------
        let tasks = build_scan_tasks(&dindex.index, queries);
        let task_words = encode_tasks(&tasks);
        let task_bytes = (task_words.len() * 4) as u64;
        let tasks_dev = GlobalU32::from_host(&task_words);
        self.device.record_h2d(task_bytes);
        profile.query_transfer_us = self.device.cost_model().transfer_us(task_bytes);

        // --- match kernel: one block per scan task ----------------------
        if !tasks.is_empty() {
            let cfg = LaunchConfig::new(tasks.len(), self.config.block_dim);
            let list = &dindex.list;
            let cpq_ref = &cpq;
            let tasks_ref = &tasks_dev;
            let stats = self.device.launch("genie_match", cfg, move |ctx| {
                let t = ctx.block_idx * TASK_WORDS;
                let query = tasks_ref.load(ctx, t) as usize;
                let start = tasks_ref.load(ctx, t + 1) as usize;
                let len = tasks_ref.load(ctx, t + 2) as usize;
                let mut i = ctx.thread_idx;
                while i < len {
                    let object = list.load(ctx, start + i);
                    cpq_ref.update(ctx, query, object);
                    i += ctx.block_dim;
                }
            });
            profile.match_us = stats.sim_us(self.device.cost_model());
        }

        // --- selection: scan each query's hash table once ---------------
        let (results, audit_thresholds, select_us) = self.select(&cpq, num_queries, k);
        profile.select_us = select_us;
        profile.host_us = elapsed_us(started);

        SearchOutput {
            results,
            profile,
            cpq_bytes_per_query: layout.bytes_per_query(),
            audit_thresholds,
        }
    }

    /// The selection stage: device kernel compacts qualifying entries
    /// (count >= AT-1), host downloads the compact candidate lists and
    /// finishes the top-k.
    fn select(&self, cpq: &Cpq, num_queries: usize, k: usize) -> (Vec<Vec<TopHit>>, Vec<u32>, f64) {
        let slots = cpq.table().slots_per_query();
        let cap = cpq.layout().select_out_per_query();
        let out = GlobalU64::zeroed(num_queries * cap);
        let out_len = GlobalU32::zeroed(num_queries);
        let table = cpq.table();
        let at_buf = cpq.at_buffer();
        let out_ref = &out;
        let len_ref = &out_len;

        let cfg = LaunchConfig::new(num_queries, self.config.block_dim.min(slots).max(1));
        let stats = self.device.launch("genie_select", cfg, move |ctx| {
            let q = ctx.block_idx;
            let threshold = at_buf.load(ctx, q).saturating_sub(1);
            let mut i = ctx.thread_idx;
            while i < slots {
                let slot = table.load_slot(ctx, q, i);
                if slot != EMPTY_SLOT {
                    let (_, count) = RobinHoodTable::decode(slot);
                    if count >= threshold {
                        let pos = len_ref.atomic_add(ctx, q, 1) as usize;
                        if pos < cap {
                            out_ref.store(ctx, q * cap + pos, slot);
                        }
                        // overflowing candidates are ties at the
                        // threshold beyond what top-k can use; the paper
                        // breaks such ties randomly anyway
                    }
                }
                i += ctx.block_dim;
            }
        });
        let mut select_us = stats.sim_us(self.device.cost_model());

        // D2H: candidate counts + used slots + final ATs
        let lens = out_len.to_host();
        let used: u64 = lens.iter().map(|&l| (l as usize).min(cap) as u64).sum();
        let d2h_bytes = used * 8 + num_queries as u64 * 8;
        self.device.record_d2h(d2h_bytes);
        select_us += self.device.cost_model().transfer_us(d2h_bytes);

        let mut results = Vec::with_capacity(num_queries);
        let mut ats = Vec::with_capacity(num_queries);
        let raw = out.to_host();
        for q in 0..num_queries {
            let at = cpq.final_audit_threshold(q);
            ats.push(at);
            let used = (lens[q] as usize).min(cap);
            let candidates = raw[q * cap..q * cap + used]
                .iter()
                .map(|&slot| RobinHoodTable::decode(slot));
            results.push(finalize_candidates(candidates, at.saturating_sub(1), k));
        }
        (results, ats, select_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::model::{match_count, Object, QueryItem};
    use crate::topk::reference_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> Engine {
        Engine::new(Arc::new(Device::with_defaults()))
    }

    fn index_of(objects: &[Object]) -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        b.add_objects(objects.iter());
        Arc::new(b.build(None))
    }

    #[test]
    fn figure_1_running_example_end_to_end() {
        let enc = |d: u32, v: u32| d * 4 + v;
        let objects = vec![
            Object::new(vec![enc(0, 1), enc(1, 2), enc(2, 1)]),
            Object::new(vec![enc(0, 2), enc(1, 1), enc(2, 3)]),
            Object::new(vec![enc(0, 1), enc(1, 3), enc(2, 2)]),
        ];
        let q1 = Query::new(vec![
            QueryItem::range(enc(0, 1), enc(0, 2)),
            QueryItem::range(enc(1, 1), enc(1, 1)),
            QueryItem::range(enc(2, 2), enc(2, 3)),
        ]);
        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        let out = eng.search(&didx, &[q1], 1);
        assert_eq!(out.results[0][0].id, 1, "O2 is the top-1");
        assert_eq!(out.results[0][0].count, 3);
        assert_eq!(out.audit_thresholds[0], 4, "Example 3.1: AT ends at 4");
    }

    #[test]
    fn engine_matches_brute_force_on_random_workload() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300usize;
        let universe = 50u32;
        let objects: Vec<Object> = (0..n)
            .map(|_| {
                let len = rng.random_range(1..8usize);
                let mut kws: Vec<u32> = (0..len).map(|_| rng.random_range(0..universe)).collect();
                kws.sort_unstable();
                kws.dedup();
                Object::new(kws)
            })
            .collect();
        let queries: Vec<Query> = (0..16)
            .map(|_| {
                let len = rng.random_range(1..6usize);
                let items = (0..len)
                    .map(|_| {
                        let lo = rng.random_range(0..universe);
                        let hi = (lo + rng.random_range(0..4)).min(universe - 1);
                        QueryItem::range(lo, hi)
                    })
                    .collect();
                Query::new(items)
            })
            .collect();

        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        let k = 10;
        let out = eng.search(&didx, &queries, k);

        for (qi, q) in queries.iter().enumerate() {
            let counts: Vec<u32> = objects.iter().map(|o| match_count(q, o)).collect();
            let expected = reference_top_k(&counts, k);
            let got = &out.results[qi];
            // same multiset of counts (ties may resolve differently)
            let got_counts: Vec<u32> = got.iter().map(|h| h.count).collect();
            let exp_counts: Vec<u32> = expected.iter().map(|h| h.count).collect();
            assert_eq!(got_counts, exp_counts, "query {qi}");
            // and every returned id really has the claimed count
            for hit in got {
                assert_eq!(counts[hit.id as usize], hit.count, "query {qi}");
            }
        }
    }

    #[test]
    fn fewer_matches_than_k_returns_what_exists() {
        let objects = vec![Object::new(vec![1]), Object::new(vec![2])];
        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        let out = eng.search(&didx, &[Query::from_keywords(&[1])], 10);
        assert_eq!(out.results[0].len(), 1);
        assert_eq!(out.results[0][0], TopHit { id: 0, count: 1 });
    }

    #[test]
    fn query_with_no_matching_keywords_returns_empty() {
        let objects = vec![Object::new(vec![1])];
        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        let out = eng.search(&didx, &[Query::from_keywords(&[42])], 5);
        assert!(out.results[0].is_empty());
    }

    #[test]
    fn empty_batch_is_fine() {
        let objects = vec![Object::new(vec![1])];
        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        let out = eng.search(&didx, &[], 5);
        assert!(out.results.is_empty());
    }

    #[test]
    fn profile_reports_all_stages() {
        let objects: Vec<Object> = (0..100).map(|i| Object::new(vec![i % 10])).collect();
        let eng = engine();
        let didx = eng.upload(index_of(&objects)).unwrap();
        assert!(didx.upload_sim_us > 0.0);
        let queries: Vec<Query> = (0..4).map(|i| Query::from_keywords(&[i])).collect();
        let out = eng.search(&didx, &queries, 3);
        assert!(out.profile.match_us > 0.0);
        assert!(out.profile.select_us > 0.0);
        assert!(out.profile.query_transfer_us > 0.0);
        assert!(out.cpq_bytes_per_query > 0);
    }

    #[test]
    fn upload_respects_device_memory() {
        let cfg = gpu_sim::DeviceConfig {
            memory_bytes: 16, // 4 words
            ..Default::default()
        };
        let eng = Engine::new(Arc::new(Device::new(cfg)));
        let objects: Vec<Object> = (0..100).map(|i| Object::new(vec![i])).collect();
        assert!(eng.upload(index_of(&objects)).is_err());
    }
}
