//! Shard→backend **placement**: which backends serve which shard.
//!
//! The serving layer historically broadcast every shard's sub-wave to
//! the whole fleet and let the shared wave queue sort it out. A
//! [`PlacementPlan`] instead assigns each shard of a collection to a
//! subset of the backends, so a skewed corpus can pin its hottest shard
//! on the fastest device and keep slow devices off the critical path.
//!
//! # The invariant that makes placement free
//!
//! An object's match count is computed entirely inside its own shard —
//! postings never cross shards — so *which backend* scans a shard has no
//! effect on the counts that come back: every backend agrees with the
//! brute-force [`crate::model::match_count`] on counts. The merged
//! answer is therefore **count/AT-identical for any shard→backend
//! assignment**, including the broadcast assignment, a partially applied
//! rebalance, or an assignment that routes every shard to one backend:
//!
//! * the merged top-k **count profile** equals the unsharded profile
//!   (each shard still contributes its full per-shard top-k);
//! * the **AuditThreshold** is `MC_k + 1` over the merged list
//!   (Theorem 3.1), which depends only on the count profile;
//! * **ids** may differ only among objects tied at the k-th count,
//!   exactly the latitude the backend contract already grants.
//!
//! Placement is thus purely a *performance* degree of freedom: the
//! serving layer can swap plans at any time (behind its epoch-guarded
//! generation swap) without invalidating caches or changing answers,
//! and the property suite pins placement-routed serving against the
//! broadcast path bit-for-bit on deterministic backends.
//!
//! # Hot shards and the rebalance heuristic
//!
//! The serving layer watches per-shard run stats over a sliding window
//! of waves. A shard is **hot** when its share of *postings scanned*
//! across the window exceeds a configurable skew threshold — postings
//! are the device-independent cost signal (the learned per-backend cost
//! model maps them to microseconds, so a shard is hot because of data
//! skew, not because it happened to land on a slow device). A hot shard
//! triggers a rebalance: [`PlacementPlan::balanced`] re-derives the
//! assignment from the windowed per-shard costs and the fleet's learned
//! per-backend capacity scores, and the service applies it behind the
//! same epoch guard the compactor uses.

/// Why a placement plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A plan needs at least one shard.
    NoShards,
    /// A plan needs at least one backend.
    NoBackends,
    /// The assignment leaves a shard with no backend to serve it.
    EmptyShard {
        /// The unserved shard.
        shard: usize,
    },
    /// The assignment names a backend outside the fleet.
    BackendOutOfRange {
        /// The shard whose assignment is bad.
        shard: usize,
        /// The offending backend index.
        backend: usize,
        /// Backends in the fleet.
        num_backends: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoShards => write!(f, "placement needs at least one shard"),
            PlacementError::NoBackends => write!(f, "placement needs at least one backend"),
            PlacementError::EmptyShard { shard } => {
                write!(f, "shard {shard} has no backend assigned")
            }
            PlacementError::BackendOutOfRange {
                shard,
                backend,
                num_backends,
            } => write!(
                f,
                "shard {shard} names backend {backend} but the fleet has {num_backends}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Backends slower than this fraction of the fleet's best are left
/// unassigned by [`PlacementPlan::balanced`]: routing a sub-wave to a
/// device an order of magnitude slower inflates tail latency more than
/// its capacity repays (the wave waits for its slowest sub-batch).
pub const DOMINANCE_RATIO: f64 = 0.1;

/// Maps each shard of a collection to the subset of backends that
/// serves it. `assignments[shard]` is a sorted, deduplicated, non-empty
/// list of fleet indexes (the order backends were handed to the
/// scheduler).
///
/// See the [module docs](self) for why any plan yields count/AT-identical
/// merged answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    assignments: Vec<Vec<usize>>,
    num_backends: usize,
}

impl PlacementPlan {
    /// The do-nothing plan: every shard is served by the whole fleet.
    /// This is what an absent placement means to the serving layer.
    pub fn broadcast(num_shards: usize, num_backends: usize) -> Result<Self, PlacementError> {
        let all: Vec<usize> = (0..num_backends).collect();
        Self::new(vec![all; num_shards], num_backends)
    }

    /// Build a plan from an explicit per-shard backend list. Each
    /// shard's list is sorted and deduplicated; every shard must name at
    /// least one in-range backend.
    pub fn new(assignments: Vec<Vec<usize>>, num_backends: usize) -> Result<Self, PlacementError> {
        if assignments.is_empty() {
            return Err(PlacementError::NoShards);
        }
        if num_backends == 0 {
            return Err(PlacementError::NoBackends);
        }
        let mut cleaned = Vec::with_capacity(assignments.len());
        for (shard, mut backends) in assignments.into_iter().enumerate() {
            backends.sort_unstable();
            backends.dedup();
            if backends.is_empty() {
                return Err(PlacementError::EmptyShard { shard });
            }
            if let Some(&backend) = backends.iter().find(|&&b| b >= num_backends) {
                return Err(PlacementError::BackendOutOfRange {
                    shard,
                    backend,
                    num_backends,
                });
            }
            cleaned.push(backends);
        }
        Ok(PlacementPlan {
            assignments: cleaned,
            num_backends,
        })
    }

    /// Derive a capacity-aware plan from per-shard costs and per-backend
    /// capacity scores (higher score = faster backend; any unit, only
    /// ratios matter — the serving layer feeds windowed postings counts
    /// and the reciprocal of each backend's learned `us_per_posting`).
    ///
    /// The assignment is greedy longest-processing-time: shards are
    /// placed in descending cost order, each onto the backend whose
    /// *finish time* `(load + cost) / score` stays lowest. Backends left
    /// idle after every shard has a home are then spread onto the shards
    /// they shorten the most, keeping subsets disjoint whenever the
    /// fleet is at least as large as the shard count. Backends scoring
    /// below [`DOMINANCE_RATIO`] of the fleet's best are deliberately
    /// left unassigned (a throttled device only adds tail latency);
    /// non-positive scores (e.g. a retired backend) are always excluded.
    /// If exclusion would empty the fleet, every backend is kept.
    pub fn balanced(shard_costs: &[f64], backend_scores: &[f64]) -> Result<Self, PlacementError> {
        if shard_costs.is_empty() {
            return Err(PlacementError::NoShards);
        }
        if backend_scores.is_empty() {
            return Err(PlacementError::NoBackends);
        }
        let num_backends = backend_scores.len();
        // Sanitize: costs must be positive so every shard exerts load.
        let costs: Vec<f64> = shard_costs
            .iter()
            .map(|&c| {
                if c.is_finite() && c > 0.0 {
                    c
                } else {
                    f64::MIN_POSITIVE
                }
            })
            .collect();
        let scores: Vec<f64> = backend_scores
            .iter()
            .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
            .collect();
        let best = scores.iter().cloned().fold(0.0_f64, f64::max);
        let eligible: Vec<usize> = if best > 0.0 {
            (0..num_backends)
                .filter(|&b| scores[b] >= DOMINANCE_RATIO * best)
                .collect()
        } else {
            // Nothing scored: treat the fleet as homogeneous.
            (0..num_backends).collect()
        };
        let score_of = |b: usize| if scores[b] > 0.0 { scores[b] } else { 1.0 };

        // Phase 1: every shard gets one backend, greedy LPT by finish
        // time. Heaviest shards pick first so they land on the fastest
        // (least-loaded-per-capacity) backends.
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap());
        let mut load = vec![0.0_f64; num_backends];
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); costs.len()];
        for &shard in &order {
            let pick = eligible
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let fa = (load[a] + costs[shard]) / score_of(a);
                    let fb = (load[b] + costs[shard]) / score_of(b);
                    fa.partial_cmp(&fb).unwrap()
                })
                .expect("eligible fleet is never empty");
            load[pick] += costs[shard];
            assignments[shard].push(pick);
        }

        // Phase 2: spread idle eligible backends onto the shards whose
        // per-capacity load they shorten the most. Each idle backend
        // joins exactly one shard, so when the fleet is at least as
        // large as the shard count the subsets stay disjoint.
        let mut capacity: Vec<f64> = (0..costs.len())
            .map(|s| assignments[s].iter().map(|&b| score_of(b)).sum())
            .collect();
        let mut idle: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&b| load[b] == 0.0)
            .collect();
        // Fastest idle backends go to the neediest shards first.
        idle.sort_by(|&a, &b| score_of(b).partial_cmp(&score_of(a)).unwrap());
        for b in idle {
            let needy = (0..costs.len())
                .max_by(|&x, &y| {
                    (costs[x] / capacity[x])
                        .partial_cmp(&(costs[y] / capacity[y]))
                        .unwrap()
                })
                .expect("at least one shard");
            assignments[needy].push(b);
            capacity[needy] += score_of(b);
        }

        Self::new(assignments, num_backends)
    }

    /// Shards the plan covers.
    pub fn num_shards(&self) -> usize {
        self.assignments.len()
    }

    /// Fleet size the plan was built for.
    pub fn num_backends(&self) -> usize {
        self.num_backends
    }

    /// The backends assigned to `shard` (sorted fleet indexes).
    pub fn backends_of(&self, shard: usize) -> &[usize] {
        &self.assignments[shard]
    }

    /// Per-shard backend lists, in shard order.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assignments
    }

    /// `shard`'s assignment as a fleet-length boolean mask, the shape
    /// the scheduler's placed dispatch takes.
    pub fn mask_of(&self, shard: usize) -> Vec<bool> {
        let mut mask = vec![false; self.num_backends];
        for &b in &self.assignments[shard] {
            mask[b] = true;
        }
        mask
    }

    /// Whether every shard is served by the whole fleet (the plan is
    /// equivalent to no placement at all).
    pub fn is_broadcast(&self) -> bool {
        self.assignments
            .iter()
            .all(|a| a.len() == self.num_backends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_covers_every_backend() {
        let plan = PlacementPlan::broadcast(3, 4).unwrap();
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.num_backends(), 4);
        assert!(plan.is_broadcast());
        for s in 0..3 {
            assert_eq!(plan.backends_of(s), &[0, 1, 2, 3]);
            assert_eq!(plan.mask_of(s), vec![true; 4]);
        }
    }

    #[test]
    fn new_validates_and_normalizes() {
        let plan = PlacementPlan::new(vec![vec![2, 0, 2], vec![1]], 3).unwrap();
        assert_eq!(plan.backends_of(0), &[0, 2]);
        assert_eq!(plan.backends_of(1), &[1]);
        assert!(!plan.is_broadcast());
        assert_eq!(plan.mask_of(0), vec![true, false, true]);

        assert_eq!(PlacementPlan::new(vec![], 2), Err(PlacementError::NoShards));
        assert_eq!(
            PlacementPlan::new(vec![vec![0]], 0),
            Err(PlacementError::NoBackends)
        );
        assert_eq!(
            PlacementPlan::new(vec![vec![0], vec![]], 2),
            Err(PlacementError::EmptyShard { shard: 1 })
        );
        assert_eq!(
            PlacementPlan::new(vec![vec![0], vec![3]], 2),
            Err(PlacementError::BackendOutOfRange {
                shard: 1,
                backend: 3,
                num_backends: 2
            })
        );
    }

    #[test]
    fn balanced_is_disjoint_and_covering_when_fleet_is_big_enough() {
        let plan = PlacementPlan::balanced(&[4.0, 2.0, 1.0], &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(plan.num_shards(), 3);
        // Every shard is served and the subsets are disjoint.
        let mut seen = std::collections::HashSet::new();
        for s in 0..3 {
            assert!(!plan.backends_of(s).is_empty());
            for &b in plan.backends_of(s) {
                assert!(seen.insert(b), "backend {b} assigned to two shards");
            }
        }
        // A homogeneous fleet is fully used.
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn balanced_routes_heavy_shards_to_fast_backends() {
        // One fast backend, one 4x-slower one (above the dominance
        // cutoff): the expensive shard must land on the fast backend.
        let plan = PlacementPlan::balanced(&[10.0, 1.0], &[4.0, 1.0]).unwrap();
        assert_eq!(plan.backends_of(0), &[0]);
        assert_eq!(plan.backends_of(1), &[1]);
    }

    #[test]
    fn balanced_shares_backends_when_shards_outnumber_fleet() {
        let plan = PlacementPlan::balanced(&[1.0, 1.0, 1.0], &[1.0, 1.0]).unwrap();
        // All shards served; at least one backend shared.
        for s in 0..3 {
            assert!(!plan.backends_of(s).is_empty());
        }
        let total: usize = (0..3).map(|s| plan.backends_of(s).len()).sum();
        assert_eq!(total, 3, "each shard gets exactly one backend here");
    }

    #[test]
    fn balanced_leaves_dominated_backends_idle() {
        // Backend 1 is 50x slower than backend 0 — well below the
        // dominance cutoff — so nothing routes to it.
        let plan = PlacementPlan::balanced(&[3.0, 1.0], &[50.0, 1.0]).unwrap();
        for s in 0..2 {
            assert_eq!(plan.backends_of(s), &[0]);
        }
        // Zero-scored (retired) backends are likewise excluded.
        let plan = PlacementPlan::balanced(&[1.0], &[0.0, 1.0]).unwrap();
        assert_eq!(plan.backends_of(0), &[1]);
        // ...unless nothing scored at all, in which case the fleet is
        // treated as homogeneous rather than unusable.
        let plan = PlacementPlan::balanced(&[1.0, 1.0], &[0.0, 0.0]).unwrap();
        let used: usize = (0..2).map(|s| plan.backends_of(s).len()).sum();
        assert_eq!(used, 2);
    }

    #[test]
    fn balanced_rejects_empty_inputs() {
        assert_eq!(
            PlacementPlan::balanced(&[], &[1.0]),
            Err(PlacementError::NoShards)
        );
        assert_eq!(
            PlacementPlan::balanced(&[1.0], &[]),
            Err(PlacementError::NoBackends)
        );
    }
}
