//! Intra-collection sharding: split ONE data set across self-contained
//! index shards and merge per-shard top-k into the global answer.
//!
//! Where [`crate::multiload`] pages *parts* of an index through one
//! backend's memory, a [`ShardPlan`] splits a collection **across**
//! independent serving pipelines: each [`Shard`] is a complete
//! [`InvertedIndex`] over a subset of the objects, carrying its own
//! local→global id map, so any search backend can serve a shard without
//! knowing the collection is sharded at all. The serving layer fans a
//! query wave out to every shard and recombines the per-shard answers
//! with [`merge_shard_topk`].
//!
//! # Merge invariants
//!
//! Each object's match count is computed entirely within its own shard
//! (postings never cross shards), so per-shard counts equal the
//! unsharded counts. The merge therefore preserves the backend
//! contract end to end:
//!
//! * **Counts** — the merged top-k count profile is identical to an
//!   unsharded search: any object in the global top-k is, a fortiori,
//!   in its own shard's top-k, so it survives the per-shard truncation
//!   and reaches the merge.
//! * **AuditThreshold** — Theorem 3.1 is applied to the *merged* list:
//!   `AT = MC_k + 1` where `MC_k` is the k-th count of the merged
//!   answer (1 when fewer than `k` objects matched anywhere).
//! * **Ordering** — merged hits are ordered count-descending with
//!   ascending-id ties, exactly like every backend's own output.
//! * **Ids** — may differ from an unsharded run only among objects tied
//!   at the k-th count (the paper breaks those ties randomly). With
//!   backends that deterministically keep the lowest ids among ties
//!   (e.g. [`crate::backend::CpuBackend`]) the merged answer is
//!   bit-identical to the unsharded one, because each shard's
//!   local-id order is the global-id order restricted to the shard
//!   ([`ShardPlan`] assigns objects to shards in scan order, so every
//!   local→global map is strictly increasing).

use std::collections::HashSet;
use std::sync::Arc;

use crate::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
use crate::model::{Object, ObjectId};
use crate::topk::{audit_threshold, partial_top_k, TopHit};

/// Why a shard plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `num_shards == 0` was requested; a plan needs at least one shard.
    ZeroShards,
    /// The explicit assignment names a different number of objects than
    /// the collection holds.
    AssignmentLength {
        /// Objects the assignment names.
        named: usize,
        /// Objects the collection holds.
        have: usize,
    },
    /// The assignment routes an object to a shard outside the plan.
    ShardOutOfRange {
        /// The offending shard id.
        shard: usize,
        /// Shards in the plan.
        num_shards: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "need at least one shard"),
            ShardError::AssignmentLength { named, have } => write!(
                f,
                "assignment names {named} objects but the collection has {have}"
            ),
            ShardError::ShardOutOfRange { shard, num_shards } => write!(
                f,
                "assignment names shard {shard} but the plan has {num_shards}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// One self-contained index shard: a complete [`InvertedIndex`] over a
/// subset of the collection plus the map from its local object ids back
/// to collection-global ids.
#[derive(Clone)]
pub struct Shard {
    /// The shard's own inverted index (local ids `0..len`).
    pub index: Arc<InvertedIndex>,
    /// `global_ids[local]` is the collection-global id of the shard's
    /// local object `local`. Strictly increasing (objects are assigned
    /// in scan order), so local-id ordering is global-id ordering.
    pub global_ids: Arc<Vec<ObjectId>>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // summarise: dumping postings lists would swamp any log line
        f.debug_struct("Shard")
            .field("objects", &self.global_ids.len())
            .finish_non_exhaustive()
    }
}

impl Shard {
    /// Translate a shard-local hit list to collection-global ids. The
    /// relative order is unchanged: the local→global map is strictly
    /// increasing, so (count desc, id asc) ordering survives
    /// translation.
    pub fn to_global(&self, hits: &[TopHit]) -> Vec<TopHit> {
        hits.iter()
            .map(|h| TopHit {
                id: self.global_ids[h.id as usize],
                count: h.count,
            })
            .collect()
    }

    /// Whether the collection-global id `id` lives in this shard
    /// (binary search — `global_ids` is strictly increasing).
    pub fn contains_global(&self, id: ObjectId) -> bool {
        self.global_ids.binary_search(&id).is_ok()
    }

    /// Objects in this shard.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Wrap a whole-collection index as a single shard whose local ids
    /// *are* the global ids (`global_ids[i] == i`). This is how an
    /// unsharded collection enters the live-mutation path: the existing
    /// index becomes the first base shard without a rebuild.
    pub fn identity(index: Arc<InvertedIndex>) -> Self {
        let n = index.num_objects();
        Shard {
            index,
            global_ids: Arc::new((0..n).collect()),
        }
    }

    /// Rebuild this shard's `(stable id, object)` pairs by inverting its
    /// index and zipping with the local→global map. Postings within an
    /// object come back sorted (the index stores them that way); for
    /// load-balance-capped indexes the reconstruction is lossy, exactly
    /// as documented on [`InvertedIndex::reconstruct_objects`].
    pub fn entries(&self) -> Vec<(ObjectId, Object)> {
        self.index
            .reconstruct_objects()
            .into_iter()
            .zip(self.global_ids.iter())
            .map(|(obj, &id)| (id, obj))
            .collect()
    }
}

/// How one collection's objects are split into [`Shard`]s.
///
/// Build one with [`ShardPlan::build`] (near-even contiguous split),
/// [`ShardPlan::from_assignment`] (arbitrary split, e.g. for tests or
/// locality-aware placement) or [`ShardPlan::from_index`] (re-shard a
/// data set only held as an index). Empty shards are dropped — every
/// retained shard serves at least one object (an empty *collection*
/// keeps a single empty shard so it can still be registered and
/// searched like its unsharded twin).
#[derive(Clone)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    num_objects: usize,
}

impl ShardPlan {
    /// Split `objects` into at most `num_shards` near-even contiguous
    /// shards (the requested count is clamped to the number of
    /// objects — no shard is created empty). Each shard's index is
    /// built with `load_balance`, like an unsharded build.
    pub fn build(
        objects: &[Object],
        num_shards: usize,
        load_balance: Option<LoadBalanceConfig>,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let shards = num_shards.min(objects.len()).max(1);
        // `i * shards / n` yields contiguous runs whose sizes differ by
        // at most one AND hits every shard index — a ceil-sized chunk
        // split can leave trailing shards empty (6 objects / 4 shards
        // at chunk 2 fills only 3)
        let n = objects.len().max(1);
        let assignment: Vec<usize> = (0..objects.len()).map(|i| i * shards / n).collect();
        Self::from_assignment(objects, shards, &assignment, load_balance)
            .expect("contiguous assignment is always valid")
    }

    /// Split `objects` by an explicit per-object shard assignment
    /// (`assignment[i] < num_shards` names object `i`'s shard). Objects
    /// keep scan order within their shard, so every local→global map is
    /// strictly increasing. Shards that receive no objects are dropped.
    pub fn from_assignment(
        objects: &[Object],
        num_shards: usize,
        assignment: &[usize],
        load_balance: Option<LoadBalanceConfig>,
    ) -> Result<Self, ShardError> {
        if num_shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        if assignment.len() != objects.len() {
            return Err(ShardError::AssignmentLength {
                named: assignment.len(),
                have: objects.len(),
            });
        }
        if let Some(&bad) = assignment.iter().find(|&&s| s >= num_shards) {
            return Err(ShardError::ShardOutOfRange {
                shard: bad,
                num_shards,
            });
        }
        let mut builders: Vec<(IndexBuilder, Vec<ObjectId>)> = (0..num_shards)
            .map(|_| (IndexBuilder::new(), Vec::new()))
            .collect();
        for (global, (object, &shard)) in objects.iter().zip(assignment).enumerate() {
            let (builder, ids) = &mut builders[shard];
            builder.add_object(object);
            ids.push(global as ObjectId);
        }
        let mut shards: Vec<Shard> = builders
            .into_iter()
            .filter(|(_, ids)| !ids.is_empty())
            .map(|(builder, ids)| Shard {
                index: Arc::new(builder.build(load_balance)),
                global_ids: Arc::new(ids),
            })
            .collect();
        if shards.is_empty() {
            // an empty collection still needs one (empty) shard so it
            // can be registered and searched like its unsharded twin
            shards.push(Shard {
                index: Arc::new(IndexBuilder::new().build(load_balance)),
                global_ids: Arc::new(Vec::new()),
            });
        }
        Ok(Self {
            shards,
            num_objects: objects.len(),
        })
    }

    /// Re-shard a data set only held as an index: invert the index back
    /// into objects ([`InvertedIndex::reconstruct_objects`]) and
    /// [`build`](Self::build) a contiguous plan with the index's own
    /// load-balance configuration.
    ///
    /// `num_shards == 0` is a [`ShardError::ZeroShards`] error; a count
    /// larger than the collection is clamped (the documented
    /// [`build`](Self::build) behaviour — no shard is created empty).
    pub fn from_index(index: &InvertedIndex, num_shards: usize) -> Result<Self, ShardError> {
        if num_shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        Ok(Self::build(
            &index.reconstruct_objects(),
            num_shards,
            index.load_balance(),
        ))
    }

    /// The shards, in ascending global-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of (non-empty) shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Objects across all shards.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }
}

impl std::fmt::Debug for ShardPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlan")
            .field("num_shards", &self.num_shards())
            .field("num_objects", &self.num_objects)
            .field(
                "shard_sizes",
                &self.shards.iter().map(Shard::len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Recombine per-shard top-k lists (already translated to global ids,
/// e.g. by [`Shard::to_global`]) into the collection-global top-k and
/// its Theorem 3.1 certificate: the merged hits ordered
/// (count desc, id asc) and truncated to `k`, plus `AT = MC_k + 1` on
/// the *merged* answer (1 when fewer than `k` objects matched). See the
/// [module docs](self) for why the merged counts equal an unsharded
/// search's.
pub fn merge_shard_topk(per_shard: Vec<Vec<TopHit>>, k: usize) -> (Vec<TopHit>, u32) {
    let candidates: Vec<TopHit> = per_shard.into_iter().flatten().collect();
    let hits = partial_top_k(candidates, k);
    let at = audit_threshold(&hits, k);
    (hits, at)
}

/// [`merge_shard_topk`] for a *live* (mutable) collection: drop
/// tombstoned (deleted) ids from the flattened per-shard candidates
/// **before** truncating to `k`, then apply Theorem 3.1 to the filtered
/// merged answer.
///
/// Filtering before truncation is what makes the live answer identical
/// to a from-scratch rebuild without the deleted objects: as long as
/// every shard contributed at least its own top-`k` *surviving* objects
/// (the serving layer inflates the per-shard fetch to
/// `k + tombstones.len()`, so at most `tombstones.len()` of a shard's
/// hits can be dead), every object of the true live top-k reaches the
/// merge, and `AT = MC_k + 1` is computed on live counts only.
pub fn merge_shard_topk_filtered(
    per_shard: Vec<Vec<TopHit>>,
    k: usize,
    tombstones: &HashSet<ObjectId>,
) -> (Vec<TopHit>, u32) {
    if tombstones.is_empty() {
        return merge_shard_topk(per_shard, k);
    }
    let candidates: Vec<TopHit> = per_shard
        .into_iter()
        .flatten()
        .filter(|h| !tombstones.contains(&h.id))
        .collect();
    let hits = partial_top_k(candidates, k);
    let at = audit_threshold(&hits, k);
    (hits, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{match_count, Query};
    use crate::topk::reference_top_k;

    fn objects(n: u32) -> Vec<Object> {
        (0..n)
            .map(|i| Object::new(vec![i % 7, 100 + i % 3]))
            .collect()
    }

    /// Per-shard brute-force top-k with global ids, the way a backend
    /// fleet would produce it.
    fn shard_topk(shard: &Shard, objects: &[Object], query: &Query, k: usize) -> Vec<TopHit> {
        let counts: Vec<u32> = shard
            .global_ids
            .iter()
            .map(|&g| match_count(query, &objects[g as usize]))
            .collect();
        shard.to_global(&reference_top_k(&counts, k))
    }

    #[test]
    fn contiguous_build_covers_all_objects_in_order() {
        let objs = objects(25);
        let plan = ShardPlan::build(&objs, 4, None);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.num_objects(), 25);
        let mut seen: Vec<ObjectId> = Vec::new();
        for shard in plan.shards() {
            assert!(
                shard.global_ids.windows(2).all(|w| w[0] < w[1]),
                "local→global maps must be strictly increasing"
            );
            assert_eq!(shard.index.num_objects() as usize, shard.len());
            seen.extend(shard.global_ids.iter());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
    }

    /// Regression: a ceil-sized chunk split left trailing shards empty
    /// (6 objects at 4 shards → chunks 2,2,2 → only 3 shards), so the
    /// plan delivered fewer shards than the documented clamp promises.
    #[test]
    fn build_fills_every_requested_shard_when_objects_suffice() {
        for (n, s) in [(6u32, 4usize), (5, 4), (7, 3), (50, 8), (9, 9)] {
            let plan = ShardPlan::build(&objects(n), s, None);
            assert_eq!(plan.num_shards(), s, "{n} objects / {s} shards");
            let sizes: Vec<usize> = plan.shards().iter().map(Shard::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-even split, got {sizes:?}");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_the_collection() {
        let plan = ShardPlan::build(&objects(3), 10, None);
        assert_eq!(plan.num_shards(), 3, "no empty shards");
        let one = ShardPlan::build(&objects(5), 1, None);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(one.shards()[0].len(), 5);
    }

    #[test]
    fn empty_collection_keeps_one_empty_shard() {
        let plan = ShardPlan::build(&[], 4, None);
        assert_eq!(plan.num_shards(), 1, "registrable like its unsharded twin");
        assert_eq!(plan.num_objects(), 0);
        assert!(plan.shards()[0].is_empty());
        assert_eq!(plan.shards()[0].index.num_objects(), 0);
    }

    #[test]
    fn assignment_is_validated_and_drops_empty_shards() {
        let objs = objects(6);
        assert_eq!(
            ShardPlan::from_assignment(&objs, 0, &[], None).unwrap_err(),
            ShardError::ZeroShards,
        );
        assert_eq!(
            ShardPlan::from_assignment(&objs, 2, &[0, 1], None).unwrap_err(),
            ShardError::AssignmentLength { named: 2, have: 6 },
        );
        assert_eq!(
            ShardPlan::from_assignment(&objs, 2, &[0, 1, 2, 0, 1, 0], None).unwrap_err(),
            ShardError::ShardOutOfRange {
                shard: 2,
                num_shards: 2
            },
        );
        // shard 1 receives nothing and is dropped
        let plan = ShardPlan::from_assignment(&objs, 3, &[0, 2, 0, 2, 0, 2], None).unwrap();
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.shards()[0].global_ids.as_slice(), &[0, 2, 4]);
        assert_eq!(plan.shards()[1].global_ids.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn merged_topk_is_bit_identical_to_unsharded_reference() {
        let objs = objects(40);
        let queries = [
            Query::from_keywords(&[3, 101]),
            Query::from_keywords(&[0]),
            Query::from_keywords(&[999]), // matches nothing
        ];
        // an uneven, interleaved split
        let assignment: Vec<usize> = (0..objs.len()).map(|i| (i * i) % 3).collect();
        let plan = ShardPlan::from_assignment(&objs, 3, &assignment, None).unwrap();
        for query in &queries {
            let global_counts: Vec<u32> = objs.iter().map(|o| match_count(query, o)).collect();
            for k in [1, 3, 7, 40] {
                let per_shard: Vec<Vec<TopHit>> = plan
                    .shards()
                    .iter()
                    .map(|s| shard_topk(s, &objs, query, k))
                    .collect();
                let (merged, at) = merge_shard_topk(per_shard, k);
                let expected = reference_top_k(&global_counts, k);
                assert_eq!(merged, expected, "{query:?} k={k}");
                assert_eq!(
                    at,
                    audit_threshold(&expected, k),
                    "AT must be MC_k + 1 on the merged answer ({query:?} k={k})"
                );
            }
        }
    }

    #[test]
    fn from_index_round_trips_the_objects() {
        let objs = objects(17);
        let mut b = IndexBuilder::new();
        b.add_objects(objs.iter());
        let index = b.build(None);
        let plan = ShardPlan::from_index(&index, 4).unwrap();
        assert_eq!(plan.num_objects(), 17);
        let mut rebuilt: Vec<(ObjectId, Object)> = Vec::new();
        for shard in plan.shards() {
            for (local, obj) in shard.index.reconstruct_objects().into_iter().enumerate() {
                rebuilt.push((shard.global_ids[local], obj));
            }
        }
        rebuilt.sort_by_key(|(g, _)| *g);
        for (g, obj) in rebuilt {
            let mut want = objs[g as usize].keywords.clone();
            want.sort_unstable();
            assert_eq!(obj.keywords, want, "object {g}");
        }
    }

    #[test]
    fn merge_handles_underfull_and_empty_shards() {
        let (hits, at) = merge_shard_topk(vec![vec![], vec![]], 3);
        assert!(hits.is_empty());
        assert_eq!(at, 1, "nothing matched: AT stays at its initial 1");
        let (hits, at) = merge_shard_topk(
            vec![
                vec![TopHit { id: 4, count: 2 }],
                vec![TopHit { id: 1, count: 2 }],
            ],
            3,
        );
        assert_eq!(hits.len(), 2, "fewer than k matched");
        assert_eq!(hits[0].id, 1, "ties break by ascending global id");
        assert_eq!(at, 1, "AT advances only when k objects matched");
    }

    #[test]
    fn from_index_rejects_zero_shards() {
        let index = IndexBuilder::new().build(None);
        assert_eq!(
            ShardPlan::from_index(&index, 0).unwrap_err(),
            ShardError::ZeroShards
        );
        assert!(ShardError::ZeroShards.to_string().contains("shard"));
    }

    #[test]
    fn identity_shard_maps_local_ids_to_themselves() {
        let objs = objects(9);
        let mut b = IndexBuilder::new();
        b.add_objects(objs.iter());
        let shard = Shard::identity(Arc::new(b.build(None)));
        assert_eq!(shard.len(), 9);
        assert_eq!(
            shard.global_ids.as_slice(),
            (0..9).collect::<Vec<ObjectId>>().as_slice()
        );
        let entries = shard.entries();
        assert_eq!(entries.len(), 9);
        for (id, obj) in entries {
            let mut want = objs[id as usize].keywords.clone();
            want.sort_unstable();
            assert_eq!(obj.keywords, want);
        }
    }

    /// Filtering tombstones before truncation equals a brute-force
    /// rebuild without the deleted objects, provided each shard fetched
    /// k + |tombstones| hits.
    #[test]
    fn filtered_merge_equals_rebuild_without_tombstoned_objects() {
        let objs = objects(40);
        let tombstones: HashSet<ObjectId> = [0, 3, 7, 14, 21, 35].into_iter().collect();
        let assignment: Vec<usize> = (0..objs.len()).map(|i| (i * 5) % 3).collect();
        let plan = ShardPlan::from_assignment(&objs, 3, &assignment, None).unwrap();
        let query = Query::from_keywords(&[3, 101]);
        for k in [1usize, 3, 7, 40] {
            let k_eff = k + tombstones.len();
            let per_shard: Vec<Vec<TopHit>> = plan
                .shards()
                .iter()
                .map(|s| shard_topk(s, &objs, &query, k_eff))
                .collect();
            let (merged, at) = merge_shard_topk_filtered(per_shard, k, &tombstones);
            // brute force over the surviving objects, ids preserved
            let live_counts: Vec<TopHit> = objs
                .iter()
                .enumerate()
                .filter(|(i, _)| !tombstones.contains(&(*i as ObjectId)))
                .map(|(i, o)| TopHit {
                    id: i as ObjectId,
                    count: match_count(&query, o),
                })
                .filter(|h| h.count > 0)
                .collect();
            let expected = partial_top_k(live_counts, k);
            assert_eq!(merged, expected, "k={k}");
            assert_eq!(at, audit_threshold(&expected, k), "k={k}");
        }
    }
}
