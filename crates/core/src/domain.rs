//! The domain adapter trait behind the typed `GenieDb` facade.
//!
//! The paper's central claim is *genericity*: one inverted-index
//! match-count engine serves sequence, document, relational, tree/graph
//! and τ-ANN similarity search. [`Domain`] is that claim as a trait —
//! the *only* contract a data type has to implement to be served by the
//! whole stack (engine, scheduler, admission service, typed facade):
//!
//! 1. **decompose** its items into match-count
//!    [`Object`]s and freeze them into an
//!    [`InvertedIndex`] (`create` / `index`);
//! 2. **encode** a typed query spec into a match-count [`Query`]
//!    (`encode`, validated — malformed specs are a typed
//!    [`QueryBuildError`], not a deep assert);
//! 3. **decode** the engine's raw top-k hits back into typed results
//!    (`decode`, which is where shotgun-and-assembly domains run their
//!    verification step).
//!
//! The `genie-service` crate's `GenieDb`/`Collection<D>` route every
//! implementation through one shared scheduler/admission stack; the
//! implementations live next to their data types (`genie-sa` for the
//! five SA domains, `genie-lsh` for τ-ANN).
//!
//! ```
//! use std::sync::Arc;
//! use genie_core::domain::{Domain, MatchHits};
//! use genie_core::index::{IndexBuilder, InvertedIndex};
//! use genie_core::model::{Object, Query, QueryBuildError};
//! use genie_core::topk::TopHit;
//!
//! /// A toy domain: items are keyword lists, queries are keyword lists.
//! struct Keywords {
//!     index: Arc<InvertedIndex>,
//!     universe: u32,
//! }
//!
//! impl Domain for Keywords {
//!     type Config = u32; // universe size
//!     type Item = Vec<u32>;
//!     type QuerySpec = Vec<u32>;
//!     type Response = MatchHits;
//!
//!     fn name() -> &'static str {
//!         "keywords"
//!     }
//!     fn create(universe: u32, items: Vec<Vec<u32>>) -> Self {
//!         let mut b = IndexBuilder::new();
//!         for kws in &items {
//!             b.add_object(&kws.clone().into());
//!         }
//!         Self {
//!             index: Arc::new(b.build(None)),
//!             universe,
//!         }
//!     }
//!     fn index(&self) -> &Arc<InvertedIndex> {
//!         &self.index
//!     }
//!     fn encode(&self, spec: &Vec<u32>) -> Result<Query, QueryBuildError> {
//!         Query::try_from_keywords(spec, self.universe)
//!     }
//!     // one item -> one Object, validated like a query (live inserts)
//!     fn decompose(&self, item: &Vec<u32>) -> Result<Object, QueryBuildError> {
//!         if let Some(&kw) = item.iter().find(|&&kw| kw >= self.universe) {
//!             return Err(QueryBuildError::KeywordOutOfRange {
//!                 keyword: kw,
//!                 universe: self.universe,
//!             });
//!         }
//!         Ok(Object::new(item.clone()))
//!     }
//!     fn decode(&self, _spec: &Vec<u32>, hits: Vec<TopHit>, at: u32, _kc: usize, _k: usize) -> MatchHits {
//!         MatchHits {
//!             hits,
//!             audit_threshold: at,
//!         }
//!     }
//! }
//!
//! let d = Keywords::create(10, vec![vec![1, 5], vec![1, 6]]);
//! assert!(d.encode(&vec![]).is_err(), "empty spec is a typed error");
//! assert!(d.encode(&vec![99]).is_err(), "out-of-universe keyword too");
//! assert_eq!(d.encode(&vec![1, 5]).unwrap().len(), 2);
//! assert!(d.decompose(&vec![99]).is_err(), "items validate like queries");
//! assert_eq!(d.decompose(&vec![2, 7]).unwrap().keywords, vec![2, 7]);
//! ```

use std::sync::Arc;

use crate::index::InvertedIndex;
use crate::model::{Object, ObjectId, Query, QueryBuildError};
use crate::topk::TopHit;

/// The typed response of a pure match-count domain (documents,
/// relational selections, τ-ANN): the engine's top-k hits *are* the
/// answer — no verification pass — plus the final AuditThreshold
/// (`AT − 1` is the k-th match count, Theorem 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchHits {
    /// Up to `k` hits, count-descending with ascending-id tie-breaks.
    pub hits: Vec<TopHit>,
    /// Final AuditThreshold of the query.
    pub audit_threshold: u32,
}

/// An adapter that maps one data type onto the match-count model.
///
/// Implementations are *stateful*: `create` builds whatever encoding
/// state the domain needs (vocabularies, discretisation schemas, LSH
/// transformers) alongside the frozen [`InvertedIndex`], and `encode` /
/// `decode` consult that state. See the [module docs](self) for the
/// three-step contract and a runnable toy implementation; the real
/// implementations live in `genie-sa` and `genie-lsh`.
pub trait Domain: Send + Sync + Sized + 'static {
    /// Build-time parameters beyond the items themselves (n-gram
    /// length, relational schema, LSH transformer, `()` when none).
    type Config;
    /// One indexable data item.
    type Item;
    /// One typed query.
    type QuerySpec: Send;
    /// The typed answer to one query.
    type Response: Send + 'static;

    /// Stable human-readable domain name ("document", "tau-ann", ...).
    fn name() -> &'static str;

    /// Decompose and index `items`.
    fn create(config: Self::Config, items: Vec<Self::Item>) -> Self;

    /// The frozen inverted index every backend uploads.
    fn index(&self) -> &Arc<InvertedIndex>;

    /// Encode a typed spec into a match-count query, validating it:
    /// empty specs, empty ranges, out-of-range keywords/values and
    /// non-finite numbers all surface here as [`QueryBuildError`]s.
    fn encode(&self, spec: &Self::QuerySpec) -> Result<Query, QueryBuildError>;

    /// Decompose ONE item into its match-count [`Object`], exactly as
    /// [`create`](Self::create) decomposes each of its items — this is
    /// what makes live *inserts* possible: a new item is decomposed
    /// here, absorbed into a collection's delta shard and served
    /// identically to a from-scratch rebuild that had included it.
    ///
    /// Validation mirrors `encode`: malformed items (wrong relational
    /// arity, non-finite coordinates, ...) are a typed
    /// [`QueryBuildError`], never a panic. Domains with an encoding
    /// vocabulary may **grow** it here (interior mutability behind
    /// `&self`) — never shrink, reorder or reassign existing entries,
    /// or previously returned `Object`s would change meaning.
    fn decompose(&self, item: &Self::Item) -> Result<Object, QueryBuildError>;

    /// Persist an inserted item under its assigned stable id, for
    /// domains whose [`decode`](Self::decode) needs the original item
    /// (the shotgun-and-assembly verification step). Called after id
    /// assignment but before any search can return `id`; ids arrive
    /// dense and ascending, and are never reused — even across
    /// compaction — so an id-indexed store only ever appends. Pure
    /// match-count domains keep the default no-op.
    fn store_item(&self, _id: ObjectId, _item: Self::Item) {}

    /// How many raw candidates to retrieve for a final top-`k`.
    /// Filter-and-verify domains over-fetch (the paper's `K ≥ k`);
    /// pure match-count domains keep the default `k`.
    fn candidates_for(&self, k: usize) -> usize {
        k
    }

    /// Turn the engine's raw hits for `spec` into the typed response.
    /// `k_candidates` is the candidate count the hits were retrieved
    /// with (what [`candidates_for`](Self::candidates_for) returned, or
    /// a caller override); `k` is the final answer size.
    fn decode(
        &self,
        spec: &Self::QuerySpec,
        hits: Vec<TopHit>,
        audit_threshold: u32,
        k_candidates: usize,
        k: usize,
    ) -> Self::Response;

    /// Whether `response` is provably exact (drives the adaptive
    /// retrieval loop: exact answers stop the candidate-doubling
    /// schedule early). Pure match-count domains are always exact.
    fn is_exact(_response: &Self::Response) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    struct Tiny {
        index: Arc<InvertedIndex>,
    }

    impl Domain for Tiny {
        type Config = ();
        type Item = Vec<u32>;
        type QuerySpec = Vec<u32>;
        type Response = MatchHits;

        fn name() -> &'static str {
            "tiny"
        }
        fn create(_: (), items: Vec<Vec<u32>>) -> Self {
            let mut b = IndexBuilder::new();
            for kws in &items {
                b.add_object(&kws.clone().into());
            }
            Self {
                index: Arc::new(b.build(None)),
            }
        }
        fn index(&self) -> &Arc<InvertedIndex> {
            &self.index
        }
        fn encode(&self, spec: &Vec<u32>) -> Result<Query, QueryBuildError> {
            Query::try_from_keywords(spec, 100)
        }
        fn decompose(&self, item: &Vec<u32>) -> Result<Object, QueryBuildError> {
            Ok(Object::new(item.clone()))
        }
        fn decode(
            &self,
            _spec: &Vec<u32>,
            hits: Vec<TopHit>,
            audit_threshold: u32,
            _kc: usize,
            _k: usize,
        ) -> MatchHits {
            MatchHits {
                hits,
                audit_threshold,
            }
        }
    }

    #[test]
    fn defaults_are_the_pure_match_count_behaviour() {
        let d = Tiny::create((), vec![vec![1, 2], vec![2, 3]]);
        assert_eq!(Tiny::name(), "tiny");
        assert_eq!(d.candidates_for(7), 7);
        let resp = d.decode(&vec![2], vec![TopHit { id: 0, count: 1 }], 2, 7, 7);
        assert!(Tiny::is_exact(&resp));
        assert_eq!(resp.audit_threshold, 2);
        assert_eq!(d.index().num_objects(), 2);
    }

    #[test]
    fn encode_surfaces_typed_errors() {
        let d = Tiny::create((), vec![vec![1]]);
        assert_eq!(d.encode(&vec![]), Err(QueryBuildError::EmptyQuery));
        assert!(matches!(
            d.encode(&vec![100]),
            Err(QueryBuildError::KeywordOutOfRange { .. })
        ));
    }
}
