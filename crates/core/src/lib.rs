//! # genie-core — the GENIE inverted-index engine
//!
//! Rust reproduction of the core contribution of *"A Generic Inverted
//! Index Framework for Similarity Search on the GPU"* (ICDE 2018):
//!
//! * the **match-count model** ([`model`]) — the abstract similarity
//!   interface every data type is compiled down to;
//! * the device-resident **inverted index** ([`index`]) with host
//!   Position Map, flat List Array and load-balanced sublists;
//! * the **Count Priority Queue** ([`cpq`]) — bitmap counters, the
//!   ZipperArray/AuditThreshold gate and the modified Robin Hood hash
//!   table that make top-k selection a single table scan;
//! * the batched **engine** ([`exec`]) that runs multi-query top-k
//!   match-count search on a [`gpu_sim::Device`];
//! * **multiple loading** ([`multiload`]) for data sets larger than
//!   device memory;
//! * **intra-collection sharding** ([`shard`]) — split one collection
//!   across self-contained index shards (local→global id maps) and
//!   merge per-shard top-k into the global answer with the Theorem 3.1
//!   certificate, for the serving layer's shard fan-out;
//! * **shard placement** ([`placement`]) — capacity-aware
//!   shard→backend assignment for the serving fleet, count/AT-identical
//!   to broadcast by construction;
//! * **live mutations** ([`delta`]) — an LSM-style mutable delta shard
//!   plus tombstone set over the immutable base shards, with a
//!   snapshot/compact/apply background-compaction protocol, so
//!   collections absorb inserts and deletes with search results
//!   provably identical to a from-scratch rebuild.
//!
//! ## Search backends
//!
//! Execution is pluggable behind the [`backend::SearchBackend`] trait
//! (`upload` / `search_batch` / `capabilities`), with three
//! implementations:
//!
//! * [`exec::Engine`] — the paper-faithful pipeline on the simulated
//!   SIMT device, reporting per-stage cost-model time;
//! * [`backend::CpuBackend`] — pure-host rayon execution with no
//!   simulation overhead (exact counts, host wall-clock only);
//! * [`backend::MultiDeviceBackend`] — several simulated devices paging
//!   device-sized index parts through memory (the [`multiload`]
//!   machinery behind the common interface).
//!
//! All backends agree with the brute-force
//! [`model::match_count`] on counts and report AuditThresholds with the
//! Theorem 3.1 semantics; ids may differ only among objects tied at the
//! k-th count (the paper breaks such ties randomly). The type-mapping
//! layers (`genie-lsh`, `genie-sa`), the bench harness and the CLI all
//! take `&dyn SearchBackend`, and the `genie-service` crate schedules
//! multi-client micro-batched traffic across fleets of backends.
//!
//! Higher layers map concrete data types onto this engine: `genie-lsh`
//! (ANN search via locality-sensitive hashing) and `genie-sa` (sequences,
//! documents and relational tables via shotgun-and-assembly).
//!
//! ```
//! use std::sync::Arc;
//! use genie_core::prelude::*;
//!
//! // three objects over a keyword universe
//! let objects = vec![
//!     Object::new(vec![1, 5]),
//!     Object::new(vec![1, 6]),
//!     Object::new(vec![2, 5]),
//! ];
//! let mut builder = IndexBuilder::new();
//! builder.add_objects(objects.iter());
//! let index = Arc::new(builder.build(None));
//!
//! let engine = Engine::new(Arc::new(gpu_sim::Device::with_defaults()));
//! let device_index = engine.upload(index).unwrap();
//! let query = Query::from_keywords(&[1, 5]);
//! let out = engine.search(&device_index, &[query], 2);
//! assert_eq!(out.results[0][0].id, 0); // object 0 matches both keywords
//! ```

pub mod backend;
pub mod cpq;
pub mod delta;
pub mod domain;
pub mod exec;
pub mod index;
pub mod io;
pub mod model;
pub mod multiload;
pub mod placement;
pub mod shard;
pub mod topk;

/// Convenient re-exports of the types almost every user needs.
pub mod prelude {
    pub use crate::backend::{
        BackendCaps, BackendIndex, BackendKind, CpuBackend, MultiDeviceBackend, SearchBackend,
    };
    pub use crate::delta::{CompactionSnapshot, DeltaPlan};
    pub use crate::domain::{Domain, MatchHits};
    pub use crate::exec::{DeviceIndex, Engine, SearchOutput, StageProfile};
    pub use crate::index::{IndexBuilder, InvertedIndex, LoadBalanceConfig};
    pub use crate::model::{
        match_count, KeywordId, Object, ObjectId, Query, QueryBuildError, QueryItem,
    };
    pub use crate::multiload::{
        build_parts, multi_device_search, multi_load_search, IndexPart, MultiLoadReport,
    };
    pub use crate::placement::{PlacementError, PlacementPlan};
    pub use crate::shard::{
        merge_shard_topk, merge_shard_topk_filtered, Shard, ShardError, ShardPlan,
    };
    pub use crate::topk::{reference_top_k, TopHit};
}
