//! The simulated device: launches kernels, runs blocks in parallel on
//! host threads, and aggregates cost-model statistics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::counters::{block_simd_cost, makespan, CostModel, DeviceCounters, LaunchStats};
use crate::grid::{LaunchConfig, ThreadCtx};

/// Device construction parameters.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Host worker threads used to execute blocks in parallel. Defaults to
    /// the number of available CPUs.
    pub host_workers: usize,
    /// Cost-model constants of the simulated hardware.
    pub cost_model: CostModel,
    /// Simulated global-memory capacity in bytes (12 GB mirrors the
    /// GTX TITAN X used in the paper). Enforced by [`Device::check_fits`]
    /// so the multiple-loading path is exercised the same way it is on
    /// real hardware.
    pub memory_bytes: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            host_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cost_model: CostModel::default(),
            memory_bytes: 12 * 1024 * 1024 * 1024,
        }
    }
}

/// The software SIMT device.
///
/// A `Device` executes [`Device::launch`] calls: the kernel closure runs
/// once per lane of the grid, blocks execute concurrently across host
/// worker threads, and all inter-lane communication happens through the
/// atomic [`crate::GlobalU32`]/[`crate::GlobalU64`] buffers the closure
/// captures — exactly the discipline CUDA kernels obey.
pub struct Device {
    config: DeviceConfig,
    counters: Mutex<DeviceCounters>,
}

impl Device {
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            counters: Mutex::new(DeviceCounters::default()),
        }
    }

    /// A device with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(DeviceConfig::default())
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost_model
    }

    /// Returns an error if `bytes` exceeds the simulated memory capacity.
    pub fn check_fits(&self, bytes: u64) -> Result<(), String> {
        if bytes > self.config.memory_bytes {
            Err(format!(
                "allocation of {bytes} bytes exceeds device memory of {} bytes",
                self.config.memory_bytes
            ))
        } else {
            Ok(())
        }
    }

    /// Record a host-to-device transfer of `bytes` (index/query uploads).
    pub fn record_h2d(&self, bytes: u64) {
        self.counters.lock().h2d_bytes += bytes;
    }

    /// Record a device-to-host transfer of `bytes` (result downloads).
    pub fn record_d2h(&self, bytes: u64) {
        self.counters.lock().d2h_bytes += bytes;
    }

    /// Snapshot of the cumulative counters.
    pub fn counters(&self) -> DeviceCounters {
        self.counters.lock().clone()
    }

    /// Reset cumulative counters (between experiments).
    pub fn reset_counters(&self) {
        *self.counters.lock() = DeviceCounters::default();
    }

    /// Launch `kernel` over `cfg`. The closure is invoked once per lane
    /// with that lane's [`ThreadCtx`]; blocks run in parallel over the
    /// host worker pool. Returns the launch's cost statistics.
    ///
    /// # Panics
    /// Panics if the launch configuration violates hardware limits; this
    /// mirrors a CUDA launch failure and always indicates a caller bug.
    pub fn launch<K>(&self, name: &str, cfg: LaunchConfig, kernel: K) -> LaunchStats
    where
        K: Fn(&ThreadCtx) + Sync,
    {
        cfg.validate().expect("invalid launch configuration");
        let started = Instant::now();

        let next_block = AtomicUsize::new(0);
        let workers = self.config.host_workers.max(1).min(cfg.grid_dim);
        let results: Mutex<Vec<BlockReport>> = Mutex::new(Vec::with_capacity(cfg.grid_dim));

        let run_block = |block_idx: usize| -> BlockReport {
            let mut lane_work = Vec::with_capacity(cfg.block_dim);
            let mut report = BlockReport::default();
            for thread_idx in 0..cfg.block_dim {
                let ctx = ThreadCtx::new(block_idx, thread_idx, &cfg);
                kernel(&ctx);
                let lane = ctx.drain();
                report.total_work += lane.work;
                report.atomic_retries += lane.atomic_retries;
                report.mem_ops += lane.mem_ops;
                lane_work.push(lane.work);
            }
            let (simd, cost) = block_simd_cost(&lane_work);
            report.simd_cycles = simd;
            report.block_cost = cost;
            report
        };

        if workers <= 1 {
            let mut local = Vec::with_capacity(cfg.grid_dim);
            for b in 0..cfg.grid_dim {
                local.push(run_block(b));
            }
            *results.lock() = local;
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let b = next_block.fetch_add(1, Ordering::Relaxed);
                            if b >= cfg.grid_dim {
                                break;
                            }
                            local.push(run_block(b));
                        }
                        results.lock().extend(local);
                    });
                }
            });
        }

        let reports = results.into_inner();
        let mut block_costs: Vec<u64> = reports.iter().map(|r| r.block_cost).collect();
        let mut stats = LaunchStats {
            name: name.to_string(),
            blocks: cfg.grid_dim,
            threads: cfg.total_threads(),
            host_us: started.elapsed().as_micros() as u64,
            ..Default::default()
        };
        for r in &reports {
            stats.total_work += r.total_work;
            stats.simd_cycles += r.simd_cycles;
            stats.atomic_retries += r.atomic_retries;
            stats.mem_ops += r.mem_ops;
        }
        stats.makespan_cycles = makespan(&mut block_costs, self.config.cost_model.num_sm)
            + self.config.cost_model.launch_overhead_cycles;

        self.counters.lock().absorb(&stats);
        stats
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct BlockReport {
    total_work: u64,
    simd_cycles: u64,
    block_cost: u64,
    atomic_retries: u64,
    mem_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalU32;

    #[test]
    fn launch_runs_every_lane_exactly_once() {
        let device = Device::with_defaults();
        let n = 10_000usize;
        let hits = GlobalU32::zeroed(n);
        let cfg = LaunchConfig::cover(n, 256);
        let buf = hits.clone();
        device.launch("touch", cfg, move |ctx| {
            let gid = ctx.global_id();
            if gid < n {
                buf.atomic_add(ctx, gid, 1);
            }
        });
        assert!(hits.to_host().iter().all(|&v| v == 1));
    }

    #[test]
    fn concurrent_atomic_adds_do_not_lose_updates() {
        let device = Device::with_defaults();
        let counter = GlobalU32::zeroed(1);
        let cfg = LaunchConfig::new(64, 256);
        let buf = counter.clone();
        device.launch("contend", cfg, move |ctx| {
            buf.atomic_add(ctx, 0, 1);
        });
        assert_eq!(counter.read_host(0), (64 * 256) as u32);
    }

    #[test]
    fn launch_stats_account_work() {
        let device = Device::with_defaults();
        let cfg = LaunchConfig::new(4, 32);
        let stats = device.launch("tick", cfg, |ctx| ctx.tick(10));
        assert_eq!(stats.blocks, 4);
        assert_eq!(stats.threads, 128);
        assert_eq!(stats.total_work, 128 * 10);
        // 4 blocks of one warp each, each warp costs max(lane)=10
        assert_eq!(stats.simd_cycles, 40);
        assert!(stats.makespan_cycles >= 10);
        let counters = device.counters();
        assert_eq!(counters.launches, 1);
        assert_eq!(counters.total_work, 1280);
    }

    #[test]
    fn divergence_shows_up_in_efficiency() {
        let device = Device::with_defaults();
        let cfg = LaunchConfig::new(1, 32);
        let stats = device.launch("diverge", cfg, |ctx| {
            // one lane of the warp does 32x the work
            if ctx.thread_idx == 0 {
                ctx.tick(320);
            } else {
                ctx.tick(10);
            }
        });
        assert!(stats.simd_efficiency() < 0.2);
    }

    #[test]
    fn few_blocks_cannot_fill_the_device() {
        // A launch with 1 block has the same makespan as its block cost,
        // no matter how many SMs exist — this is the GPU-LSH effect.
        let device = Device::with_defaults();
        let one = device.launch("one", LaunchConfig::new(1, 32), |ctx| ctx.tick(1000));
        let many = device.launch("many", LaunchConfig::new(24, 32), |ctx| ctx.tick(1000));
        // 24 blocks spread over 24 SMs: same makespan as 1 block
        assert_eq!(
            one.makespan_cycles, many.makespan_cycles,
            "independent blocks should run fully in parallel"
        );
        assert_eq!(many.total_work, 24 * one.total_work);
    }

    #[test]
    fn memory_capacity_is_enforced() {
        let cfg = DeviceConfig {
            memory_bytes: 1024,
            ..Default::default()
        };
        let device = Device::new(cfg);
        assert!(device.check_fits(1000).is_ok());
        assert!(device.check_fits(2000).is_err());
    }

    #[test]
    fn transfer_counters_accumulate() {
        let device = Device::with_defaults();
        device.record_h2d(100);
        device.record_h2d(50);
        device.record_d2h(25);
        let c = device.counters();
        assert_eq!(c.h2d_bytes, 150);
        assert_eq!(c.d2h_bytes, 25);
    }

    #[test]
    fn single_worker_path_matches_parallel_path() {
        let cfg = DeviceConfig {
            host_workers: 1,
            ..Default::default()
        };
        let device = Device::new(cfg);
        let n = 1000usize;
        let out = GlobalU32::zeroed(n);
        let buf = out.clone();
        device.launch("seq", LaunchConfig::cover(n, 128), move |ctx| {
            let gid = ctx.global_id();
            if gid < n {
                buf.store(ctx, gid, gid as u32 * 2);
            }
        });
        let host = out.to_host();
        assert_eq!(host[499], 998);
    }
}
