//! Global-memory buffers with word-sized atomics and transfer accounting.
//!
//! All device-visible state lives in [`GlobalU32`] / [`GlobalU64`]
//! buffers. They are shared between the host and every lane of a launch
//! (`Arc` internally, so kernels — plain closures — simply capture clones).
//! Every device-side access goes through a [`ThreadCtx`] so the lane is
//! charged simulated cycles; host-side `read_*`/`write_*` accessors model
//! H2D/D2H transfers and are tallied in [`TransferStats`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::grid::ThreadCtx;

/// Simulated cycle cost of one global-memory word access.
pub(crate) const MEM_CYCLES: u64 = 4;
/// Extra simulated cycle cost of an atomic read-modify-write.
pub(crate) const ATOMIC_CYCLES: u64 = 8;

/// Cumulative host<->device transfer statistics for one device.
#[derive(Debug, Default, Clone, Copy)]
pub struct TransferStats {
    /// Bytes copied host -> device (buffer uploads).
    pub h2d_bytes: u64,
    /// Bytes copied device -> host (result downloads).
    pub d2h_bytes: u64,
}

impl TransferStats {
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

macro_rules! global_buffer {
    ($name:ident, $atomic:ty, $word:ty, $bytes:expr) => {
        /// A global-memory buffer of atomic words shared by host and device.
        #[derive(Clone)]
        pub struct $name {
            words: Arc<Vec<$atomic>>,
        }

        impl $name {
            /// Allocate a zero-initialised buffer of `len` words.
            pub fn zeroed(len: usize) -> Self {
                let mut v = Vec::with_capacity(len);
                v.resize_with(len, || <$atomic>::new(0));
                Self { words: Arc::new(v) }
            }

            /// Upload a host slice into a fresh device buffer (H2D copy).
            pub fn from_host(data: &[$word]) -> Self {
                let v: Vec<$atomic> = data.iter().map(|&w| <$atomic>::new(w)).collect();
                Self { words: Arc::new(v) }
            }

            /// Number of words in the buffer.
            pub fn len(&self) -> usize {
                self.words.len()
            }

            /// Whether the buffer holds zero words.
            pub fn is_empty(&self) -> bool {
                self.words.is_empty()
            }

            /// Size of the buffer in bytes (for memory accounting).
            pub fn size_bytes(&self) -> u64 {
                (self.words.len() * $bytes) as u64
            }

            /// Device-side load; charges the lane a memory access.
            #[inline]
            pub fn load(&self, ctx: &ThreadCtx, idx: usize) -> $word {
                ctx.charge_mem(MEM_CYCLES);
                self.words[idx].load(Ordering::Relaxed)
            }

            /// Device-side store; charges the lane a memory access.
            #[inline]
            pub fn store(&self, ctx: &ThreadCtx, idx: usize, val: $word) {
                ctx.charge_mem(MEM_CYCLES);
                self.words[idx].store(val, Ordering::Relaxed);
            }

            /// Device-side `atomicAdd`; returns the previous value.
            #[inline]
            pub fn atomic_add(&self, ctx: &ThreadCtx, idx: usize, val: $word) -> $word {
                ctx.charge_mem(MEM_CYCLES + ATOMIC_CYCLES);
                self.words[idx].fetch_add(val, Ordering::AcqRel)
            }

            /// Device-side `atomicMax`; returns the previous value.
            #[inline]
            pub fn atomic_max(&self, ctx: &ThreadCtx, idx: usize, val: $word) -> $word {
                ctx.charge_mem(MEM_CYCLES + ATOMIC_CYCLES);
                self.words[idx].fetch_max(val, Ordering::AcqRel)
            }

            /// Device-side `atomicCAS`; returns `Ok(current)` on success and
            /// `Err(actual)` on failure. Failures charge the lane a retry.
            #[inline]
            pub fn atomic_cas(
                &self,
                ctx: &ThreadCtx,
                idx: usize,
                current: $word,
                new: $word,
            ) -> Result<$word, $word> {
                ctx.charge_mem(MEM_CYCLES + ATOMIC_CYCLES);
                match self.words[idx].compare_exchange(
                    current,
                    new,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(v) => Ok(v),
                    Err(v) => {
                        ctx.charge_retry();
                        Err(v)
                    }
                }
            }

            /// Host-side read of a single word (not charged to any lane).
            pub fn read_host(&self, idx: usize) -> $word {
                self.words[idx].load(Ordering::Acquire)
            }

            /// Host-side write of a single word.
            pub fn write_host(&self, idx: usize, val: $word) {
                self.words[idx].store(val, Ordering::Release);
            }

            /// Download the whole buffer to the host (D2H copy).
            pub fn to_host(&self) -> Vec<$word> {
                self.words
                    .iter()
                    .map(|w| w.load(Ordering::Acquire))
                    .collect()
            }

            /// Reset every word to zero (device-side memset).
            pub fn clear(&self) {
                for w in self.words.iter() {
                    w.store(0, Ordering::Relaxed);
                }
            }

            /// Overwrite every word with `val`.
            pub fn fill(&self, val: $word) {
                for w in self.words.iter() {
                    w.store(val, Ordering::Relaxed);
                }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(len={})"), self.len())
            }
        }
    };
}

global_buffer!(GlobalU32, AtomicU32, u32, 4);
global_buffer!(GlobalU64, AtomicU64, u64, 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LaunchConfig;

    fn ctx() -> ThreadCtx {
        ThreadCtx::new(0, 0, &LaunchConfig::new(1, 1))
    }

    #[test]
    fn round_trip_host_device() {
        let buf = GlobalU32::from_host(&[1, 2, 3]);
        let c = ctx();
        assert_eq!(buf.load(&c, 1), 2);
        buf.store(&c, 1, 42);
        assert_eq!(buf.to_host(), vec![1, 42, 3]);
        assert_eq!(buf.size_bytes(), 12);
    }

    #[test]
    fn atomic_add_returns_previous() {
        let buf = GlobalU32::zeroed(1);
        let c = ctx();
        assert_eq!(buf.atomic_add(&c, 0, 5), 0);
        assert_eq!(buf.atomic_add(&c, 0, 5), 5);
        assert_eq!(buf.read_host(0), 10);
    }

    #[test]
    fn atomic_max_keeps_maximum() {
        let buf = GlobalU32::zeroed(1);
        let c = ctx();
        buf.atomic_max(&c, 0, 7);
        buf.atomic_max(&c, 0, 3);
        assert_eq!(buf.read_host(0), 7);
    }

    #[test]
    fn cas_success_and_failure_are_distinguished() {
        let buf = GlobalU64::from_host(&[10]);
        let c = ctx();
        assert_eq!(buf.atomic_cas(&c, 0, 10, 20), Ok(10));
        assert_eq!(buf.atomic_cas(&c, 0, 10, 30), Err(20));
        assert_eq!(buf.read_host(0), 20);
    }

    #[test]
    fn memory_accesses_charge_work() {
        let buf = GlobalU32::zeroed(4);
        let c = ctx();
        let before = c.work();
        buf.load(&c, 0);
        buf.atomic_add(&c, 0, 1);
        assert!(c.work() > before);
    }

    #[test]
    fn clear_and_fill() {
        let buf = GlobalU32::from_host(&[9, 9, 9]);
        buf.clear();
        assert_eq!(buf.to_host(), vec![0, 0, 0]);
        buf.fill(3);
        assert_eq!(buf.to_host(), vec![3, 3, 3]);
    }
}
