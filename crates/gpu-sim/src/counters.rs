//! The device cost model: turning per-lane work into simulated time.
//!
//! The model is deliberately simple but preserves the effects GENIE's
//! evaluation depends on:
//!
//! * **SIMD lock-step** — a warp costs the *maximum* of its lanes' work,
//!   so divergent branches (lanes doing unequal work) slow the warp.
//! * **Occupancy** — block costs are scheduled onto `num_sm` streaming
//!   multiprocessors (longest-processing-time makespan). A launch with
//!   few blocks cannot use the whole device, which is exactly why the
//!   paper's GPU-LSH (one *thread* per query) is flat in the number of
//!   queries while GENIE (one *block* per query item) keeps scaling.
//! * **Transfers** — H2D/D2H bytes are converted to time with a PCIe-like
//!   bandwidth so Table I's "index transfer" row is reproducible.

use crate::grid::WARP_WIDTH;

/// Tunable constants of the simulated device.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Number of streaming multiprocessors blocks are scheduled over.
    pub num_sm: usize,
    /// Simulated clock in cycles per microsecond (1000 = 1 GHz).
    pub cycles_per_us: u64,
    /// Host<->device copy bandwidth in bytes per microsecond
    /// (12_000 ~ 12 GB/s PCIe 3.0 x16).
    pub transfer_bytes_per_us: u64,
    /// Fixed per-launch overhead in cycles (driver + scheduling).
    pub launch_overhead_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            num_sm: 24,
            cycles_per_us: 1000,
            transfer_bytes_per_us: 12_000,
            launch_overhead_cycles: 5_000,
        }
    }
}

impl CostModel {
    /// Simulated microseconds to move `bytes` across the bus.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_bytes_per_us as f64
    }

    /// Simulated microseconds for `cycles` of device work.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_us as f64
    }
}

/// Statistics of a single kernel launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchStats {
    /// Kernel name (for profiling output).
    pub name: String,
    pub blocks: usize,
    pub threads: usize,
    /// Sum of all lanes' work (cycles of raw work issued).
    pub total_work: u64,
    /// Sum over blocks of (sum over warps of max-lane work): the SIMD cost.
    pub simd_cycles: u64,
    /// Makespan after scheduling block costs on `num_sm` SMs, plus launch
    /// overhead — the simulated execution time of this launch, in cycles.
    pub makespan_cycles: u64,
    /// Total failed CAS attempts (atomic contention).
    pub atomic_retries: u64,
    /// Total global-memory operations issued.
    pub mem_ops: u64,
    /// Host wall-clock the simulation itself took, microseconds.
    pub host_us: u64,
}

impl LaunchStats {
    /// Simulated execution time of this launch in microseconds.
    pub fn sim_us(&self, model: &CostModel) -> f64 {
        model.cycles_to_us(self.makespan_cycles)
    }

    /// Fraction of SIMD lane-slots doing useful work (1.0 = every lane of
    /// every warp busy for the warp's whole duration; lower = divergence).
    pub fn simd_efficiency(&self) -> f64 {
        if self.simd_cycles == 0 {
            return 1.0;
        }
        self.total_work as f64 / (self.simd_cycles * WARP_WIDTH as u64) as f64
    }
}

/// Cumulative counters across the lifetime of one [`crate::Device`].
#[derive(Debug, Clone, Default)]
pub struct DeviceCounters {
    pub launches: u64,
    pub total_work: u64,
    pub simd_cycles: u64,
    pub makespan_cycles: u64,
    pub atomic_retries: u64,
    pub mem_ops: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
}

impl DeviceCounters {
    pub(crate) fn absorb(&mut self, stats: &LaunchStats) {
        self.launches += 1;
        self.total_work += stats.total_work;
        self.simd_cycles += stats.simd_cycles;
        self.makespan_cycles += stats.makespan_cycles;
        self.atomic_retries += stats.atomic_retries;
        self.mem_ops += stats.mem_ops;
    }

    /// Total simulated device time (kernels + transfers), microseconds.
    pub fn sim_us(&self, model: &CostModel) -> f64 {
        model.cycles_to_us(self.makespan_cycles)
            + model.transfer_us(self.h2d_bytes + self.d2h_bytes)
    }
}

/// Longest-processing-time makespan of `block_costs` on `num_sm` machines.
///
/// Blocks are sorted descending and greedily assigned to the least-loaded
/// SM; the returned makespan is the simulated parallel execution time.
pub(crate) fn makespan(block_costs: &mut [u64], num_sm: usize) -> u64 {
    if block_costs.is_empty() || num_sm == 0 {
        return 0;
    }
    block_costs.sort_unstable_by(|a, b| b.cmp(a));
    let mut sms = vec![0u64; num_sm.min(block_costs.len())];
    for &cost in block_costs.iter() {
        // least-loaded SM; linear scan is fine for the SM counts we use
        let (idx, _) = sms
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| **load)
            .expect("sms is non-empty");
        sms[idx] += cost;
    }
    sms.into_iter().max().unwrap_or(0)
}

/// Concurrent warp slots per SM (the TITAN X's SMM has 4 warp
/// schedulers, i.e. 128 lanes issuing per cycle).
pub const WARP_SLOTS_PER_SM: u64 = 4;

/// Fold per-lane work of one block into (simd_cycles, block_cost):
///
/// * `simd_cycles` — sum over warps of the max lane work (total SIMD
///   slot-time; the denominator of divergence efficiency);
/// * `block_cost` — the block's simulated residency time on an SM: its
///   warps are interleaved over [`WARP_SLOTS_PER_SM`] schedulers, so the
///   block takes `max(ceil(simd / slots), slowest warp)` cycles. This is
///   what makes a single 1024-lane block only ~8x slower than a 32-lane
///   one, not 32x — and why thread-per-query designs (GPU-LSH) are flat
///   in batch size until the device fills.
pub(crate) fn block_simd_cost(lane_work: &[u64]) -> (u64, u64) {
    let mut total = 0u64;
    let mut slowest = 0u64;
    for warp in lane_work.chunks(WARP_WIDTH) {
        let w = warp.iter().copied().max().unwrap_or(0);
        total += w;
        slowest = slowest.max(w);
    }
    let scheduled = total.div_ceil(WARP_SLOTS_PER_SM);
    (total, scheduled.max(slowest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_sm_is_sum() {
        let mut costs = vec![3, 1, 2];
        assert_eq!(makespan(&mut costs, 1), 6);
    }

    #[test]
    fn makespan_many_sms_is_max() {
        let mut costs = vec![3, 1, 2];
        assert_eq!(makespan(&mut costs, 8), 3);
    }

    #[test]
    fn makespan_balances_load() {
        let mut costs = vec![4, 3, 3, 2];
        // LPT on 2 machines: {4,2}, {3,3} -> makespan 6
        assert_eq!(makespan(&mut costs, 2), 6);
    }

    #[test]
    fn makespan_empty() {
        assert_eq!(makespan(&mut [], 4), 0);
        assert_eq!(makespan(&mut [5], 0), 0);
    }

    #[test]
    fn simd_cost_is_warp_max_sum() {
        // one full warp with a straggler + one partial warp
        let mut lanes = vec![1u64; 32];
        lanes[7] = 10;
        lanes.extend_from_slice(&[2, 2]);
        let (simd, cost) = block_simd_cost(&lanes);
        assert_eq!(simd, 10 + 2);
        // 12 cycles of warp time over 4 slots, but the slowest warp (10)
        // lower-bounds the block
        assert_eq!(cost, 10);
    }

    #[test]
    fn block_cost_interleaves_warps_over_slots() {
        // 8 uniform warps of cost 10: 80 slot-cycles over 4 schedulers
        let lanes = vec![10u64; 8 * 32];
        let (simd, cost) = block_simd_cost(&lanes);
        assert_eq!(simd, 80);
        assert_eq!(cost, 20);
    }

    #[test]
    fn simd_efficiency_reflects_divergence() {
        let stats = LaunchStats {
            total_work: 1600,
            simd_cycles: 100,
            ..Default::default()
        };
        assert!((stats.simd_efficiency() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cost_model_transfer_time() {
        let m = CostModel::default();
        // 12 MB at 12 GB/s is 1000 us
        assert!((m.transfer_us(12_000_000) - 1000.0).abs() < 1e-6);
    }
}
