//! # gpu-sim — a software SIMT device
//!
//! This crate is the hardware substrate for the GENIE reproduction. The
//! paper's system is written against the CUDA execution model: a *kernel*
//! is launched over a *grid* of *blocks*, each block runs `block_dim`
//! *lanes* (threads) grouped into warps of 32, and all lanes share a
//! *global memory* that supports word-sized atomic operations.
//!
//! Real GPU hardware is replaced by:
//!
//! * [`Device`] — executes launches; blocks run in parallel on host
//!   threads, lanes within a block run sequentially (their semantics are
//!   identical to a lock-step execution because all cross-lane
//!   communication goes through atomic global memory).
//! * [`GlobalU32`] / [`GlobalU64`] — global-memory buffers of atomic
//!   words. Every access is charged to the issuing lane so the cost model
//!   can reconstruct warp-level SIMD timing.
//! * [`ThreadCtx`] — the per-lane context: block/lane coordinates plus the
//!   per-lane work meter.
//! * A cycle-level cost model (see [`counters`]) that turns per-lane work
//!   into a *simulated* execution time by (a) taking the max across the
//!   lanes of each warp (SIMD lock-step: a warp is as slow as its slowest
//!   lane — this is what warp divergence costs), (b) summing warps within
//!   a block and (c) scheduling block costs over a fixed number of
//!   streaming multiprocessors (makespan).
//!
//! The simulated time, not host wall-clock, is the primary metric reported
//! by the benchmark harness: it preserves the *relative* costs the paper's
//! evaluation depends on (work volume, atomic contention, divergence,
//! degree of parallelism) independently of how many host cores happen to
//! be available.

pub mod counters;
pub mod device;
pub mod grid;
pub mod memory;

pub use counters::{CostModel, DeviceCounters, LaunchStats};
pub use device::{Device, DeviceConfig};
pub use grid::{LaunchConfig, ThreadCtx};
pub use memory::{GlobalU32, GlobalU64, TransferStats};
