//! Launch geometry and the per-lane execution context.

use std::cell::Cell;

/// Number of lanes that execute in lock-step on the simulated hardware.
///
/// Matches the CUDA warp width; the cost model charges a warp the maximum
/// work of its lanes, so divergent lanes slow their whole warp down.
pub const WARP_WIDTH: usize = 32;

/// Grid geometry for a kernel launch: `grid_dim` blocks of `block_dim`
/// lanes each, exactly like a 1-D CUDA launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    /// Number of lanes per block (CUDA `blockDim.x`). Capped at 1024 by
    /// [`LaunchConfig::validate`], mirroring hardware limits.
    pub block_dim: usize,
}

impl LaunchConfig {
    /// A 1-D launch of `grid_dim` blocks with `block_dim` lanes.
    pub fn new(grid_dim: usize, block_dim: usize) -> Self {
        Self {
            grid_dim,
            block_dim,
        }
    }

    /// Grid sized so that `total` lanes are covered by blocks of
    /// `block_dim` lanes (the classic `(n + b - 1) / b` pattern).
    pub fn cover(total: usize, block_dim: usize) -> Self {
        let grid_dim = total.div_ceil(block_dim.max(1));
        Self {
            grid_dim: grid_dim.max(1),
            block_dim,
        }
    }

    /// Total number of lanes in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }

    /// Checks hardware-style launch limits.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_dim == 0 || self.grid_dim == 0 {
            return Err("launch dimensions must be non-zero".into());
        }
        if self.block_dim > 1024 {
            return Err(format!(
                "block_dim {} exceeds the 1024-lane hardware limit",
                self.block_dim
            ));
        }
        Ok(())
    }
}

/// Per-lane execution context handed to the kernel body.
///
/// Carries the lane's coordinates and its *work meter*: every global
/// memory access and every explicit [`ThreadCtx::tick`] adds simulated
/// cycles that the cost model later folds into warp/block/device timing.
pub struct ThreadCtx {
    /// Index of this lane's block within the grid (`blockIdx.x`).
    pub block_idx: usize,
    /// Index of this lane within its block (`threadIdx.x`).
    pub thread_idx: usize,
    /// Lanes per block (`blockDim.x`).
    pub block_dim: usize,
    /// Blocks per grid (`gridDim.x`).
    pub grid_dim: usize,
    work: Cell<u64>,
    atomic_retries: Cell<u64>,
    mem_ops: Cell<u64>,
}

impl ThreadCtx {
    pub(crate) fn new(block_idx: usize, thread_idx: usize, cfg: &LaunchConfig) -> Self {
        Self {
            block_idx,
            thread_idx,
            block_dim: cfg.block_dim,
            grid_dim: cfg.grid_dim,
            work: Cell::new(0),
            atomic_retries: Cell::new(0),
            mem_ops: Cell::new(0),
        }
    }

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_id(&self) -> usize {
        self.block_idx * self.block_dim + self.thread_idx
    }

    /// Warp index of this lane within its block.
    pub fn warp_idx(&self) -> usize {
        self.thread_idx / WARP_WIDTH
    }

    /// Charge `cycles` of compute work to this lane. Kernels call this for
    /// non-memory work (distance computations, comparisons, ...) so the
    /// cost model sees compute-bound as well as memory-bound phases.
    #[inline]
    pub fn tick(&self, cycles: u64) {
        self.work.set(self.work.get() + cycles);
    }

    #[inline]
    pub(crate) fn charge_mem(&self, cycles: u64) {
        self.work.set(self.work.get() + cycles);
        self.mem_ops.set(self.mem_ops.get() + 1);
    }

    #[inline]
    pub(crate) fn charge_retry(&self) {
        self.atomic_retries.set(self.atomic_retries.get() + 1);
        // a failed CAS still costs a round-trip to the memory system
        self.work.set(self.work.get() + 4);
    }

    /// Total simulated cycles charged to this lane so far.
    pub fn work(&self) -> u64 {
        self.work.get()
    }

    pub(crate) fn drain(&self) -> LaneReport {
        LaneReport {
            work: self.work.get(),
            atomic_retries: self.atomic_retries.get(),
            mem_ops: self.mem_ops.get(),
        }
    }
}

/// What a lane reports back to the device after it finishes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneReport {
    pub work: u64,
    pub atomic_retries: u64,
    pub mem_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let cfg = LaunchConfig::cover(1000, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.block_dim, 256);
        assert!(cfg.total_threads() >= 1000);
    }

    #[test]
    fn cover_never_produces_empty_grid() {
        let cfg = LaunchConfig::cover(0, 128);
        assert_eq!(cfg.grid_dim, 1);
    }

    #[test]
    fn validate_rejects_oversized_block() {
        assert!(LaunchConfig::new(1, 2048).validate().is_err());
        assert!(LaunchConfig::new(1, 1024).validate().is_ok());
        assert!(LaunchConfig::new(0, 32).validate().is_err());
    }

    #[test]
    fn global_id_is_linear() {
        let cfg = LaunchConfig::new(4, 128);
        let ctx = ThreadCtx::new(2, 5, &cfg);
        assert_eq!(ctx.global_id(), 2 * 128 + 5);
        assert_eq!(ctx.warp_idx(), 0);
        let ctx = ThreadCtx::new(0, 77, &cfg);
        assert_eq!(ctx.warp_idx(), 2);
    }

    #[test]
    fn work_meter_accumulates() {
        let cfg = LaunchConfig::new(1, 1);
        let ctx = ThreadCtx::new(0, 0, &cfg);
        ctx.tick(3);
        ctx.tick(7);
        assert_eq!(ctx.work(), 10);
        let rep = ctx.drain();
        assert_eq!(rep.work, 10);
        assert_eq!(rep.mem_ops, 0);
    }
}
