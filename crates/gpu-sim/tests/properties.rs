//! Property tests of the simulated device: atomic linearisability under
//! arbitrary contention patterns and cost-model invariants.

use gpu_sim::{Device, DeviceConfig, GlobalU32, GlobalU64, LaunchConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent atomic adds over arbitrary target patterns lose no
    /// updates: final counters equal the exact per-target multiplicity.
    #[test]
    fn atomic_adds_are_exact(
        targets in proptest::collection::vec(0usize..32, 1..400),
        block_dim in 1usize..192,
    ) {
        let device = Device::with_defaults();
        let counters = GlobalU32::zeroed(32);
        let n = targets.len();
        let t = &targets;
        let c = &counters;
        device.launch("adds", LaunchConfig::cover(n, block_dim), move |ctx| {
            let gid = ctx.global_id();
            if gid < n {
                c.atomic_add(ctx, t[gid], 1);
            }
        });
        let host = counters.to_host();
        for (slot, &got) in host.iter().enumerate() {
            let expected = targets.iter().filter(|&&x| x == slot).count() as u32;
            prop_assert_eq!(got, expected, "slot {}", slot);
        }
    }

    /// CAS-maximum over arbitrary values converges to the true maximum
    /// regardless of interleaving.
    #[test]
    fn cas_loop_max_converges(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let device = Device::with_defaults();
        let cell = GlobalU64::zeroed(1);
        let n = values.len();
        let v = &values;
        let c = &cell;
        device.launch("casmax", LaunchConfig::cover(n, 64), move |ctx| {
            let gid = ctx.global_id();
            if gid >= n {
                return;
            }
            let mine = v[gid];
            loop {
                let cur = c.load(ctx, 0);
                if cur >= mine || c.atomic_cas(ctx, 0, cur, mine).is_ok() {
                    break;
                }
            }
        });
        prop_assert_eq!(cell.read_host(0), *values.iter().max().unwrap());
    }

    /// The cost model is sane for any launch shape: total work is
    /// conserved, the makespan is at least the per-SM average and at
    /// most the serial sum (plus overhead).
    #[test]
    fn cost_model_bounds_hold(
        grid in 1usize..40,
        block in 1usize..200,
        work in 1u64..200,
    ) {
        let device = Device::with_defaults();
        let stats = device.launch("uniform", LaunchConfig::new(grid, block), move |ctx| {
            ctx.tick(work);
        });
        let lanes = (grid * block) as u64;
        prop_assert_eq!(stats.total_work, lanes * work);
        let overhead = device.cost_model().launch_overhead_cycles;
        let span = stats.makespan_cycles - overhead;
        // never better than perfect parallelism over SMs x warp slots,
        // never worse than fully serial SIMD time
        prop_assert!(span * 24 * 4 * 32 + 24 * 4 * 32 > stats.total_work,
            "span {} too small for work {}", span, stats.total_work);
        prop_assert!(span <= stats.simd_cycles.max(work),
            "span {} exceeds serial simd time {}", span, stats.simd_cycles);
        prop_assert!(stats.simd_efficiency() <= 1.0 + 1e-9);
    }

    /// Single-worker execution is observationally equivalent to
    /// parallel execution for a deterministic kernel.
    #[test]
    fn worker_count_is_transparent(
        n in 1usize..500,
        block in 1usize..128,
    ) {
        let par = Device::with_defaults();
        let seq = Device::new(DeviceConfig {
            host_workers: 1,
            ..Default::default()
        });
        let out_par = GlobalU32::zeroed(n);
        let out_seq = GlobalU32::zeroed(n);
        for (device, out) in [(&par, &out_par), (&seq, &out_seq)] {
            let o = out;
            device.launch("det", LaunchConfig::cover(n, block), move |ctx| {
                let gid = ctx.global_id();
                if gid < n {
                    o.store(ctx, gid, (gid as u32).wrapping_mul(2654435761));
                }
            });
        }
        prop_assert_eq!(out_par.to_host(), out_seq.to_host());
    }
}
