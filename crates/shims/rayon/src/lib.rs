//! Offline stand-in for the `rayon` crate.
//!
//! Implements the data-parallel subset the CPU search backend uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()`, [`join`], [`scope`]
//! and [`current_num_threads`] — on plain `std::thread::scope` with one
//! chunk per available core. There is no work-stealing pool; for the
//! coarse per-query parallelism this workspace needs, static chunking
//! is equivalent. Swapping in real rayon is a Cargo.toml change only.

pub mod iter;

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads parallel operations will use.
///
/// Memoised: `available_parallelism` is a syscall (it may read cgroup
/// limits), and hot paths ask per batch — real rayon reads its
/// constructed pool size, which is equally a cached value.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Scoped task spawning (`rayon::scope`), mapped onto
/// `std::thread::scope`. The closure receives a [`Scope`] whose `spawn`
/// takes a `FnOnce(&Scope)` like rayon's.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
        'env: 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_works_on_empty_slices() {
        let xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn scope_spawns_run_to_completion() {
        let hits = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}
