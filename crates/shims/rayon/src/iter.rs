//! `par_iter().map(..).collect()` for slices, chunked over scoped
//! threads with order-preserving concatenation.

/// Entry point: `&self -> parallel iterator` (rayon's
/// `IntoParallelRefIterator`). Implemented for slices; `Vec<T>` gets it
/// through auto-deref.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

/// The terminal operations a mapped parallel iterator supports.
pub trait ParallelIterator {
    type Item: Send;

    fn collect_vec(self) -> Vec<Self::Item>;

    fn collect<C: FromIterator<Self::Item>>(self) -> C
    where
        Self: Sized,
    {
        self.collect_vec().into_iter().collect()
    }
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn collect_vec(self) -> Vec<R> {
        let n = self.slice.len();
        let workers = super::current_num_threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut pieces: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                pieces.push(h.join().expect("rayon par_iter worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in pieces {
            out.extend(p);
        }
        out
    }
}
