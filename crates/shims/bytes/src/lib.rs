//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits
//! with the little-endian accessors the index codec uses. `Bytes` is a
//! plain owned buffer with a read cursor rather than a refcounted slice
//! view — the codec only needs sequential reads.

/// Sequential big-picture reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Sequential little-endian writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.pos += n;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u16_le(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 2 + 4 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_read_by_value() {
        let raw = [1u8, 0, 0, 0, 2, 0];
        let mut buf = &raw[..];
        assert_eq!(buf.get_u32_le(), 1);
        assert_eq!(buf.get_u16_le(), 2);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_deref_tracks_the_cursor() {
        let mut b = Bytes::from_vec(vec![9, 8, 7, 6]);
        assert_eq!(&b[..2], &[9, 8]);
        b.advance(2);
        assert_eq!(&b[..], &[7, 6]);
        assert_eq!(b.to_vec(), vec![7, 6]);
    }
}
