//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench/iter API shape the workspace's benches
//! use. Instead of criterion's statistical sampling it runs a short
//! warm-up followed by `sample_size` timed iterations and prints the
//! mean per-iteration wall time — enough to eyeball regressions and to
//! keep `cargo bench` working without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n=== group {name} ===");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), 10, &mut f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark (criterion's meaning is
    /// statistical samples; here it is plain iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        run_one(&label, samples, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label}: {per_iter:?}/iter over {} iters",
        bencher.iters
    );
}

/// Passed into the measured closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // one untimed warm-up run
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = started.elapsed();
    }
}

/// Identifier `group_name/function_name/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Opaque-value hint to keep the optimiser from deleting the measured
/// work (std::hint::black_box re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut runs = 0u32;
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4, "3 timed + 1 warm-up");
    }
}
