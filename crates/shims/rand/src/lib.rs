//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API surface it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `random::<T>()` / `random_range(..)`. The generator is SplitMix64 —
//! statistically solid for test workloads and dataset synthesis, not for
//! cryptography. Streams differ from upstream `rand`, so seeded outputs
//! are reproducible *within* this workspace only.

use std::ops::{Bound, RangeBounds};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (the subset the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the "standard" distribution of `T` (uniform over the
    /// type's natural domain; `[0, 1)` for floats).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from an integer or float range (`lo..hi` or
    /// `lo..=hi`). Panics on empty ranges.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// Bernoulli sample with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait SampleStandard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::random_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
                let lo: i128 = match range.start_bound() {
                    Bound::Included(&x) => x as i128,
                    Bound::Excluded(&x) => x as i128 + 1,
                    Bound::Unbounded => <$t>::MIN as i128,
                };
                let hi: i128 = match range.end_bound() {
                    Bound::Included(&x) => x as i128,
                    Bound::Excluded(&x) => x as i128 - 1,
                    Bound::Unbounded => <$t>::MAX as i128,
                };
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo + 1) as u128;
                // modulo draw: the bias is < 2^-64 per sample, irrelevant
                // for test and dataset generation
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&x) | Bound::Excluded(&x) => x,
                    Bound::Unbounded => 0.0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&x) | Bound::Excluded(&x) => x,
                    Bound::Unbounded => 1.0,
                };
                assert!(lo < hi, "cannot sample from an empty float range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=4usize);
            assert!(y <= 4);
            let z = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&z));
            let f = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should spread over [0, 1)");
    }

    #[test]
    fn single_value_ranges_work() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(5..6u32), 5);
        assert_eq!(rng.random_range(9..=9usize), 9);
    }
}
