//! The [`Strategy`] trait plus the range / tuple / map combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests. Unlike upstream proptest
/// there is no value tree: `generate` draws a case directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (upstream `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value (upstream
    /// `prop_flat_map`) — e.g. a vector whose length depends on an
    /// earlier draw. Without value trees this is just generate-then-
    /// generate.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy that always yields a clone of one value (upstream `Just`).
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
