//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: integer-range strategies,
//! tuples, `collection::vec`, `prop_map`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-case seed;
//! failures panic with the assert message. There is **no shrinking** —
//! a failing case prints its assertion context instead of a minimised
//! input, which is adequate for CI regression detection.

pub mod strategy;

pub use strategy::Strategy;

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)` as i128 (shared by all int widths).
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty strategy range");
        let span = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // upstream defaults to 256; trimmed because several suites
            // drive the full simulated device per case
            Self { cases: 32 }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion macros: forwarded to `assert!`-family (no shrinking, so a
/// failure aborts the test directly with the case's values in scope).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: an optional config header followed by test
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            // per-test stream: derived from the test's name so sibling
            // tests do not share cases
            let __seed = {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::new(__seed ^ (__case as u64).wrapping_mul(0x9E37_79B9));
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_the_size_range(
            v in crate::collection::vec(0u8..5, 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 5usize..6),
            s in (1i64..4).prop_map(|x| x * 10),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(s == 10 || s == 20 || s == 30);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
