//! Offline stand-in for `serde`.
//!
//! Supplies the `Serialize`/`Deserialize` names (trait + derive macro,
//! like the real crate) so seed types keep compiling unmodified. The
//! derives are no-ops — see the `serde_derive` shim. If real
//! serialisation is ever needed, swap these shims for the published
//! crates; the call sites will not change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
