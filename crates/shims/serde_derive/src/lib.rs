//! Offline stand-in for `serde_derive`.
//!
//! The workspace cannot reach crates.io, and nothing in it calls serde's
//! serialisation methods (the index codec in `genie_core::io` is a
//! hand-written binary format). The derives therefore expand to nothing:
//! `#[derive(Serialize, Deserialize)]` stays valid on every type without
//! generating code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
