//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free
//! `lock()` signature, implemented over `std::sync::Mutex` (a poisoned
//! lock is recovered rather than propagated, matching parking_lot's
//! behaviour of not poisoning at all).

pub use std::sync::MutexGuard;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
