//! Adult-like relational rows: a census-shaped mix of low-cardinality
//! categorical attributes (sex, workclass, ...) and wide numeric ones
//! (age, hours, capital-gain), with the paper's 20x row duplication.
//! The low-cardinality columns are the point: they produce postings
//! lists holding large fractions of the table — the load-balance
//! experiment's trigger.

use genie_sa::relational::{Attribute, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Adult-shaped schema: `num_cat` categorical attributes of the given
/// cardinalities and `num_num` numeric attributes discretised into
/// `buckets` intervals (the paper uses 1024).
pub fn adult_schema(buckets: u32) -> Vec<Attribute> {
    vec![
        // categorical: sex, race, workclass, education, marital,
        // occupation, relationship, country(ish)
        Attribute::Categorical { cardinality: 2 },
        Attribute::Categorical { cardinality: 5 },
        Attribute::Categorical { cardinality: 8 },
        Attribute::Categorical { cardinality: 16 },
        Attribute::Categorical { cardinality: 7 },
        Attribute::Categorical { cardinality: 14 },
        Attribute::Categorical { cardinality: 6 },
        Attribute::Categorical { cardinality: 40 },
        // numeric: age, fnlwgt, education-num, capital-gain,
        // capital-loss, hours-per-week
        Attribute::Numeric {
            min: 17.0,
            max: 90.0,
            buckets,
        },
        Attribute::Numeric {
            min: 0.0,
            max: 1_500_000.0,
            buckets,
        },
        Attribute::Numeric {
            min: 1.0,
            max: 16.0,
            buckets,
        },
        Attribute::Numeric {
            min: 0.0,
            max: 100_000.0,
            buckets,
        },
        Attribute::Numeric {
            min: 0.0,
            max: 5_000.0,
            buckets,
        },
        Attribute::Numeric {
            min: 1.0,
            max: 99.0,
            buckets,
        },
    ]
}

/// Generate `base_rows` distinct rows under `schema`, then duplicate
/// each `duplication` times (paper: 49K rows x 20 = 0.98M instances).
pub fn adult_like(
    schema: &[Attribute],
    base_rows: usize,
    duplication: usize,
    seed: u64,
) -> Vec<Vec<Value>> {
    assert!(duplication >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut base = Vec::with_capacity(base_rows);
    for _ in 0..base_rows {
        let row: Vec<Value> = schema
            .iter()
            .map(|a| match *a {
                Attribute::Categorical { cardinality } => {
                    // mildly skewed categories, like census columns
                    let r: f64 = rng.random();
                    Value::Cat(((r * r) * cardinality as f64) as u32)
                }
                Attribute::Numeric { min, max, .. } => {
                    Value::Num(min + rng.random::<f64>() * (max - min))
                }
            })
            .collect();
        base.push(row);
    }
    let mut rows = Vec::with_capacity(base_rows * duplication);
    for _ in 0..duplication {
        rows.extend(base.iter().cloned());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_mixes_categorical_and_numeric() {
        let schema = adult_schema(1024);
        assert_eq!(schema.len(), 14, "Adult has 14 attributes");
        let cats = schema
            .iter()
            .filter(|a| matches!(a, Attribute::Categorical { .. }))
            .count();
        assert_eq!(cats, 8);
    }

    #[test]
    fn duplication_multiplies_rows() {
        let schema = adult_schema(64);
        let rows = adult_like(&schema, 10, 3, 1);
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0], rows[10]);
        assert_eq!(rows[0], rows[20]);
    }

    #[test]
    fn values_respect_schema() {
        let schema = adult_schema(64);
        let rows = adult_like(&schema, 50, 1, 2);
        for row in &rows {
            assert_eq!(row.len(), schema.len());
            for (v, a) in row.iter().zip(&schema) {
                match (v, a) {
                    (Value::Cat(c), Attribute::Categorical { cardinality }) => {
                        assert!(c < cardinality)
                    }
                    (Value::Num(x), Attribute::Numeric { min, max, .. }) => {
                        assert!(*x >= *min && *x <= *max)
                    }
                    _ => panic!("type mismatch"),
                }
            }
        }
    }

    #[test]
    fn low_cardinality_columns_are_skewed() {
        let schema = adult_schema(64);
        let rows = adult_like(&schema, 2000, 1, 3);
        // first column is binary with the square-skew: category 0 should
        // hold clearly more than half the rows
        let zeros = rows
            .iter()
            .filter(|r| matches!(r[0], Value::Cat(0)))
            .count();
        assert!(zeros as f64 / 2000.0 > 0.6, "zeros = {zeros}");
    }
}
