//! DBLP-like sequence generation and the controlled corruption used by
//! the sequence-accuracy experiments (Tables VI & VII).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary fragments that make titles look paper-ish; what matters
/// for the experiments is realistic n-gram overlap between titles, which
/// composing from a shared word pool produces.
const WORDS: &[&str] = &[
    "parallel",
    "generic",
    "inverted",
    "index",
    "similarity",
    "search",
    "query",
    "processing",
    "database",
    "system",
    "graph",
    "tree",
    "sequence",
    "mining",
    "learning",
    "distributed",
    "efficient",
    "scalable",
    "approximate",
    "nearest",
    "neighbor",
    "hashing",
    "framework",
    "analysis",
    "optimization",
    "stream",
    "spatial",
    "temporal",
    "knowledge",
    "retrieval",
    "clustering",
    "classification",
];

/// Generate `n` DBLP-like article titles of roughly `target_len` bytes.
pub fn dblp_like(n: usize, target_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut title = String::new();
            while title.len() < target_len {
                if !title.is_empty() {
                    title.push(' ');
                }
                title.push_str(WORDS[rng.random_range(0..WORDS.len())]);
            }
            title.truncate(target_len);
            title.into_bytes()
        })
        .collect()
}

/// The paper's query corruption: modify `fraction` of the characters of
/// `seq` (substitutions at random positions with random lowercase
/// letters). `fraction = 0.2` reproduces the default DBLP query set.
pub fn modify_sequence<R: Rng>(seq: &[u8], fraction: f64, rng: &mut R) -> Vec<u8> {
    let mut out = seq.to_vec();
    if out.is_empty() {
        return out;
    }
    let edits = ((seq.len() as f64 * fraction).round() as usize).min(seq.len());
    for _ in 0..edits {
        let pos = rng.random_range(0..out.len());
        let new = b'a' + rng.random_range(0..26u8);
        out[pos] = new;
    }
    out
}

/// Build a (data, corrupted-queries) pair: queries are corrupted copies
/// of randomly chosen data sequences, paired with the source indices so
/// accuracy can be graded against ground truth.
pub struct CorruptedQueries {
    pub queries: Vec<Vec<u8>>,
    /// Index of the data sequence each query was derived from.
    pub sources: Vec<u32>,
}

pub fn corrupted_queries(
    data: &[Vec<u8>],
    num_queries: usize,
    fraction: f64,
    seed: u64,
) -> CorruptedQueries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(num_queries);
    let mut sources = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let src = rng.random_range(0..data.len());
        queries.push(modify_sequence(&data[src], fraction, &mut rng));
        sources.push(src as u32);
    }
    CorruptedQueries { queries, sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_sa::edit::edit_distance;

    #[test]
    fn titles_have_requested_length() {
        let titles = dblp_like(20, 40, 5);
        assert_eq!(titles.len(), 20);
        assert!(titles.iter().all(|t| t.len() == 40));
        assert_eq!(titles, dblp_like(20, 40, 5), "deterministic");
    }

    #[test]
    fn modification_bounds_edit_distance() {
        let mut rng = StdRng::seed_from_u64(1);
        let titles = dblp_like(10, 40, 2);
        for t in &titles {
            let q = modify_sequence(t, 0.2, &mut rng);
            assert_eq!(q.len(), t.len());
            let d = edit_distance(t, &q);
            assert!(d <= 8, "0.2 * 40 = 8 substitutions max, got {d}");
        }
    }

    #[test]
    fn zero_fraction_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = b"hello world".to_vec();
        assert_eq!(modify_sequence(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn corrupted_queries_track_sources() {
        let data = dblp_like(50, 40, 3);
        let cq = corrupted_queries(&data, 8, 0.1, 4);
        assert_eq!(cq.queries.len(), 8);
        for (q, &src) in cq.queries.iter().zip(&cq.sources) {
            let d = edit_distance(q, &data[src as usize]);
            assert!(d <= 4, "10% of 40 chars");
        }
    }
}
