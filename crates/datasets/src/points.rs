//! High-dimensional point generators: SIFT-like and OCR-like.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled point set (labels used by the OCR 1NN experiment).
#[derive(Debug, Clone)]
pub struct LabelledPoints {
    pub points: Vec<Vec<f32>>,
    pub labels: Vec<u32>,
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// SIFT-like descriptors: `num_clusters` Gaussian clusters in `dim`
/// dimensions with non-negative, bounded coordinates — the cluster
/// structure (not the exact marginals) is what the l2-ANN experiments
/// exercise. Real SIFT is 128-d; pass `dim = 128` for full fidelity or
/// less for speed.
pub fn sift_like(n: usize, dim: usize, num_clusters: usize, seed: u64) -> Vec<Vec<f32>> {
    assert!(num_clusters >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // cluster centres spread through [0, 100]^dim
    let centres: Vec<Vec<f32>> = (0..num_clusters)
        .map(|_| (0..dim).map(|_| rng.random::<f32>() * 100.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centres[i % num_clusters];
            c.iter()
                .map(|&m| (m + gaussian(&mut rng) as f32 * 4.0).clamp(0.0, 127.0))
                .collect()
        })
        .collect()
}

/// OCR-like labelled points: `num_classes` classes, each with a
/// heavy-tailed "stroke pattern" prototype; class structure drives both
/// the Laplacian-kernel ANN quality and the Table V 1NN classification.
/// Real OCR is 1156-d; scaled runs can pass less. Noise scale defaults
/// to 0.5 (well-separated classes); see [`ocr_like_with_noise`].
pub fn ocr_like(n: usize, dim: usize, num_classes: usize, seed: u64) -> LabelledPoints {
    ocr_like_with_noise(n, dim, num_classes, 0.5, seed)
}

/// [`ocr_like`] with an explicit Laplacian noise scale. Larger `noise`
/// makes classes overlap, which is what gives the Table V
/// classification experiment head-room below 100% accuracy (the paper's
/// OCR task sits near 84%).
pub fn ocr_like_with_noise(
    n: usize,
    dim: usize,
    num_classes: usize,
    noise: f32,
    seed: u64,
) -> LabelledPoints {
    assert!(num_classes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // sparse prototypes: each class activates a subset of dimensions
    let prototypes: Vec<Vec<f32>> = (0..num_classes)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    if rng.random::<f32>() < 0.3 {
                        rng.random::<f32>() * 8.0 + 2.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % num_classes;
        let proto = &prototypes[class];
        // Laplacian-ish noise: difference of exponentials (heavy tails)
        let p: Vec<f32> = proto
            .iter()
            .map(|&m| {
                let e1 = -(rng.random::<f64>().max(f64::MIN_POSITIVE)).ln();
                let e2 = -(rng.random::<f64>().max(f64::MIN_POSITIVE)).ln();
                (m + (e1 - e2) as f32 * noise).max(0.0)
            })
            .collect();
        points.push(p);
        labels.push(class as u32);
    }
    LabelledPoints { points, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_like_is_deterministic_and_shaped() {
        let a = sift_like(50, 16, 4, 7);
        let b = sift_like(50, 16, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|p| p.len() == 16));
        assert!(a.iter().flatten().all(|&v| (0.0..=127.0).contains(&v)));
    }

    #[test]
    fn sift_like_clusters_are_tight() {
        let pts = sift_like(100, 8, 2, 3);
        // points of the same cluster are far closer than across clusters
        let d = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        let same = d(&pts[0], &pts[2]); // both cluster 0
        let cross = d(&pts[0], &pts[1]); // clusters 0 vs 1
        assert!(same < cross, "same {same} cross {cross}");
    }

    #[test]
    fn ocr_like_labels_cycle_through_classes() {
        let lp = ocr_like(30, 20, 5, 1);
        assert_eq!(lp.points.len(), 30);
        assert_eq!(lp.labels.len(), 30);
        assert_eq!(lp.labels[0], 0);
        assert_eq!(lp.labels[7], 2);
        assert!(lp.labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn noisier_classes_overlap_more() {
        let tight = ocr_like_with_noise(40, 30, 2, 0.2, 5);
        let loose = ocr_like_with_noise(40, 30, 2, 5.0, 5);
        let l1 =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        // within-class scatter must grow with the noise scale
        let scatter = |lp: &LabelledPoints| l1(&lp.points[0], &lp.points[2]);
        assert!(scatter(&loose) > scatter(&tight));
    }

    #[test]
    fn ocr_like_same_class_is_nearer_in_l1() {
        let lp = ocr_like(60, 40, 3, 9);
        let l1 =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        // points 0 and 3 share class 0; point 1 is class 1
        let same = l1(&lp.points[0], &lp.points[3]);
        let cross = l1(&lp.points[0], &lp.points[1]);
        assert!(same < cross, "same {same} cross {cross}");
    }
}
