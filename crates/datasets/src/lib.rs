//! # genie-datasets — synthetic stand-ins for the paper's corpora
//!
//! The paper evaluates on five external multi-gigabyte corpora (OCR,
//! SIFT, DBLP, Tweets, Adult). None are redistributable here, so every
//! experiment runs on a seeded generator reproducing the *distributional
//! shape* the corresponding experiment depends on (see DESIGN.md §1 for
//! the per-dataset substitution argument):
//!
//! * [`points::sift_like`] — clustered Gaussian descriptors (l2 / E2LSH
//!   experiments);
//! * [`points::ocr_like`] — labelled heavy-tailed high-dim points (the
//!   Laplacian-kernel / RBH and 1NN-classification experiments);
//! * [`sequences::dblp_like`] — Markov-generated article titles plus the
//!   controlled `modify_sequence` corruption of the accuracy tables;
//! * [`documents::tweets_like`] — Zipf-worded short documents;
//! * [`relational::adult_like`] — mixed categorical/numeric rows with
//!   the 20x row duplication that produces the extreme postings lists of
//!   the load-balance experiment.
//!
//! [`structures`] additionally generates random labelled trees and
//! graphs (with edit-bounded mutations) for the tree/graph SA
//! instantiations.
//!
//! All generators are deterministic in their seed.

pub mod documents;
pub mod points;
pub mod relational;
pub mod sequences;
pub mod structures;

/// Split a generated set into (data, queries): the paper reserves 10K
/// items as the query set and removes them from the data. Returns
/// `(data, queries)` where `queries` holds the last `num_queries` items.
pub fn holdout<T>(mut items: Vec<T>, num_queries: usize) -> (Vec<T>, Vec<T>) {
    assert!(
        num_queries < items.len(),
        "holdout larger than the data set"
    );
    let queries = items.split_off(items.len() - num_queries);
    (items, queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holdout_splits_tail() {
        let (data, queries) = holdout((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(queries, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "holdout larger")]
    fn holdout_rejects_oversized_split() {
        holdout(vec![1, 2], 2);
    }
}
