//! Tweets-like short documents: Zipf-distributed vocabulary, short
//! lengths — the skew (a few very common words, a long tail) is what
//! stresses the inverted index the way the real crawl does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample from a Zipf(s) distribution over `0..n` by inverse-CDF over
/// precomputed weights.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u)
    }
}

/// Generate `n` tweet-like documents: word counts in `[min_len,
/// max_len]`, words drawn Zipf(1.0) from a `vocab`-sized vocabulary.
/// Words are rendered as `w<id>` strings.
pub fn tweets_like(
    n: usize,
    vocab: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    assert!(min_len >= 1 && max_len >= min_len);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(vocab, 1.0);
    (0..n)
        .map(|_| {
            let len = rng.random_range(min_len..=max_len);
            (0..len)
                .map(|_| format!("w{}", zipf.sample(&mut rng)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_have_bounded_lengths() {
        let docs = tweets_like(100, 500, 3, 12, 9);
        assert_eq!(docs.len(), 100);
        assert!(docs.iter().all(|d| (3..=12).contains(&d.len())));
        assert_eq!(docs, tweets_like(100, 500, 3, 12, 9), "deterministic");
    }

    #[test]
    fn zipf_is_skewed_toward_small_ids() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // the top-10 of 1000 Zipf(1) words carry ~39% of the mass
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3, "head mass {frac}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 50);
        }
    }
}
