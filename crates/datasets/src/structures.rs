//! Generators for tree- and graph-structured data: random labelled
//! structures plus controlled mutations, for the tree/graph SA
//! instantiations (paper §II-B2).

use genie_sa::graph::Graph;
use genie_sa::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` random recursive trees with `nodes` nodes each and
/// labels drawn from `0..label_domain`. Each node attaches to a uniform
/// random earlier node, the classic random-recursive-tree process.
pub fn trees_like(n: usize, nodes: usize, label_domain: u32, seed: u64) -> Vec<Tree> {
    assert!(nodes >= 1 && label_domain >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tree::leaf(rng.random_range(0..label_domain));
            for _ in 1..nodes {
                let parent = rng.random_range(0..t.len());
                t.add_child(parent, rng.random_range(0..label_domain));
            }
            t
        })
        .collect()
}

/// Mutate a tree by relabelling `edits` random nodes — an edit-distance
/// controlled corruption (each relabel is one tree edit operation, so
/// `ted(t, mutated) <= edits`).
pub fn mutate_tree<R: Rng>(tree: &Tree, edits: usize, rng: &mut R, label_domain: u32) -> Tree {
    let mut labels: Vec<u32> = (0..tree.len()).map(|i| tree.label(i)).collect();
    for _ in 0..edits {
        let node = rng.random_range(0..labels.len());
        labels[node] = rng.random_range(0..label_domain);
    }
    // rebuild with identical shape
    let mut out = Tree::leaf(labels[0]);
    let mut map = vec![0usize; tree.len()];
    fn clone_shape(tree: &Tree, labels: &[u32], node: usize, out: &mut Tree, map: &mut [usize]) {
        for &c in tree.children(node) {
            let new = out.add_child(map[node], labels[c]);
            map[c] = new;
            clone_shape(tree, labels, c, out, map);
        }
    }
    clone_shape(tree, &labels, 0, &mut out, &mut map);
    out
}

/// Generate `n` random labelled graphs: `nodes` nodes, labels from
/// `0..label_domain`, each node wired to `avg_degree` random partners.
pub fn graphs_like(
    n: usize,
    nodes: usize,
    label_domain: u32,
    avg_degree: usize,
    seed: u64,
) -> Vec<Graph> {
    assert!(nodes >= 2 && label_domain >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut g = Graph::new();
            for _ in 0..nodes {
                g.add_node(rng.random_range(0..label_domain));
            }
            // a spanning path keeps the graph connected, then extra edges
            for v in 1..nodes {
                g.add_edge(v - 1, v);
            }
            let extra = nodes * avg_degree.saturating_sub(2) / 2;
            for _ in 0..extra {
                let a = rng.random_range(0..nodes);
                let b = rng.random_range(0..nodes);
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
        .collect()
}

/// Mutate a graph by relabelling `edits` random nodes.
pub fn mutate_graph<R: Rng>(graph: &Graph, edits: usize, rng: &mut R, label_domain: u32) -> Graph {
    let mut g = Graph::new();
    let mut labels: Vec<u32> = (0..graph.len()).map(|i| graph.label(i)).collect();
    for _ in 0..edits {
        let node = rng.random_range(0..labels.len());
        labels[node] = rng.random_range(0..label_domain);
    }
    for l in &labels {
        g.add_node(*l);
    }
    for v in 0..graph.len() {
        for &u in graph.neighbors(v) {
            if v < u {
                g.add_edge(v, u);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_sa::tree::tree_edit_distance;

    #[test]
    fn trees_have_requested_size_and_are_deterministic() {
        let ts = trees_like(10, 15, 6, 3);
        assert_eq!(ts.len(), 10);
        assert!(ts.iter().all(|t| t.len() == 15));
        assert_eq!(ts, trees_like(10, 15, 6, 3));
    }

    #[test]
    fn tree_mutation_bounds_edit_distance() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts = trees_like(5, 12, 8, 7);
        for t in &ts {
            let m = mutate_tree(t, 3, &mut rng, 8);
            assert_eq!(m.len(), t.len(), "shape preserved");
            assert!(tree_edit_distance(t, &m) <= 3);
        }
    }

    #[test]
    fn graphs_are_connected_and_sized() {
        let gs = graphs_like(5, 10, 4, 3, 9);
        assert_eq!(gs.len(), 5);
        for g in &gs {
            assert_eq!(g.len(), 10);
            // spanning path guarantees every node has a neighbour
            assert!((0..g.len()).all(|v| !g.neighbors(v).is_empty()));
        }
    }

    #[test]
    fn graph_mutation_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = &graphs_like(1, 8, 5, 3, 11)[0];
        let m = mutate_graph(g, 2, &mut rng, 5);
        assert_eq!(m.len(), g.len());
        for v in 0..g.len() {
            let mut a: Vec<usize> = m.neighbors(v).to_vec();
            let mut b: Vec<usize> = g.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "edge set unchanged at node {v}");
        }
    }
}
